#!/bin/sh
# Tier-1 CI gate for the workspace: release build, full test suite,
# and a warning-free clippy pass over every target (benches included).
set -eux

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
