#!/bin/sh
# Tier-1 CI gate for the workspace: release build, full test suite,
# and a warning-free clippy pass over every target (benches included).
set -eux

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Bench smoke: every criterion harness must run end to end on a tiny
# time budget, and the perf-trajectory snapshot must regenerate. The
# numbers themselves are not gated here (CI hardware is too noisy);
# BENCH_baseline.json records the interleaved measurements — see its
# methodology field.
CRITERION_BUDGET_MS=25 cargo bench -p dt-bench
cargo run --release -p dt-bench --bin fig8 -- --quick
cargo run --release -p dt-bench --bin bench_baseline -- --out /tmp/bench_smoke.json
