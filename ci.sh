#!/bin/sh
# Tier-1 CI gate for the workspace: formatting, release build, full
# test suite, and a warning-free clippy pass over every target
# (benches included).
set -eux

cargo fmt --check
cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Docs gate: rustdoc must build warning-free (broken intra-doc links
# fail the build) and every documented example must actually run.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
cargo test -q --workspace --doc

# Chaos smoke: the fault-injection suite, warning-free and serial —
# the soak's stall detection and the watchdog's real-time grace want
# a quiet machine, not test-thread contention.
RUSTFLAGS=-Dwarnings cargo test -q -p dt-server --test chaos -- --test-threads=1

# Observability smoke: start a live dt-serve (stdin held open by the
# sleep), scrape GET /metrics through the bundled example, and require
# a known metric family in the Prometheus exposition.
sleep 20 | ./target/release/dt-serve \
    --stream R:a --query 'SELECT a, COUNT(*) FROM R GROUP BY a' \
    --listen 127.0.0.1:7183 --window 1.0 > /tmp/dt_serve_smoke.json &
SERVE_PID=$!
SCRAPED=0
for _ in $(seq 1 50); do
    if cargo run --release -p dt-server --example scrape -- 127.0.0.1:7183 \
        > /tmp/metrics_smoke.txt 2>/dev/null; then
        SCRAPED=1
        break
    fi
    sleep 0.2
done
test "$SCRAPED" = 1
grep -q '^dt_server_ingest_frames_total' /tmp/metrics_smoke.txt
grep -q '^# TYPE dt_server_queue_depth gauge' /tmp/metrics_smoke.txt
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true

# Bench smoke: every criterion harness must run end to end on a tiny
# time budget, and the perf-trajectory snapshot must regenerate. The
# numbers themselves are not gated here (CI hardware is too noisy);
# BENCH_baseline.json records the interleaved measurements — see its
# methodology field.
CRITERION_BUDGET_MS=25 cargo bench -p dt-bench
cargo run --release -p dt-bench --bin fig8 -- --quick
cargo run --release -p dt-bench --bin bench_baseline -- --out /tmp/bench_smoke.json

# Delay-constraint smoke: the adaptive-controller sweep (DESIGN.md
# §11) must run end to end; its latency/deadline guarantees are gated
# by the dt-triage and dt-metrics test suites, not re-judged here.
(cd /tmp && cargo run --release --manifest-path "$OLDPWD/Cargo.toml" \
    -p dt-bench --bin delay_sweep -- --quick)
