#!/bin/sh
# Tier-1 CI gate for the workspace: formatting, release build, full
# test suite, and a warning-free clippy pass over every target
# (benches included).
set -eux

cargo fmt --check
cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Docs gate: rustdoc must build warning-free (broken intra-doc links
# fail the build) and every documented example must actually run.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
cargo test -q --workspace --doc

# Chaos smoke: the fault-injection suite — including the 240-client
# connection-churn soak under readiness faults (DESIGN.md §14) —
# warning-free and serial: the soak's stall detection and the
# watchdog's real-time grace want a quiet machine, not test-thread
# contention. The drain suite pins event-loop shutdown latency with
# idle connections held open.
RUSTFLAGS=-Dwarnings cargo test -q -p dt-server --test chaos -- --test-threads=1
RUSTFLAGS=-Dwarnings cargo test -q -p dt-server --test drain -- --test-threads=1

# Observability smoke: start a live dt-serve (stdin held open by the
# sleep), scrape GET /metrics through the bundled example, and require
# a known metric family in the Prometheus exposition.
sleep 20 | ./target/release/dt-serve \
    --stream R:a --query 'SELECT a, COUNT(*) FROM R GROUP BY a' \
    --listen 127.0.0.1:7183 --window 1.0 > /tmp/dt_serve_smoke.json &
SERVE_PID=$!
SCRAPED=0
for _ in $(seq 1 50); do
    if cargo run --release -p dt-server --example scrape -- 127.0.0.1:7183 \
        > /tmp/metrics_smoke.txt 2>/dev/null; then
        SCRAPED=1
        break
    fi
    sleep 0.2
done
test "$SCRAPED" = 1
grep -q '^dt_server_ingest_frames_total' /tmp/metrics_smoke.txt
grep -q '^# TYPE dt_server_queue_depth gauge' /tmp/metrics_smoke.txt
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true

# Registry smoke: a live dt-serve under the chaos disconnect fault.
# Connection ids are assigned in first-line order (readiness poll,
# two registers, tuple sender, final list), so the sender — the only
# connection that ever writes a 6th line — lands somewhere in 2..=5;
# injecting the same line-5 cut on all four ids guarantees it is
# dropped mid-stream and must reconnect-and-resend, whatever the
# exact numbering. Two queries registered over the loopback client
# share stream R's triage; both must emit windows and show up in
# /stats.
sleep 20 | ./target/release/dt-serve \
    --stream R:a --query 'SELECT a, COUNT(*) FROM R GROUP BY a' \
    --listen 127.0.0.1:7184 --window 1.0 --grace 100 \
    --ingest eventloop --reactors 2 \
    --fault-disconnect 2:5 --fault-disconnect 3:5 \
    --fault-disconnect 4:5 --fault-disconnect 5:5 \
    > /tmp/dt_registry_smoke.json &
REG_PID=$!
REG_UP=0
for _ in $(seq 1 50); do
    if ./target/release/dt-serve list --addr 127.0.0.1:7184 \
        > /dev/null 2>&1; then
        REG_UP=1
        break
    fi
    sleep 0.2
done
test "$REG_UP" = 1
./target/release/dt-serve register --addr 127.0.0.1:7184 \
    --sql 'SELECT a, COUNT(*) FROM R GROUP BY a' | grep -q '^registered 1$'
./target/release/dt-serve register --addr 127.0.0.1:7184 \
    --sql 'SELECT a, SUM(a) FROM R GROUP BY a' --tenant acme --weight 2 \
    | grep -q '^registered 2$'
# The producer is paced (one write per line) so the injected close is
# seen as a write failure rather than vanishing into the TCP buffer —
# the sender must then actually reconnect-and-resend at least once.
i=0; while [ "$i" -lt 40 ]; do
    printf '{"stream":"R","row":[%d],"ts":%d}\n' $((i % 3)) $((1500000 + i * 20000))
    sleep 0.01
    i=$((i + 1))
done | ./target/release/dt-serve send --addr 127.0.0.1:7184 \
    2> /tmp/registry_send.txt
cat /tmp/registry_send.txt
grep -Eq 'forwarded 40 lines \([1-9][0-9]* retries\)' /tmp/registry_send.txt
sleep 3
./target/release/dt-serve list --addr 127.0.0.1:7184 > /tmp/registry_list.txt
cat /tmp/registry_list.txt
test "$(grep -c ' active ' /tmp/registry_list.txt)" = 3
grep -vq 'windows=0' /tmp/registry_list.txt
cargo run --release -p dt-server --example scrape -- 127.0.0.1:7184 --raw \
    > /tmp/registry_stats.json
grep -q '"queries":\[' /tmp/registry_stats.json
grep -q 'SELECT a, SUM(a) FROM R GROUP BY a' /tmp/registry_stats.json
kill "$REG_PID" 2>/dev/null || true
wait "$REG_PID" 2>/dev/null || true

# Shard smoke: the same registry-under-disconnect-fault run, but with
# a 4-wide worker group per stream (DESIGN.md §15). Both registered
# queries share stream R's *sharded* triage; every query must still
# emit windows through the merge_sealed fan-in, and the per-shard
# metric families must be live in the exposition.
sleep 20 | ./target/release/dt-serve \
    --stream R:a --query 'SELECT a, COUNT(*) FROM R GROUP BY a' \
    --listen 127.0.0.1:7185 --window 1.0 --grace 100 --shards 4 \
    --ingest eventloop --reactors 2 \
    --fault-disconnect 2:5 --fault-disconnect 3:5 \
    --fault-disconnect 4:5 --fault-disconnect 5:5 \
    > /tmp/dt_shard_smoke.json &
SHARD_PID=$!
SHARD_UP=0
for _ in $(seq 1 50); do
    if ./target/release/dt-serve list --addr 127.0.0.1:7185 \
        > /dev/null 2>&1; then
        SHARD_UP=1
        break
    fi
    sleep 0.2
done
test "$SHARD_UP" = 1
./target/release/dt-serve register --addr 127.0.0.1:7185 \
    --sql 'SELECT a, SUM(a) FROM R GROUP BY a' | grep -q '^registered 1$'
i=0; while [ "$i" -lt 40 ]; do
    printf '{"stream":"R","row":[%d],"ts":%d}\n' $((i % 3)) $((1500000 + i * 20000))
    sleep 0.01
    i=$((i + 1))
done | ./target/release/dt-serve send --addr 127.0.0.1:7185 \
    2> /tmp/shard_send.txt
grep -Eq 'forwarded 40 lines' /tmp/shard_send.txt
sleep 3
./target/release/dt-serve list --addr 127.0.0.1:7185 > /tmp/shard_list.txt
cat /tmp/shard_list.txt
test "$(grep -c ' active ' /tmp/shard_list.txt)" = 2
grep -vq 'windows=0' /tmp/shard_list.txt
cargo run --release -p dt-server --example scrape -- 127.0.0.1:7185 \
    > /tmp/shard_metrics.txt
grep -q 'dt_server_shard_depth{stream="R",shard="3"}' /tmp/shard_metrics.txt
grep -q 'dt_server_steal_batches_total{stream="R",shard="0"}' /tmp/shard_metrics.txt
kill "$SHARD_PID" 2>/dev/null || true
wait "$SHARD_PID" 2>/dev/null || true

# Columnar-equivalence gate: the vectorized executor and the batched
# synopsis inserts must stay bit-identical to the row-at-a-time
# reference across randomized plans and inputs.
cargo test -q -p dt-engine --test columnar_equivalence
cargo test -q -p dt-synopsis --test columnar_equivalence

# Bench smoke: every criterion harness must run end to end on a tiny
# time budget, and the perf-trajectory snapshot must regenerate. The
# numbers themselves are not gated here (CI hardware is too noisy);
# BENCH_baseline.json records the interleaved measurements — see its
# methodology field.
CRITERION_BUDGET_MS=25 cargo bench -p dt-bench
cargo run --release -p dt-bench --bin fig8 -- --quick
cargo run --release -p dt-bench --bin bench_baseline -- --out /tmp/bench_smoke.json

# Perf-regression smoke: re-measure the headline metrics and fail if
# any is >10 % worse than the committed BENCH_baseline.json after
# machine-drift normalization (see bench_baseline's calibration
# kernel). --quick keeps it cheap; suspicious metrics self-escalate.
cargo run --release -p dt-bench --bin bench_baseline -- --compare --quick

# Delay-constraint smoke: the adaptive-controller sweep (DESIGN.md
# §11) must run end to end; its latency/deadline guarantees are gated
# by the dt-triage and dt-metrics test suites, not re-judged here.
(cd /tmp && cargo run --release --manifest-path "$OLDPWD/Cargo.toml" \
    -p dt-bench --bin delay_sweep -- --quick)

# Multi-query sharing smoke: the shared-vs-naive sweep (DESIGN.md §12)
# must run end to end; the shared-triage invariant itself is gated by
# dt-server's registry tests.
(cd /tmp && cargo run --release --manifest-path "$OLDPWD/Cargo.toml" \
    -p dt-bench --bin multiq_sweep -- --quick)

# Connection-sweep smoke: both ingest planes under real worker
# processes (DESIGN.md §14) must accept, ingest, and drain end to
# end; the full curves live in the committed CONN_sweep.json.
(cd /tmp && cargo run --release --manifest-path "$OLDPWD/Cargo.toml" \
    -p dt-bench --bin conn_sweep -- --quick)

# Shard-sweep smoke: the worker-group critical-path model (DESIGN.md
# §15) must run end to end, conserve every tuple through the sharded
# seal/merge path, and hold the >=2x zipfian-at-4-shards headline the
# binary itself asserts; the full curves live in SHARD_sweep.json.
(cd /tmp && cargo run --release --manifest-path "$OLDPWD/Cargo.toml" \
    -p dt-bench --bin shard_sweep -- --quick)
