/root/repo/target/debug/examples/bursty_replay-9733673bc6eed353.d: crates/dt-server/examples/bursty_replay.rs

/root/repo/target/debug/examples/bursty_replay-9733673bc6eed353: crates/dt-server/examples/bursty_replay.rs

crates/dt-server/examples/bursty_replay.rs:
