/root/repo/target/debug/examples/sensor_sliding-fc2d72f07f461b00.d: crates/datatriage/../../examples/sensor_sliding.rs Cargo.toml

/root/repo/target/debug/examples/libsensor_sliding-fc2d72f07f461b00.rmeta: crates/datatriage/../../examples/sensor_sliding.rs Cargo.toml

crates/datatriage/../../examples/sensor_sliding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
