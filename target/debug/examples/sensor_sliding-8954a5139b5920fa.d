/root/repo/target/debug/examples/sensor_sliding-8954a5139b5920fa.d: crates/datatriage/../../examples/sensor_sliding.rs

/root/repo/target/debug/examples/sensor_sliding-8954a5139b5920fa: crates/datatriage/../../examples/sensor_sliding.rs

crates/datatriage/../../examples/sensor_sliding.rs:
