/root/repo/target/debug/examples/dashboard-7fbb5aa00f64386e.d: crates/datatriage/../../examples/dashboard.rs

/root/repo/target/debug/examples/dashboard-7fbb5aa00f64386e: crates/datatriage/../../examples/dashboard.rs

crates/datatriage/../../examples/dashboard.rs:
