/root/repo/target/debug/examples/market_feed-b465d958977006bc.d: crates/datatriage/../../examples/market_feed.rs Cargo.toml

/root/repo/target/debug/examples/libmarket_feed-b465d958977006bc.rmeta: crates/datatriage/../../examples/market_feed.rs Cargo.toml

crates/datatriage/../../examples/market_feed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
