/root/repo/target/debug/examples/quickstart-b3efeda2fa650684.d: crates/datatriage/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b3efeda2fa650684: crates/datatriage/../../examples/quickstart.rs

crates/datatriage/../../examples/quickstart.rs:
