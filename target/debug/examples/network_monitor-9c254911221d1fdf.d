/root/repo/target/debug/examples/network_monitor-9c254911221d1fdf.d: crates/datatriage/../../examples/network_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libnetwork_monitor-9c254911221d1fdf.rmeta: crates/datatriage/../../examples/network_monitor.rs Cargo.toml

crates/datatriage/../../examples/network_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
