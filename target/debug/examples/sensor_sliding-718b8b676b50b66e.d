/root/repo/target/debug/examples/sensor_sliding-718b8b676b50b66e.d: crates/datatriage/../../examples/sensor_sliding.rs

/root/repo/target/debug/examples/sensor_sliding-718b8b676b50b66e: crates/datatriage/../../examples/sensor_sliding.rs

crates/datatriage/../../examples/sensor_sliding.rs:
