/root/repo/target/debug/examples/quickstart-192204e105a35d69.d: crates/datatriage/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-192204e105a35d69: crates/datatriage/../../examples/quickstart.rs

crates/datatriage/../../examples/quickstart.rs:
