/root/repo/target/debug/examples/market_feed-f6a1031d703b5471.d: crates/datatriage/../../examples/market_feed.rs

/root/repo/target/debug/examples/market_feed-f6a1031d703b5471: crates/datatriage/../../examples/market_feed.rs

crates/datatriage/../../examples/market_feed.rs:
