/root/repo/target/debug/examples/network_monitor-af6e905c4c70d93c.d: crates/datatriage/../../examples/network_monitor.rs

/root/repo/target/debug/examples/network_monitor-af6e905c4c70d93c: crates/datatriage/../../examples/network_monitor.rs

crates/datatriage/../../examples/network_monitor.rs:
