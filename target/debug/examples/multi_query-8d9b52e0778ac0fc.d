/root/repo/target/debug/examples/multi_query-8d9b52e0778ac0fc.d: crates/datatriage/../../examples/multi_query.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_query-8d9b52e0778ac0fc.rmeta: crates/datatriage/../../examples/multi_query.rs Cargo.toml

crates/datatriage/../../examples/multi_query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
