/root/repo/target/debug/examples/dashboard-c62f3c4b62fdb88c.d: crates/datatriage/../../examples/dashboard.rs

/root/repo/target/debug/examples/dashboard-c62f3c4b62fdb88c: crates/datatriage/../../examples/dashboard.rs

crates/datatriage/../../examples/dashboard.rs:
