/root/repo/target/debug/examples/quickstart-398fe8c595dc9a8e.d: crates/datatriage/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-398fe8c595dc9a8e.rmeta: crates/datatriage/../../examples/quickstart.rs Cargo.toml

crates/datatriage/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
