/root/repo/target/debug/examples/dashboard-54269e436bed308a.d: crates/datatriage/../../examples/dashboard.rs Cargo.toml

/root/repo/target/debug/examples/libdashboard-54269e436bed308a.rmeta: crates/datatriage/../../examples/dashboard.rs Cargo.toml

crates/datatriage/../../examples/dashboard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
