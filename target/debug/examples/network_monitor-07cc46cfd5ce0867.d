/root/repo/target/debug/examples/network_monitor-07cc46cfd5ce0867.d: crates/datatriage/../../examples/network_monitor.rs

/root/repo/target/debug/examples/network_monitor-07cc46cfd5ce0867: crates/datatriage/../../examples/network_monitor.rs

crates/datatriage/../../examples/network_monitor.rs:
