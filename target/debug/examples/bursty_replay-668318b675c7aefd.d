/root/repo/target/debug/examples/bursty_replay-668318b675c7aefd.d: crates/dt-server/examples/bursty_replay.rs Cargo.toml

/root/repo/target/debug/examples/libbursty_replay-668318b675c7aefd.rmeta: crates/dt-server/examples/bursty_replay.rs Cargo.toml

crates/dt-server/examples/bursty_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
