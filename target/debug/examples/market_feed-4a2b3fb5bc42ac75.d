/root/repo/target/debug/examples/market_feed-4a2b3fb5bc42ac75.d: crates/datatriage/../../examples/market_feed.rs

/root/repo/target/debug/examples/market_feed-4a2b3fb5bc42ac75: crates/datatriage/../../examples/market_feed.rs

crates/datatriage/../../examples/market_feed.rs:
