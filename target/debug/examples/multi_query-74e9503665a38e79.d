/root/repo/target/debug/examples/multi_query-74e9503665a38e79.d: crates/datatriage/../../examples/multi_query.rs

/root/repo/target/debug/examples/multi_query-74e9503665a38e79: crates/datatriage/../../examples/multi_query.rs

crates/datatriage/../../examples/multi_query.rs:
