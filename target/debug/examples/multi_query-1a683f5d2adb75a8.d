/root/repo/target/debug/examples/multi_query-1a683f5d2adb75a8.d: crates/datatriage/../../examples/multi_query.rs

/root/repo/target/debug/examples/multi_query-1a683f5d2adb75a8: crates/datatriage/../../examples/multi_query.rs

crates/datatriage/../../examples/multi_query.rs:
