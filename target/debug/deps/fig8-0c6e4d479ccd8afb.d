/root/repo/target/debug/deps/fig8-0c6e4d479ccd8afb.d: crates/dt-bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-0c6e4d479ccd8afb: crates/dt-bench/src/bin/fig8.rs

crates/dt-bench/src/bin/fig8.rs:
