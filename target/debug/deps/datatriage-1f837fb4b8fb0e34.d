/root/repo/target/debug/deps/datatriage-1f837fb4b8fb0e34.d: crates/datatriage/src/lib.rs

/root/repo/target/debug/deps/datatriage-1f837fb4b8fb0e34: crates/datatriage/src/lib.rs

crates/datatriage/src/lib.rs:
