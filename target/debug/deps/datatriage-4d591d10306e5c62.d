/root/repo/target/debug/deps/datatriage-4d591d10306e5c62.d: crates/datatriage/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdatatriage-4d591d10306e5c62.rmeta: crates/datatriage/src/lib.rs Cargo.toml

crates/datatriage/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
