/root/repo/target/debug/deps/rewrite_vs_algebra-1cb95383b7da2234.d: crates/datatriage/../../tests/rewrite_vs_algebra.rs

/root/repo/target/debug/deps/rewrite_vs_algebra-1cb95383b7da2234: crates/datatriage/../../tests/rewrite_vs_algebra.rs

crates/datatriage/../../tests/rewrite_vs_algebra.rs:
