/root/repo/target/debug/deps/ablation_policy-0c97817936225e33.d: crates/dt-bench/src/bin/ablation_policy.rs

/root/repo/target/debug/deps/ablation_policy-0c97817936225e33: crates/dt-bench/src/bin/ablation_policy.rs

crates/dt-bench/src/bin/ablation_policy.rs:
