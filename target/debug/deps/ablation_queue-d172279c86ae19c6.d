/root/repo/target/debug/deps/ablation_queue-d172279c86ae19c6.d: crates/dt-bench/src/bin/ablation_queue.rs Cargo.toml

/root/repo/target/debug/deps/libablation_queue-d172279c86ae19c6.rmeta: crates/dt-bench/src/bin/ablation_queue.rs Cargo.toml

crates/dt-bench/src/bin/ablation_queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
