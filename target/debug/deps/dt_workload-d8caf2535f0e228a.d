/root/repo/target/debug/deps/dt_workload-d8caf2535f0e228a.d: crates/dt-workload/src/lib.rs crates/dt-workload/src/arrival.rs crates/dt-workload/src/gaussian.rs crates/dt-workload/src/replay.rs crates/dt-workload/src/scenario.rs crates/dt-workload/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdt_workload-d8caf2535f0e228a.rmeta: crates/dt-workload/src/lib.rs crates/dt-workload/src/arrival.rs crates/dt-workload/src/gaussian.rs crates/dt-workload/src/replay.rs crates/dt-workload/src/scenario.rs crates/dt-workload/src/trace.rs Cargo.toml

crates/dt-workload/src/lib.rs:
crates/dt-workload/src/arrival.rs:
crates/dt-workload/src/gaussian.rs:
crates/dt-workload/src/replay.rs:
crates/dt-workload/src/scenario.rs:
crates/dt-workload/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
