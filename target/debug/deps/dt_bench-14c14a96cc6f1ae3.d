/root/repo/target/debug/deps/dt_bench-14c14a96cc6f1ae3.d: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

/root/repo/target/debug/deps/libdt_bench-14c14a96cc6f1ae3.rlib: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

/root/repo/target/debug/deps/libdt_bench-14c14a96cc6f1ae3.rmeta: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

crates/dt-bench/src/lib.rs:
crates/dt-bench/src/svg.rs:
