/root/repo/target/debug/deps/structure_props-9ad56dac21c133d3.d: crates/dt-synopsis/tests/structure_props.rs

/root/repo/target/debug/deps/structure_props-9ad56dac21c133d3: crates/dt-synopsis/tests/structure_props.rs

crates/dt-synopsis/tests/structure_props.rs:
