/root/repo/target/debug/deps/dt_rewrite-6c47cd17880a2f93.d: crates/dt-rewrite/src/lib.rs crates/dt-rewrite/src/evaluator.rs crates/dt-rewrite/src/shadow.rs

/root/repo/target/debug/deps/libdt_rewrite-6c47cd17880a2f93.rlib: crates/dt-rewrite/src/lib.rs crates/dt-rewrite/src/evaluator.rs crates/dt-rewrite/src/shadow.rs

/root/repo/target/debug/deps/libdt_rewrite-6c47cd17880a2f93.rmeta: crates/dt-rewrite/src/lib.rs crates/dt-rewrite/src/evaluator.rs crates/dt-rewrite/src/shadow.rs

crates/dt-rewrite/src/lib.rs:
crates/dt-rewrite/src/evaluator.rs:
crates/dt-rewrite/src/shadow.rs:
