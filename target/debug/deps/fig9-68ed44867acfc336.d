/root/repo/target/debug/deps/fig9-68ed44867acfc336.d: crates/dt-bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-68ed44867acfc336: crates/dt-bench/src/bin/fig9.rs

crates/dt-bench/src/bin/fig9.rs:
