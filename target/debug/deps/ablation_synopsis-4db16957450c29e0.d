/root/repo/target/debug/deps/ablation_synopsis-4db16957450c29e0.d: crates/dt-bench/src/bin/ablation_synopsis.rs Cargo.toml

/root/repo/target/debug/deps/libablation_synopsis-4db16957450c29e0.rmeta: crates/dt-bench/src/bin/ablation_synopsis.rs Cargo.toml

crates/dt-bench/src/bin/ablation_synopsis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
