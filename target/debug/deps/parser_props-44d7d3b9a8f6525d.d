/root/repo/target/debug/deps/parser_props-44d7d3b9a8f6525d.d: crates/dt-query/tests/parser_props.rs

/root/repo/target/debug/deps/parser_props-44d7d3b9a8f6525d: crates/dt-query/tests/parser_props.rs

crates/dt-query/tests/parser_props.rs:
