/root/repo/target/debug/deps/end_to_end-939061f342af6bed.d: crates/datatriage/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-939061f342af6bed: crates/datatriage/../../tests/end_to_end.rs

crates/datatriage/../../tests/end_to_end.rs:
