/root/repo/target/debug/deps/ablation_synopsis-4e7b017706a35081.d: crates/dt-bench/src/bin/ablation_synopsis.rs

/root/repo/target/debug/deps/ablation_synopsis-4e7b017706a35081: crates/dt-bench/src/bin/ablation_synopsis.rs

crates/dt-bench/src/bin/ablation_synopsis.rs:
