/root/repo/target/debug/deps/dt_engine-7f9e4fc16d23226b.d: crates/dt-engine/src/lib.rs crates/dt-engine/src/aggregate.rs crates/dt-engine/src/cost.rs crates/dt-engine/src/exec.rs crates/dt-engine/src/incremental.rs crates/dt-engine/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libdt_engine-7f9e4fc16d23226b.rmeta: crates/dt-engine/src/lib.rs crates/dt-engine/src/aggregate.rs crates/dt-engine/src/cost.rs crates/dt-engine/src/exec.rs crates/dt-engine/src/incremental.rs crates/dt-engine/src/window.rs Cargo.toml

crates/dt-engine/src/lib.rs:
crates/dt-engine/src/aggregate.rs:
crates/dt-engine/src/cost.rs:
crates/dt-engine/src/exec.rs:
crates/dt-engine/src/incremental.rs:
crates/dt-engine/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
