/root/repo/target/debug/deps/dt_engine-862bc051f71ba32b.d: crates/dt-engine/src/lib.rs crates/dt-engine/src/aggregate.rs crates/dt-engine/src/cost.rs crates/dt-engine/src/exec.rs crates/dt-engine/src/incremental.rs crates/dt-engine/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libdt_engine-862bc051f71ba32b.rmeta: crates/dt-engine/src/lib.rs crates/dt-engine/src/aggregate.rs crates/dt-engine/src/cost.rs crates/dt-engine/src/exec.rs crates/dt-engine/src/incremental.rs crates/dt-engine/src/window.rs Cargo.toml

crates/dt-engine/src/lib.rs:
crates/dt-engine/src/aggregate.rs:
crates/dt-engine/src/cost.rs:
crates/dt-engine/src/exec.rs:
crates/dt-engine/src/incremental.rs:
crates/dt-engine/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
