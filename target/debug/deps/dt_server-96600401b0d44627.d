/root/repo/target/debug/deps/dt_server-96600401b0d44627.d: crates/dt-server/src/lib.rs crates/dt-server/src/client.rs crates/dt-server/src/config.rs crates/dt-server/src/frame.rs crates/dt-server/src/server.rs crates/dt-server/src/source.rs crates/dt-server/src/stats.rs crates/dt-server/src/worker.rs

/root/repo/target/debug/deps/libdt_server-96600401b0d44627.rlib: crates/dt-server/src/lib.rs crates/dt-server/src/client.rs crates/dt-server/src/config.rs crates/dt-server/src/frame.rs crates/dt-server/src/server.rs crates/dt-server/src/source.rs crates/dt-server/src/stats.rs crates/dt-server/src/worker.rs

/root/repo/target/debug/deps/libdt_server-96600401b0d44627.rmeta: crates/dt-server/src/lib.rs crates/dt-server/src/client.rs crates/dt-server/src/config.rs crates/dt-server/src/frame.rs crates/dt-server/src/server.rs crates/dt-server/src/source.rs crates/dt-server/src/stats.rs crates/dt-server/src/worker.rs

crates/dt-server/src/lib.rs:
crates/dt-server/src/client.rs:
crates/dt-server/src/config.rs:
crates/dt-server/src/frame.rs:
crates/dt-server/src/server.rs:
crates/dt-server/src/source.rs:
crates/dt-server/src/stats.rs:
crates/dt-server/src/worker.rs:
