/root/repo/target/debug/deps/incremental_vs_batch-309d88205294ce82.d: crates/dt-engine/tests/incremental_vs_batch.rs Cargo.toml

/root/repo/target/debug/deps/libincremental_vs_batch-309d88205294ce82.rmeta: crates/dt-engine/tests/incremental_vs_batch.rs Cargo.toml

crates/dt-engine/tests/incremental_vs_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
