/root/repo/target/debug/deps/dt_engine-d91cff0aa761d477.d: crates/dt-engine/src/lib.rs crates/dt-engine/src/aggregate.rs crates/dt-engine/src/cost.rs crates/dt-engine/src/exec.rs crates/dt-engine/src/incremental.rs crates/dt-engine/src/window.rs

/root/repo/target/debug/deps/libdt_engine-d91cff0aa761d477.rlib: crates/dt-engine/src/lib.rs crates/dt-engine/src/aggregate.rs crates/dt-engine/src/cost.rs crates/dt-engine/src/exec.rs crates/dt-engine/src/incremental.rs crates/dt-engine/src/window.rs

/root/repo/target/debug/deps/libdt_engine-d91cff0aa761d477.rmeta: crates/dt-engine/src/lib.rs crates/dt-engine/src/aggregate.rs crates/dt-engine/src/cost.rs crates/dt-engine/src/exec.rs crates/dt-engine/src/incremental.rs crates/dt-engine/src/window.rs

crates/dt-engine/src/lib.rs:
crates/dt-engine/src/aggregate.rs:
crates/dt-engine/src/cost.rs:
crates/dt-engine/src/exec.rs:
crates/dt-engine/src/incremental.rs:
crates/dt-engine/src/window.rs:
