/root/repo/target/debug/deps/rewrite_vs_algebra-298b72dde2b4be01.d: crates/datatriage/../../tests/rewrite_vs_algebra.rs Cargo.toml

/root/repo/target/debug/deps/librewrite_vs_algebra-298b72dde2b4be01.rmeta: crates/datatriage/../../tests/rewrite_vs_algebra.rs Cargo.toml

crates/datatriage/../../tests/rewrite_vs_algebra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
