/root/repo/target/debug/deps/datatriage-3870ad1f880ef69f.d: crates/datatriage/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdatatriage-3870ad1f880ef69f.rmeta: crates/datatriage/src/lib.rs Cargo.toml

crates/datatriage/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
