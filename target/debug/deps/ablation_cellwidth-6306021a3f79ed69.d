/root/repo/target/debug/deps/ablation_cellwidth-6306021a3f79ed69.d: crates/dt-bench/src/bin/ablation_cellwidth.rs

/root/repo/target/debug/deps/ablation_cellwidth-6306021a3f79ed69: crates/dt-bench/src/bin/ablation_cellwidth.rs

crates/dt-bench/src/bin/ablation_cellwidth.rs:
