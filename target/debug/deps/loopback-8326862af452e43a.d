/root/repo/target/debug/deps/loopback-8326862af452e43a.d: crates/dt-server/tests/loopback.rs Cargo.toml

/root/repo/target/debug/deps/libloopback-8326862af452e43a.rmeta: crates/dt-server/tests/loopback.rs Cargo.toml

crates/dt-server/tests/loopback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
