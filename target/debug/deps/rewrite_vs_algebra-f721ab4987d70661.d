/root/repo/target/debug/deps/rewrite_vs_algebra-f721ab4987d70661.d: crates/datatriage/../../tests/rewrite_vs_algebra.rs

/root/repo/target/debug/deps/rewrite_vs_algebra-f721ab4987d70661: crates/datatriage/../../tests/rewrite_vs_algebra.rs

crates/datatriage/../../tests/rewrite_vs_algebra.rs:
