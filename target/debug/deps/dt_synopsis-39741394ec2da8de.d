/root/repo/target/debug/deps/dt_synopsis-39741394ec2da8de.d: crates/dt-synopsis/src/lib.rs crates/dt-synopsis/src/adaptive.rs crates/dt-synopsis/src/mhist.rs crates/dt-synopsis/src/reservoir.rs crates/dt-synopsis/src/sparse.rs crates/dt-synopsis/src/synopsis.rs crates/dt-synopsis/src/wavelet.rs Cargo.toml

/root/repo/target/debug/deps/libdt_synopsis-39741394ec2da8de.rmeta: crates/dt-synopsis/src/lib.rs crates/dt-synopsis/src/adaptive.rs crates/dt-synopsis/src/mhist.rs crates/dt-synopsis/src/reservoir.rs crates/dt-synopsis/src/sparse.rs crates/dt-synopsis/src/synopsis.rs crates/dt-synopsis/src/wavelet.rs Cargo.toml

crates/dt-synopsis/src/lib.rs:
crates/dt-synopsis/src/adaptive.rs:
crates/dt-synopsis/src/mhist.rs:
crates/dt-synopsis/src/reservoir.rs:
crates/dt-synopsis/src/sparse.rs:
crates/dt-synopsis/src/synopsis.rs:
crates/dt-synopsis/src/wavelet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
