/root/repo/target/debug/deps/datatriage-b8b03ac726f496cf.d: crates/datatriage/src/lib.rs

/root/repo/target/debug/deps/datatriage-b8b03ac726f496cf: crates/datatriage/src/lib.rs

crates/datatriage/src/lib.rs:
