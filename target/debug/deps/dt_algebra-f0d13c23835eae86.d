/root/repo/target/debug/deps/dt_algebra-f0d13c23835eae86.d: crates/dt-algebra/src/lib.rs crates/dt-algebra/src/diff.rs crates/dt-algebra/src/relation.rs crates/dt-algebra/src/signed.rs crates/dt-algebra/src/spj.rs

/root/repo/target/debug/deps/libdt_algebra-f0d13c23835eae86.rlib: crates/dt-algebra/src/lib.rs crates/dt-algebra/src/diff.rs crates/dt-algebra/src/relation.rs crates/dt-algebra/src/signed.rs crates/dt-algebra/src/spj.rs

/root/repo/target/debug/deps/libdt_algebra-f0d13c23835eae86.rmeta: crates/dt-algebra/src/lib.rs crates/dt-algebra/src/diff.rs crates/dt-algebra/src/relation.rs crates/dt-algebra/src/signed.rs crates/dt-algebra/src/spj.rs

crates/dt-algebra/src/lib.rs:
crates/dt-algebra/src/diff.rs:
crates/dt-algebra/src/relation.rs:
crates/dt-algebra/src/signed.rs:
crates/dt-algebra/src/spj.rs:
