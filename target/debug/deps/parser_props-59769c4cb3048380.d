/root/repo/target/debug/deps/parser_props-59769c4cb3048380.d: crates/dt-query/tests/parser_props.rs Cargo.toml

/root/repo/target/debug/deps/libparser_props-59769c4cb3048380.rmeta: crates/dt-query/tests/parser_props.rs Cargo.toml

crates/dt-query/tests/parser_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
