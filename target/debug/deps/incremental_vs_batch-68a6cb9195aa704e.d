/root/repo/target/debug/deps/incremental_vs_batch-68a6cb9195aa704e.d: crates/dt-engine/tests/incremental_vs_batch.rs

/root/repo/target/debug/deps/incremental_vs_batch-68a6cb9195aa704e: crates/dt-engine/tests/incremental_vs_batch.rs

crates/dt-engine/tests/incremental_vs_batch.rs:
