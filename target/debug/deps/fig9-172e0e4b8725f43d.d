/root/repo/target/debug/deps/fig9-172e0e4b8725f43d.d: crates/dt-bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-172e0e4b8725f43d: crates/dt-bench/src/bin/fig9.rs

crates/dt-bench/src/bin/fig9.rs:
