/root/repo/target/debug/deps/fig6-c44b9bd55d63e92f.d: crates/dt-bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-c44b9bd55d63e92f.rmeta: crates/dt-bench/src/bin/fig6.rs Cargo.toml

crates/dt-bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
