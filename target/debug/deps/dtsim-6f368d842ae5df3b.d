/root/repo/target/debug/deps/dtsim-6f368d842ae5df3b.d: crates/datatriage/src/bin/dtsim.rs

/root/repo/target/debug/deps/dtsim-6f368d842ae5df3b: crates/datatriage/src/bin/dtsim.rs

crates/datatriage/src/bin/dtsim.rs:
