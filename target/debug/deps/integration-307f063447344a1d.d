/root/repo/target/debug/deps/integration-307f063447344a1d.d: crates/datatriage/../../tests/integration.rs

/root/repo/target/debug/deps/integration-307f063447344a1d: crates/datatriage/../../tests/integration.rs

crates/datatriage/../../tests/integration.rs:
