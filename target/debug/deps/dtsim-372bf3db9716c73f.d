/root/repo/target/debug/deps/dtsim-372bf3db9716c73f.d: crates/datatriage/src/bin/dtsim.rs

/root/repo/target/debug/deps/dtsim-372bf3db9716c73f: crates/datatriage/src/bin/dtsim.rs

crates/datatriage/src/bin/dtsim.rs:
