/root/repo/target/debug/deps/dt_bench-a185b4a3bf83673f.d: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

/root/repo/target/debug/deps/dt_bench-a185b4a3bf83673f: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

crates/dt-bench/src/lib.rs:
crates/dt-bench/src/svg.rs:
