/root/repo/target/debug/deps/dt_algebra-0c414eaab481960f.d: crates/dt-algebra/src/lib.rs crates/dt-algebra/src/diff.rs crates/dt-algebra/src/relation.rs crates/dt-algebra/src/signed.rs crates/dt-algebra/src/spj.rs

/root/repo/target/debug/deps/dt_algebra-0c414eaab481960f: crates/dt-algebra/src/lib.rs crates/dt-algebra/src/diff.rs crates/dt-algebra/src/relation.rs crates/dt-algebra/src/signed.rs crates/dt-algebra/src/spj.rs

crates/dt-algebra/src/lib.rs:
crates/dt-algebra/src/diff.rs:
crates/dt-algebra/src/relation.rs:
crates/dt-algebra/src/signed.rs:
crates/dt-algebra/src/spj.rs:
