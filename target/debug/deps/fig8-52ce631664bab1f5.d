/root/repo/target/debug/deps/fig8-52ce631664bab1f5.d: crates/dt-bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-52ce631664bab1f5.rmeta: crates/dt-bench/src/bin/fig8.rs Cargo.toml

crates/dt-bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
