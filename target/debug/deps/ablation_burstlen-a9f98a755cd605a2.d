/root/repo/target/debug/deps/ablation_burstlen-a9f98a755cd605a2.d: crates/dt-bench/src/bin/ablation_burstlen.rs Cargo.toml

/root/repo/target/debug/deps/libablation_burstlen-a9f98a755cd605a2.rmeta: crates/dt-bench/src/bin/ablation_burstlen.rs Cargo.toml

crates/dt-bench/src/bin/ablation_burstlen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
