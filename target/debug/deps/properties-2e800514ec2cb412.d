/root/repo/target/debug/deps/properties-2e800514ec2cb412.d: crates/dt-algebra/tests/properties.rs

/root/repo/target/debug/deps/properties-2e800514ec2cb412: crates/dt-algebra/tests/properties.rs

crates/dt-algebra/tests/properties.rs:
