/root/repo/target/debug/deps/ablation_cellwidth-f19cdf5a6a6bb268.d: crates/dt-bench/src/bin/ablation_cellwidth.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cellwidth-f19cdf5a6a6bb268.rmeta: crates/dt-bench/src/bin/ablation_cellwidth.rs Cargo.toml

crates/dt-bench/src/bin/ablation_cellwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
