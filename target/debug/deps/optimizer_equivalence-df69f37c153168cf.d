/root/repo/target/debug/deps/optimizer_equivalence-df69f37c153168cf.d: crates/dt-engine/tests/optimizer_equivalence.rs

/root/repo/target/debug/deps/optimizer_equivalence-df69f37c153168cf: crates/dt-engine/tests/optimizer_equivalence.rs

crates/dt-engine/tests/optimizer_equivalence.rs:
