/root/repo/target/debug/deps/datatriage-550bb22810e689ed.d: crates/datatriage/src/lib.rs

/root/repo/target/debug/deps/libdatatriage-550bb22810e689ed.rlib: crates/datatriage/src/lib.rs

/root/repo/target/debug/deps/libdatatriage-550bb22810e689ed.rmeta: crates/datatriage/src/lib.rs

crates/datatriage/src/lib.rs:
