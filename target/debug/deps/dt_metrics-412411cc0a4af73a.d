/root/repo/target/debug/deps/dt_metrics-412411cc0a4af73a.d: crates/dt-metrics/src/lib.rs crates/dt-metrics/src/experiment.rs crates/dt-metrics/src/ideal.rs crates/dt-metrics/src/rms.rs crates/dt-metrics/src/stats.rs crates/dt-metrics/src/summary.rs

/root/repo/target/debug/deps/libdt_metrics-412411cc0a4af73a.rlib: crates/dt-metrics/src/lib.rs crates/dt-metrics/src/experiment.rs crates/dt-metrics/src/ideal.rs crates/dt-metrics/src/rms.rs crates/dt-metrics/src/stats.rs crates/dt-metrics/src/summary.rs

/root/repo/target/debug/deps/libdt_metrics-412411cc0a4af73a.rmeta: crates/dt-metrics/src/lib.rs crates/dt-metrics/src/experiment.rs crates/dt-metrics/src/ideal.rs crates/dt-metrics/src/rms.rs crates/dt-metrics/src/stats.rs crates/dt-metrics/src/summary.rs

crates/dt-metrics/src/lib.rs:
crates/dt-metrics/src/experiment.rs:
crates/dt-metrics/src/ideal.rs:
crates/dt-metrics/src/rms.rs:
crates/dt-metrics/src/stats.rs:
crates/dt-metrics/src/summary.rs:
