/root/repo/target/debug/deps/integration-26032d3aeb6f49c9.d: crates/datatriage/../../tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-26032d3aeb6f49c9.rmeta: crates/datatriage/../../tests/integration.rs Cargo.toml

crates/datatriage/../../tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
