/root/repo/target/debug/deps/value_props-08f82f2ecbf64ab4.d: crates/dt-types/tests/value_props.rs

/root/repo/target/debug/deps/value_props-08f82f2ecbf64ab4: crates/dt-types/tests/value_props.rs

crates/dt-types/tests/value_props.rs:
