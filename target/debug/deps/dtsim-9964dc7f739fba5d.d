/root/repo/target/debug/deps/dtsim-9964dc7f739fba5d.d: crates/datatriage/src/bin/dtsim.rs Cargo.toml

/root/repo/target/debug/deps/libdtsim-9964dc7f739fba5d.rmeta: crates/datatriage/src/bin/dtsim.rs Cargo.toml

crates/datatriage/src/bin/dtsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
