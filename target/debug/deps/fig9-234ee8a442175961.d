/root/repo/target/debug/deps/fig9-234ee8a442175961.d: crates/dt-bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-234ee8a442175961.rmeta: crates/dt-bench/src/bin/fig9.rs Cargo.toml

crates/dt-bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
