/root/repo/target/debug/deps/dt_metrics-0749070fc2258750.d: crates/dt-metrics/src/lib.rs crates/dt-metrics/src/experiment.rs crates/dt-metrics/src/ideal.rs crates/dt-metrics/src/rms.rs crates/dt-metrics/src/stats.rs crates/dt-metrics/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libdt_metrics-0749070fc2258750.rmeta: crates/dt-metrics/src/lib.rs crates/dt-metrics/src/experiment.rs crates/dt-metrics/src/ideal.rs crates/dt-metrics/src/rms.rs crates/dt-metrics/src/stats.rs crates/dt-metrics/src/summary.rs Cargo.toml

crates/dt-metrics/src/lib.rs:
crates/dt-metrics/src/experiment.rs:
crates/dt-metrics/src/ideal.rs:
crates/dt-metrics/src/rms.rs:
crates/dt-metrics/src/stats.rs:
crates/dt-metrics/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
