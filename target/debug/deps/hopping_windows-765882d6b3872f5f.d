/root/repo/target/debug/deps/hopping_windows-765882d6b3872f5f.d: crates/dt-triage/tests/hopping_windows.rs Cargo.toml

/root/repo/target/debug/deps/libhopping_windows-765882d6b3872f5f.rmeta: crates/dt-triage/tests/hopping_windows.rs Cargo.toml

crates/dt-triage/tests/hopping_windows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
