/root/repo/target/debug/deps/dt_types-091afff6e2bbb092.d: crates/dt-types/src/lib.rs crates/dt-types/src/clock.rs crates/dt-types/src/error.rs crates/dt-types/src/json.rs crates/dt-types/src/row.rs crates/dt-types/src/schema.rs crates/dt-types/src/time.rs crates/dt-types/src/value.rs crates/dt-types/src/window.rs

/root/repo/target/debug/deps/libdt_types-091afff6e2bbb092.rlib: crates/dt-types/src/lib.rs crates/dt-types/src/clock.rs crates/dt-types/src/error.rs crates/dt-types/src/json.rs crates/dt-types/src/row.rs crates/dt-types/src/schema.rs crates/dt-types/src/time.rs crates/dt-types/src/value.rs crates/dt-types/src/window.rs

/root/repo/target/debug/deps/libdt_types-091afff6e2bbb092.rmeta: crates/dt-types/src/lib.rs crates/dt-types/src/clock.rs crates/dt-types/src/error.rs crates/dt-types/src/json.rs crates/dt-types/src/row.rs crates/dt-types/src/schema.rs crates/dt-types/src/time.rs crates/dt-types/src/value.rs crates/dt-types/src/window.rs

crates/dt-types/src/lib.rs:
crates/dt-types/src/clock.rs:
crates/dt-types/src/error.rs:
crates/dt-types/src/json.rs:
crates/dt-types/src/row.rs:
crates/dt-types/src/schema.rs:
crates/dt-types/src/time.rs:
crates/dt-types/src/value.rs:
crates/dt-types/src/window.rs:
