/root/repo/target/debug/deps/dt_triage-4553fda220d326e8.d: crates/dt-triage/src/lib.rs crates/dt-triage/src/executor.rs crates/dt-triage/src/merge.rs crates/dt-triage/src/pipeline.rs crates/dt-triage/src/policy.rs crates/dt-triage/src/queue.rs crates/dt-triage/src/reorder.rs crates/dt-triage/src/shared.rs crates/dt-triage/src/shed.rs crates/dt-triage/src/stream.rs

/root/repo/target/debug/deps/libdt_triage-4553fda220d326e8.rlib: crates/dt-triage/src/lib.rs crates/dt-triage/src/executor.rs crates/dt-triage/src/merge.rs crates/dt-triage/src/pipeline.rs crates/dt-triage/src/policy.rs crates/dt-triage/src/queue.rs crates/dt-triage/src/reorder.rs crates/dt-triage/src/shared.rs crates/dt-triage/src/shed.rs crates/dt-triage/src/stream.rs

/root/repo/target/debug/deps/libdt_triage-4553fda220d326e8.rmeta: crates/dt-triage/src/lib.rs crates/dt-triage/src/executor.rs crates/dt-triage/src/merge.rs crates/dt-triage/src/pipeline.rs crates/dt-triage/src/policy.rs crates/dt-triage/src/queue.rs crates/dt-triage/src/reorder.rs crates/dt-triage/src/shared.rs crates/dt-triage/src/shed.rs crates/dt-triage/src/stream.rs

crates/dt-triage/src/lib.rs:
crates/dt-triage/src/executor.rs:
crates/dt-triage/src/merge.rs:
crates/dt-triage/src/pipeline.rs:
crates/dt-triage/src/policy.rs:
crates/dt-triage/src/queue.rs:
crates/dt-triage/src/reorder.rs:
crates/dt-triage/src/shared.rs:
crates/dt-triage/src/shed.rs:
crates/dt-triage/src/stream.rs:
