/root/repo/target/debug/deps/ablation_policy-a4f33b32cac24570.d: crates/dt-bench/src/bin/ablation_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_policy-a4f33b32cac24570.rmeta: crates/dt-bench/src/bin/ablation_policy.rs Cargo.toml

crates/dt-bench/src/bin/ablation_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
