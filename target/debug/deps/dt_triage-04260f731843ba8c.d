/root/repo/target/debug/deps/dt_triage-04260f731843ba8c.d: crates/dt-triage/src/lib.rs crates/dt-triage/src/executor.rs crates/dt-triage/src/merge.rs crates/dt-triage/src/pipeline.rs crates/dt-triage/src/policy.rs crates/dt-triage/src/queue.rs crates/dt-triage/src/reorder.rs crates/dt-triage/src/shared.rs crates/dt-triage/src/shed.rs crates/dt-triage/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libdt_triage-04260f731843ba8c.rmeta: crates/dt-triage/src/lib.rs crates/dt-triage/src/executor.rs crates/dt-triage/src/merge.rs crates/dt-triage/src/pipeline.rs crates/dt-triage/src/policy.rs crates/dt-triage/src/queue.rs crates/dt-triage/src/reorder.rs crates/dt-triage/src/shared.rs crates/dt-triage/src/shed.rs crates/dt-triage/src/stream.rs Cargo.toml

crates/dt-triage/src/lib.rs:
crates/dt-triage/src/executor.rs:
crates/dt-triage/src/merge.rs:
crates/dt-triage/src/pipeline.rs:
crates/dt-triage/src/policy.rs:
crates/dt-triage/src/queue.rs:
crates/dt-triage/src/reorder.rs:
crates/dt-triage/src/shared.rs:
crates/dt-triage/src/shed.rs:
crates/dt-triage/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
