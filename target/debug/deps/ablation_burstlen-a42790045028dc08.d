/root/repo/target/debug/deps/ablation_burstlen-a42790045028dc08.d: crates/dt-bench/src/bin/ablation_burstlen.rs

/root/repo/target/debug/deps/ablation_burstlen-a42790045028dc08: crates/dt-bench/src/bin/ablation_burstlen.rs

crates/dt-bench/src/bin/ablation_burstlen.rs:
