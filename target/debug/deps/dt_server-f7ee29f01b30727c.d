/root/repo/target/debug/deps/dt_server-f7ee29f01b30727c.d: crates/dt-server/src/lib.rs crates/dt-server/src/client.rs crates/dt-server/src/config.rs crates/dt-server/src/frame.rs crates/dt-server/src/server.rs crates/dt-server/src/source.rs crates/dt-server/src/stats.rs crates/dt-server/src/worker.rs

/root/repo/target/debug/deps/dt_server-f7ee29f01b30727c: crates/dt-server/src/lib.rs crates/dt-server/src/client.rs crates/dt-server/src/config.rs crates/dt-server/src/frame.rs crates/dt-server/src/server.rs crates/dt-server/src/source.rs crates/dt-server/src/stats.rs crates/dt-server/src/worker.rs

crates/dt-server/src/lib.rs:
crates/dt-server/src/client.rs:
crates/dt-server/src/config.rs:
crates/dt-server/src/frame.rs:
crates/dt-server/src/server.rs:
crates/dt-server/src/source.rs:
crates/dt-server/src/stats.rs:
crates/dt-server/src/worker.rs:
