/root/repo/target/debug/deps/queue_model-caf8e486f7edf0b0.d: crates/dt-triage/tests/queue_model.rs

/root/repo/target/debug/deps/queue_model-caf8e486f7edf0b0: crates/dt-triage/tests/queue_model.rs

crates/dt-triage/tests/queue_model.rs:
