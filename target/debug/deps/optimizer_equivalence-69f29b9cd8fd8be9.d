/root/repo/target/debug/deps/optimizer_equivalence-69f29b9cd8fd8be9.d: crates/dt-engine/tests/optimizer_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/liboptimizer_equivalence-69f29b9cd8fd8be9.rmeta: crates/dt-engine/tests/optimizer_equivalence.rs Cargo.toml

crates/dt-engine/tests/optimizer_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
