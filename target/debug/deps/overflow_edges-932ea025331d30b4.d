/root/repo/target/debug/deps/overflow_edges-932ea025331d30b4.d: crates/dt-triage/tests/overflow_edges.rs Cargo.toml

/root/repo/target/debug/deps/liboverflow_edges-932ea025331d30b4.rmeta: crates/dt-triage/tests/overflow_edges.rs Cargo.toml

crates/dt-triage/tests/overflow_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
