/root/repo/target/debug/deps/dt_bench-f264aef560e5ced9.d: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs Cargo.toml

/root/repo/target/debug/deps/libdt_bench-f264aef560e5ced9.rmeta: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs Cargo.toml

crates/dt-bench/src/lib.rs:
crates/dt-bench/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
