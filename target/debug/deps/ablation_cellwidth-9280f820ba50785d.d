/root/repo/target/debug/deps/ablation_cellwidth-9280f820ba50785d.d: crates/dt-bench/src/bin/ablation_cellwidth.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cellwidth-9280f820ba50785d.rmeta: crates/dt-bench/src/bin/ablation_cellwidth.rs Cargo.toml

crates/dt-bench/src/bin/ablation_cellwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
