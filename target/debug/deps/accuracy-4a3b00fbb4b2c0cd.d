/root/repo/target/debug/deps/accuracy-4a3b00fbb4b2c0cd.d: crates/dt-synopsis/tests/accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libaccuracy-4a3b00fbb4b2c0cd.rmeta: crates/dt-synopsis/tests/accuracy.rs Cargo.toml

crates/dt-synopsis/tests/accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
