/root/repo/target/debug/deps/ablation_synopsis-3f4fc2537d1cf89b.d: crates/dt-bench/src/bin/ablation_synopsis.rs Cargo.toml

/root/repo/target/debug/deps/libablation_synopsis-3f4fc2537d1cf89b.rmeta: crates/dt-bench/src/bin/ablation_synopsis.rs Cargo.toml

crates/dt-bench/src/bin/ablation_synopsis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
