/root/repo/target/debug/deps/synopsis_modes-081feb4c44f6732e.d: crates/dt-triage/tests/synopsis_modes.rs Cargo.toml

/root/repo/target/debug/deps/libsynopsis_modes-081feb4c44f6732e.rmeta: crates/dt-triage/tests/synopsis_modes.rs Cargo.toml

crates/dt-triage/tests/synopsis_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
