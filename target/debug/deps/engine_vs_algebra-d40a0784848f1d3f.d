/root/repo/target/debug/deps/engine_vs_algebra-d40a0784848f1d3f.d: crates/dt-engine/tests/engine_vs_algebra.rs

/root/repo/target/debug/deps/engine_vs_algebra-d40a0784848f1d3f: crates/dt-engine/tests/engine_vs_algebra.rs

crates/dt-engine/tests/engine_vs_algebra.rs:
