/root/repo/target/debug/deps/loopback-97218a4e6122f9d1.d: crates/dt-server/tests/loopback.rs

/root/repo/target/debug/deps/loopback-97218a4e6122f9d1: crates/dt-server/tests/loopback.rs

crates/dt-server/tests/loopback.rs:
