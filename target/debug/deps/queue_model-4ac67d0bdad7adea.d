/root/repo/target/debug/deps/queue_model-4ac67d0bdad7adea.d: crates/dt-triage/tests/queue_model.rs Cargo.toml

/root/repo/target/debug/deps/libqueue_model-4ac67d0bdad7adea.rmeta: crates/dt-triage/tests/queue_model.rs Cargo.toml

crates/dt-triage/tests/queue_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
