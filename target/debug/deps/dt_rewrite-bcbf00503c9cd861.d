/root/repo/target/debug/deps/dt_rewrite-bcbf00503c9cd861.d: crates/dt-rewrite/src/lib.rs crates/dt-rewrite/src/evaluator.rs crates/dt-rewrite/src/shadow.rs Cargo.toml

/root/repo/target/debug/deps/libdt_rewrite-bcbf00503c9cd861.rmeta: crates/dt-rewrite/src/lib.rs crates/dt-rewrite/src/evaluator.rs crates/dt-rewrite/src/shadow.rs Cargo.toml

crates/dt-rewrite/src/lib.rs:
crates/dt-rewrite/src/evaluator.rs:
crates/dt-rewrite/src/shadow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
