/root/repo/target/debug/deps/synopsis_ops-d4d3b8939d3e9be9.d: crates/dt-bench/benches/synopsis_ops.rs Cargo.toml

/root/repo/target/debug/deps/libsynopsis_ops-d4d3b8939d3e9be9.rmeta: crates/dt-bench/benches/synopsis_ops.rs Cargo.toml

crates/dt-bench/benches/synopsis_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
