/root/repo/target/debug/deps/proptest-ae38089f48a99502.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ae38089f48a99502.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ae38089f48a99502.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
