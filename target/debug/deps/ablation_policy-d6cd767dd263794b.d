/root/repo/target/debug/deps/ablation_policy-d6cd767dd263794b.d: crates/dt-bench/src/bin/ablation_policy.rs

/root/repo/target/debug/deps/ablation_policy-d6cd767dd263794b: crates/dt-bench/src/bin/ablation_policy.rs

crates/dt-bench/src/bin/ablation_policy.rs:
