/root/repo/target/debug/deps/dt_bench-51d851819515cffe.d: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

/root/repo/target/debug/deps/libdt_bench-51d851819515cffe.rlib: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

/root/repo/target/debug/deps/libdt_bench-51d851819515cffe.rmeta: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

crates/dt-bench/src/lib.rs:
crates/dt-bench/src/svg.rs:
