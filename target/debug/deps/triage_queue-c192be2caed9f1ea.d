/root/repo/target/debug/deps/triage_queue-c192be2caed9f1ea.d: crates/dt-bench/benches/triage_queue.rs Cargo.toml

/root/repo/target/debug/deps/libtriage_queue-c192be2caed9f1ea.rmeta: crates/dt-bench/benches/triage_queue.rs Cargo.toml

crates/dt-bench/benches/triage_queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
