/root/repo/target/debug/deps/hopping_windows-9e7bdb1b8865b2a1.d: crates/dt-triage/tests/hopping_windows.rs

/root/repo/target/debug/deps/hopping_windows-9e7bdb1b8865b2a1: crates/dt-triage/tests/hopping_windows.rs

crates/dt-triage/tests/hopping_windows.rs:
