/root/repo/target/debug/deps/fig6-d10465b66d980fdb.d: crates/dt-bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-d10465b66d980fdb: crates/dt-bench/src/bin/fig6.rs

crates/dt-bench/src/bin/fig6.rs:
