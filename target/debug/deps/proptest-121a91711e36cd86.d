/root/repo/target/debug/deps/proptest-121a91711e36cd86.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-121a91711e36cd86: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
