/root/repo/target/debug/deps/ablation_burstlen-b275bb655c3b1811.d: crates/dt-bench/src/bin/ablation_burstlen.rs

/root/repo/target/debug/deps/ablation_burstlen-b275bb655c3b1811: crates/dt-bench/src/bin/ablation_burstlen.rs

crates/dt-bench/src/bin/ablation_burstlen.rs:
