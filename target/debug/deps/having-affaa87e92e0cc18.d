/root/repo/target/debug/deps/having-affaa87e92e0cc18.d: crates/dt-triage/tests/having.rs Cargo.toml

/root/repo/target/debug/deps/libhaving-affaa87e92e0cc18.rmeta: crates/dt-triage/tests/having.rs Cargo.toml

crates/dt-triage/tests/having.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
