/root/repo/target/debug/deps/dtsim-a906290f15e88712.d: crates/datatriage/src/bin/dtsim.rs

/root/repo/target/debug/deps/dtsim-a906290f15e88712: crates/datatriage/src/bin/dtsim.rs

crates/datatriage/src/bin/dtsim.rs:
