/root/repo/target/debug/deps/dt_query-fd7fb113c8b8a5e4.d: crates/dt-query/src/lib.rs crates/dt-query/src/ast.rs crates/dt-query/src/explain.rs crates/dt-query/src/lexer.rs crates/dt-query/src/optimizer.rs crates/dt-query/src/parser.rs crates/dt-query/src/plan.rs

/root/repo/target/debug/deps/dt_query-fd7fb113c8b8a5e4: crates/dt-query/src/lib.rs crates/dt-query/src/ast.rs crates/dt-query/src/explain.rs crates/dt-query/src/lexer.rs crates/dt-query/src/optimizer.rs crates/dt-query/src/parser.rs crates/dt-query/src/plan.rs

crates/dt-query/src/lib.rs:
crates/dt-query/src/ast.rs:
crates/dt-query/src/explain.rs:
crates/dt-query/src/lexer.rs:
crates/dt-query/src/optimizer.rs:
crates/dt-query/src/parser.rs:
crates/dt-query/src/plan.rs:
