/root/repo/target/debug/deps/end_to_end-6979836e9263dbbf.d: crates/datatriage/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-6979836e9263dbbf: crates/datatriage/../../tests/end_to_end.rs

crates/datatriage/../../tests/end_to_end.rs:
