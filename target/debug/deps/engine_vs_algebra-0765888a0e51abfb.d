/root/repo/target/debug/deps/engine_vs_algebra-0765888a0e51abfb.d: crates/dt-engine/tests/engine_vs_algebra.rs Cargo.toml

/root/repo/target/debug/deps/libengine_vs_algebra-0765888a0e51abfb.rmeta: crates/dt-engine/tests/engine_vs_algebra.rs Cargo.toml

crates/dt-engine/tests/engine_vs_algebra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
