/root/repo/target/debug/deps/loopback-40c7ba68fb069cba.d: crates/dt-server/tests/loopback.rs

/root/repo/target/debug/deps/loopback-40c7ba68fb069cba: crates/dt-server/tests/loopback.rs

crates/dt-server/tests/loopback.rs:
