/root/repo/target/debug/deps/dt_server-674f23aa993b397d.d: crates/dt-server/src/lib.rs

/root/repo/target/debug/deps/dt_server-674f23aa993b397d: crates/dt-server/src/lib.rs

crates/dt-server/src/lib.rs:
