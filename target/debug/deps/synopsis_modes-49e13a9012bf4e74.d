/root/repo/target/debug/deps/synopsis_modes-49e13a9012bf4e74.d: crates/dt-triage/tests/synopsis_modes.rs

/root/repo/target/debug/deps/synopsis_modes-49e13a9012bf4e74: crates/dt-triage/tests/synopsis_modes.rs

crates/dt-triage/tests/synopsis_modes.rs:
