/root/repo/target/debug/deps/dt_rewrite-613c37df632a51f1.d: crates/dt-rewrite/src/lib.rs crates/dt-rewrite/src/evaluator.rs crates/dt-rewrite/src/shadow.rs

/root/repo/target/debug/deps/dt_rewrite-613c37df632a51f1: crates/dt-rewrite/src/lib.rs crates/dt-rewrite/src/evaluator.rs crates/dt-rewrite/src/shadow.rs

crates/dt-rewrite/src/lib.rs:
crates/dt-rewrite/src/evaluator.rs:
crates/dt-rewrite/src/shadow.rs:
