/root/repo/target/debug/deps/value_props-eea191f30c5ea8cc.d: crates/dt-types/tests/value_props.rs Cargo.toml

/root/repo/target/debug/deps/libvalue_props-eea191f30c5ea8cc.rmeta: crates/dt-types/tests/value_props.rs Cargo.toml

crates/dt-types/tests/value_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
