/root/repo/target/debug/deps/dt_algebra-9e3ab3c015920bc8.d: crates/dt-algebra/src/lib.rs crates/dt-algebra/src/diff.rs crates/dt-algebra/src/relation.rs crates/dt-algebra/src/signed.rs crates/dt-algebra/src/spj.rs Cargo.toml

/root/repo/target/debug/deps/libdt_algebra-9e3ab3c015920bc8.rmeta: crates/dt-algebra/src/lib.rs crates/dt-algebra/src/diff.rs crates/dt-algebra/src/relation.rs crates/dt-algebra/src/signed.rs crates/dt-algebra/src/spj.rs Cargo.toml

crates/dt-algebra/src/lib.rs:
crates/dt-algebra/src/diff.rs:
crates/dt-algebra/src/relation.rs:
crates/dt-algebra/src/signed.rs:
crates/dt-algebra/src/spj.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
