/root/repo/target/debug/deps/dt_serve-e619a2107ca7c9e8.d: crates/dt-server/src/bin/dt-serve.rs

/root/repo/target/debug/deps/dt_serve-e619a2107ca7c9e8: crates/dt-server/src/bin/dt-serve.rs

crates/dt-server/src/bin/dt-serve.rs:
