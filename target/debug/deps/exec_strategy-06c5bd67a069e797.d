/root/repo/target/debug/deps/exec_strategy-06c5bd67a069e797.d: crates/dt-triage/tests/exec_strategy.rs

/root/repo/target/debug/deps/exec_strategy-06c5bd67a069e797: crates/dt-triage/tests/exec_strategy.rs

crates/dt-triage/tests/exec_strategy.rs:
