/root/repo/target/debug/deps/datatriage-f0ffe397bf37eb19.d: crates/datatriage/src/lib.rs

/root/repo/target/debug/deps/libdatatriage-f0ffe397bf37eb19.rlib: crates/datatriage/src/lib.rs

/root/repo/target/debug/deps/libdatatriage-f0ffe397bf37eb19.rmeta: crates/datatriage/src/lib.rs

crates/datatriage/src/lib.rs:
