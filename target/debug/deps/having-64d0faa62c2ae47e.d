/root/repo/target/debug/deps/having-64d0faa62c2ae47e.d: crates/dt-triage/tests/having.rs

/root/repo/target/debug/deps/having-64d0faa62c2ae47e: crates/dt-triage/tests/having.rs

crates/dt-triage/tests/having.rs:
