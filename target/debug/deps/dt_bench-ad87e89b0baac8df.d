/root/repo/target/debug/deps/dt_bench-ad87e89b0baac8df.d: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

/root/repo/target/debug/deps/dt_bench-ad87e89b0baac8df: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

crates/dt-bench/src/lib.rs:
crates/dt-bench/src/svg.rs:
