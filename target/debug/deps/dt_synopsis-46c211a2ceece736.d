/root/repo/target/debug/deps/dt_synopsis-46c211a2ceece736.d: crates/dt-synopsis/src/lib.rs crates/dt-synopsis/src/adaptive.rs crates/dt-synopsis/src/mhist.rs crates/dt-synopsis/src/reservoir.rs crates/dt-synopsis/src/sparse.rs crates/dt-synopsis/src/synopsis.rs crates/dt-synopsis/src/wavelet.rs

/root/repo/target/debug/deps/dt_synopsis-46c211a2ceece736: crates/dt-synopsis/src/lib.rs crates/dt-synopsis/src/adaptive.rs crates/dt-synopsis/src/mhist.rs crates/dt-synopsis/src/reservoir.rs crates/dt-synopsis/src/sparse.rs crates/dt-synopsis/src/synopsis.rs crates/dt-synopsis/src/wavelet.rs

crates/dt-synopsis/src/lib.rs:
crates/dt-synopsis/src/adaptive.rs:
crates/dt-synopsis/src/mhist.rs:
crates/dt-synopsis/src/reservoir.rs:
crates/dt-synopsis/src/sparse.rs:
crates/dt-synopsis/src/synopsis.rs:
crates/dt-synopsis/src/wavelet.rs:
