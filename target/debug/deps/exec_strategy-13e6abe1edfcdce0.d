/root/repo/target/debug/deps/exec_strategy-13e6abe1edfcdce0.d: crates/dt-triage/tests/exec_strategy.rs Cargo.toml

/root/repo/target/debug/deps/libexec_strategy-13e6abe1edfcdce0.rmeta: crates/dt-triage/tests/exec_strategy.rs Cargo.toml

crates/dt-triage/tests/exec_strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
