/root/repo/target/debug/deps/dt_query-55030a7626dfb88e.d: crates/dt-query/src/lib.rs crates/dt-query/src/ast.rs crates/dt-query/src/explain.rs crates/dt-query/src/lexer.rs crates/dt-query/src/optimizer.rs crates/dt-query/src/parser.rs crates/dt-query/src/plan.rs Cargo.toml

/root/repo/target/debug/deps/libdt_query-55030a7626dfb88e.rmeta: crates/dt-query/src/lib.rs crates/dt-query/src/ast.rs crates/dt-query/src/explain.rs crates/dt-query/src/lexer.rs crates/dt-query/src/optimizer.rs crates/dt-query/src/parser.rs crates/dt-query/src/plan.rs Cargo.toml

crates/dt-query/src/lib.rs:
crates/dt-query/src/ast.rs:
crates/dt-query/src/explain.rs:
crates/dt-query/src/lexer.rs:
crates/dt-query/src/optimizer.rs:
crates/dt-query/src/parser.rs:
crates/dt-query/src/plan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
