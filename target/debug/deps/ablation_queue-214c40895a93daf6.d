/root/repo/target/debug/deps/ablation_queue-214c40895a93daf6.d: crates/dt-bench/src/bin/ablation_queue.rs

/root/repo/target/debug/deps/ablation_queue-214c40895a93daf6: crates/dt-bench/src/bin/ablation_queue.rs

crates/dt-bench/src/bin/ablation_queue.rs:
