/root/repo/target/debug/deps/dtsim-f91e97fdf049a668.d: crates/datatriage/src/bin/dtsim.rs Cargo.toml

/root/repo/target/debug/deps/libdtsim-f91e97fdf049a668.rmeta: crates/datatriage/src/bin/dtsim.rs Cargo.toml

crates/datatriage/src/bin/dtsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
