/root/repo/target/debug/deps/fig8-660c501521e86f82.d: crates/dt-bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-660c501521e86f82: crates/dt-bench/src/bin/fig8.rs

crates/dt-bench/src/bin/fig8.rs:
