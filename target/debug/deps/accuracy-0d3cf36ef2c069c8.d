/root/repo/target/debug/deps/accuracy-0d3cf36ef2c069c8.d: crates/dt-synopsis/tests/accuracy.rs

/root/repo/target/debug/deps/accuracy-0d3cf36ef2c069c8: crates/dt-synopsis/tests/accuracy.rs

crates/dt-synopsis/tests/accuracy.rs:
