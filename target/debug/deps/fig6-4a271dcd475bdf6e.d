/root/repo/target/debug/deps/fig6-4a271dcd475bdf6e.d: crates/dt-bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-4a271dcd475bdf6e: crates/dt-bench/src/bin/fig6.rs

crates/dt-bench/src/bin/fig6.rs:
