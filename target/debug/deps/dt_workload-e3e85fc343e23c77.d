/root/repo/target/debug/deps/dt_workload-e3e85fc343e23c77.d: crates/dt-workload/src/lib.rs crates/dt-workload/src/arrival.rs crates/dt-workload/src/gaussian.rs crates/dt-workload/src/replay.rs crates/dt-workload/src/scenario.rs crates/dt-workload/src/trace.rs

/root/repo/target/debug/deps/libdt_workload-e3e85fc343e23c77.rlib: crates/dt-workload/src/lib.rs crates/dt-workload/src/arrival.rs crates/dt-workload/src/gaussian.rs crates/dt-workload/src/replay.rs crates/dt-workload/src/scenario.rs crates/dt-workload/src/trace.rs

/root/repo/target/debug/deps/libdt_workload-e3e85fc343e23c77.rmeta: crates/dt-workload/src/lib.rs crates/dt-workload/src/arrival.rs crates/dt-workload/src/gaussian.rs crates/dt-workload/src/replay.rs crates/dt-workload/src/scenario.rs crates/dt-workload/src/trace.rs

crates/dt-workload/src/lib.rs:
crates/dt-workload/src/arrival.rs:
crates/dt-workload/src/gaussian.rs:
crates/dt-workload/src/replay.rs:
crates/dt-workload/src/scenario.rs:
crates/dt-workload/src/trace.rs:
