/root/repo/target/debug/deps/shadow_vs_algebra-321752f12f5992dd.d: crates/dt-rewrite/tests/shadow_vs_algebra.rs

/root/repo/target/debug/deps/shadow_vs_algebra-321752f12f5992dd: crates/dt-rewrite/tests/shadow_vs_algebra.rs

crates/dt-rewrite/tests/shadow_vs_algebra.rs:
