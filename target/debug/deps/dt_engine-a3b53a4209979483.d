/root/repo/target/debug/deps/dt_engine-a3b53a4209979483.d: crates/dt-engine/src/lib.rs crates/dt-engine/src/aggregate.rs crates/dt-engine/src/cost.rs crates/dt-engine/src/exec.rs crates/dt-engine/src/incremental.rs crates/dt-engine/src/window.rs

/root/repo/target/debug/deps/dt_engine-a3b53a4209979483: crates/dt-engine/src/lib.rs crates/dt-engine/src/aggregate.rs crates/dt-engine/src/cost.rs crates/dt-engine/src/exec.rs crates/dt-engine/src/incremental.rs crates/dt-engine/src/window.rs

crates/dt-engine/src/lib.rs:
crates/dt-engine/src/aggregate.rs:
crates/dt-engine/src/cost.rs:
crates/dt-engine/src/exec.rs:
crates/dt-engine/src/incremental.rs:
crates/dt-engine/src/window.rs:
