/root/repo/target/debug/deps/structure_props-c1e76364e7c6104e.d: crates/dt-synopsis/tests/structure_props.rs Cargo.toml

/root/repo/target/debug/deps/libstructure_props-c1e76364e7c6104e.rmeta: crates/dt-synopsis/tests/structure_props.rs Cargo.toml

crates/dt-synopsis/tests/structure_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
