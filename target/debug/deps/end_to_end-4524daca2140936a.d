/root/repo/target/debug/deps/end_to_end-4524daca2140936a.d: crates/datatriage/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-4524daca2140936a.rmeta: crates/datatriage/../../tests/end_to_end.rs Cargo.toml

crates/datatriage/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
