/root/repo/target/debug/deps/ablation_cellwidth-b19dffe318abf6ec.d: crates/dt-bench/src/bin/ablation_cellwidth.rs

/root/repo/target/debug/deps/ablation_cellwidth-b19dffe318abf6ec: crates/dt-bench/src/bin/ablation_cellwidth.rs

crates/dt-bench/src/bin/ablation_cellwidth.rs:
