/root/repo/target/debug/deps/overflow_edges-9708df76e301b58f.d: crates/dt-triage/tests/overflow_edges.rs

/root/repo/target/debug/deps/overflow_edges-9708df76e301b58f: crates/dt-triage/tests/overflow_edges.rs

crates/dt-triage/tests/overflow_edges.rs:
