/root/repo/target/debug/deps/properties-4f1957927eb2be7e.d: crates/dt-algebra/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-4f1957927eb2be7e.rmeta: crates/dt-algebra/tests/properties.rs Cargo.toml

crates/dt-algebra/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
