/root/repo/target/debug/deps/dt_serve-33a07347784859a8.d: crates/dt-server/src/bin/dt-serve.rs

/root/repo/target/debug/deps/dt_serve-33a07347784859a8: crates/dt-server/src/bin/dt-serve.rs

crates/dt-server/src/bin/dt-serve.rs:
