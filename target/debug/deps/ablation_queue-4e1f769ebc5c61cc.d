/root/repo/target/debug/deps/ablation_queue-4e1f769ebc5c61cc.d: crates/dt-bench/src/bin/ablation_queue.rs Cargo.toml

/root/repo/target/debug/deps/libablation_queue-4e1f769ebc5c61cc.rmeta: crates/dt-bench/src/bin/ablation_queue.rs Cargo.toml

crates/dt-bench/src/bin/ablation_queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
