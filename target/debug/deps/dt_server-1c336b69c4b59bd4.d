/root/repo/target/debug/deps/dt_server-1c336b69c4b59bd4.d: crates/dt-server/src/lib.rs crates/dt-server/src/client.rs crates/dt-server/src/config.rs crates/dt-server/src/frame.rs crates/dt-server/src/server.rs crates/dt-server/src/source.rs crates/dt-server/src/stats.rs crates/dt-server/src/worker.rs Cargo.toml

/root/repo/target/debug/deps/libdt_server-1c336b69c4b59bd4.rmeta: crates/dt-server/src/lib.rs crates/dt-server/src/client.rs crates/dt-server/src/config.rs crates/dt-server/src/frame.rs crates/dt-server/src/server.rs crates/dt-server/src/source.rs crates/dt-server/src/stats.rs crates/dt-server/src/worker.rs Cargo.toml

crates/dt-server/src/lib.rs:
crates/dt-server/src/client.rs:
crates/dt-server/src/config.rs:
crates/dt-server/src/frame.rs:
crates/dt-server/src/server.rs:
crates/dt-server/src/source.rs:
crates/dt-server/src/stats.rs:
crates/dt-server/src/worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
