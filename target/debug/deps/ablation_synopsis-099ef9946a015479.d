/root/repo/target/debug/deps/ablation_synopsis-099ef9946a015479.d: crates/dt-bench/src/bin/ablation_synopsis.rs

/root/repo/target/debug/deps/ablation_synopsis-099ef9946a015479: crates/dt-bench/src/bin/ablation_synopsis.rs

crates/dt-bench/src/bin/ablation_synopsis.rs:
