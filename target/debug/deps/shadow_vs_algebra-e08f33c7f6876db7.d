/root/repo/target/debug/deps/shadow_vs_algebra-e08f33c7f6876db7.d: crates/dt-rewrite/tests/shadow_vs_algebra.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_vs_algebra-e08f33c7f6876db7.rmeta: crates/dt-rewrite/tests/shadow_vs_algebra.rs Cargo.toml

crates/dt-rewrite/tests/shadow_vs_algebra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
