/root/repo/target/debug/deps/integration-1d43fd2a128e3df0.d: crates/datatriage/../../tests/integration.rs

/root/repo/target/debug/deps/integration-1d43fd2a128e3df0: crates/datatriage/../../tests/integration.rs

crates/datatriage/../../tests/integration.rs:
