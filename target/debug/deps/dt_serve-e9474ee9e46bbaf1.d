/root/repo/target/debug/deps/dt_serve-e9474ee9e46bbaf1.d: crates/dt-server/src/bin/dt-serve.rs Cargo.toml

/root/repo/target/debug/deps/libdt_serve-e9474ee9e46bbaf1.rmeta: crates/dt-server/src/bin/dt-serve.rs Cargo.toml

crates/dt-server/src/bin/dt-serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
