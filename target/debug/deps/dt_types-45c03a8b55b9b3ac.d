/root/repo/target/debug/deps/dt_types-45c03a8b55b9b3ac.d: crates/dt-types/src/lib.rs crates/dt-types/src/clock.rs crates/dt-types/src/error.rs crates/dt-types/src/json.rs crates/dt-types/src/row.rs crates/dt-types/src/schema.rs crates/dt-types/src/time.rs crates/dt-types/src/value.rs crates/dt-types/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libdt_types-45c03a8b55b9b3ac.rmeta: crates/dt-types/src/lib.rs crates/dt-types/src/clock.rs crates/dt-types/src/error.rs crates/dt-types/src/json.rs crates/dt-types/src/row.rs crates/dt-types/src/schema.rs crates/dt-types/src/time.rs crates/dt-types/src/value.rs crates/dt-types/src/window.rs Cargo.toml

crates/dt-types/src/lib.rs:
crates/dt-types/src/clock.rs:
crates/dt-types/src/error.rs:
crates/dt-types/src/json.rs:
crates/dt-types/src/row.rs:
crates/dt-types/src/schema.rs:
crates/dt-types/src/time.rs:
crates/dt-types/src/value.rs:
crates/dt-types/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
