/root/repo/target/debug/deps/dt_metrics-7abd55462987af9a.d: crates/dt-metrics/src/lib.rs crates/dt-metrics/src/experiment.rs crates/dt-metrics/src/ideal.rs crates/dt-metrics/src/rms.rs crates/dt-metrics/src/stats.rs crates/dt-metrics/src/summary.rs

/root/repo/target/debug/deps/dt_metrics-7abd55462987af9a: crates/dt-metrics/src/lib.rs crates/dt-metrics/src/experiment.rs crates/dt-metrics/src/ideal.rs crates/dt-metrics/src/rms.rs crates/dt-metrics/src/stats.rs crates/dt-metrics/src/summary.rs

crates/dt-metrics/src/lib.rs:
crates/dt-metrics/src/experiment.rs:
crates/dt-metrics/src/ideal.rs:
crates/dt-metrics/src/rms.rs:
crates/dt-metrics/src/stats.rs:
crates/dt-metrics/src/summary.rs:
