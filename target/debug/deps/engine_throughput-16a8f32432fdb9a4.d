/root/repo/target/debug/deps/engine_throughput-16a8f32432fdb9a4.d: crates/dt-bench/benches/engine_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libengine_throughput-16a8f32432fdb9a4.rmeta: crates/dt-bench/benches/engine_throughput.rs Cargo.toml

crates/dt-bench/benches/engine_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
