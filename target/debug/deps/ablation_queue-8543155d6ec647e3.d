/root/repo/target/debug/deps/ablation_queue-8543155d6ec647e3.d: crates/dt-bench/src/bin/ablation_queue.rs

/root/repo/target/debug/deps/ablation_queue-8543155d6ec647e3: crates/dt-bench/src/bin/ablation_queue.rs

crates/dt-bench/src/bin/ablation_queue.rs:
