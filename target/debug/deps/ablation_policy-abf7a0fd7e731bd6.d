/root/repo/target/debug/deps/ablation_policy-abf7a0fd7e731bd6.d: crates/dt-bench/src/bin/ablation_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_policy-abf7a0fd7e731bd6.rmeta: crates/dt-bench/src/bin/ablation_policy.rs Cargo.toml

crates/dt-bench/src/bin/ablation_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
