/root/repo/target/debug/deps/dtsim-488c7e482799558e.d: crates/datatriage/src/bin/dtsim.rs

/root/repo/target/debug/deps/dtsim-488c7e482799558e: crates/datatriage/src/bin/dtsim.rs

crates/datatriage/src/bin/dtsim.rs:
