/root/repo/target/debug/deps/dt_query-66b2ff498d72a436.d: crates/dt-query/src/lib.rs crates/dt-query/src/ast.rs crates/dt-query/src/explain.rs crates/dt-query/src/lexer.rs crates/dt-query/src/optimizer.rs crates/dt-query/src/parser.rs crates/dt-query/src/plan.rs

/root/repo/target/debug/deps/libdt_query-66b2ff498d72a436.rlib: crates/dt-query/src/lib.rs crates/dt-query/src/ast.rs crates/dt-query/src/explain.rs crates/dt-query/src/lexer.rs crates/dt-query/src/optimizer.rs crates/dt-query/src/parser.rs crates/dt-query/src/plan.rs

/root/repo/target/debug/deps/libdt_query-66b2ff498d72a436.rmeta: crates/dt-query/src/lib.rs crates/dt-query/src/ast.rs crates/dt-query/src/explain.rs crates/dt-query/src/lexer.rs crates/dt-query/src/optimizer.rs crates/dt-query/src/parser.rs crates/dt-query/src/plan.rs

crates/dt-query/src/lib.rs:
crates/dt-query/src/ast.rs:
crates/dt-query/src/explain.rs:
crates/dt-query/src/lexer.rs:
crates/dt-query/src/optimizer.rs:
crates/dt-query/src/parser.rs:
crates/dt-query/src/plan.rs:
