/root/repo/target/debug/deps/fig9-2c12995a0f4cd6c4.d: crates/dt-bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-2c12995a0f4cd6c4.rmeta: crates/dt-bench/src/bin/fig9.rs Cargo.toml

crates/dt-bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
