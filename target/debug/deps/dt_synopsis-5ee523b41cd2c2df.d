/root/repo/target/debug/deps/dt_synopsis-5ee523b41cd2c2df.d: crates/dt-synopsis/src/lib.rs crates/dt-synopsis/src/adaptive.rs crates/dt-synopsis/src/mhist.rs crates/dt-synopsis/src/reservoir.rs crates/dt-synopsis/src/sparse.rs crates/dt-synopsis/src/synopsis.rs crates/dt-synopsis/src/wavelet.rs Cargo.toml

/root/repo/target/debug/deps/libdt_synopsis-5ee523b41cd2c2df.rmeta: crates/dt-synopsis/src/lib.rs crates/dt-synopsis/src/adaptive.rs crates/dt-synopsis/src/mhist.rs crates/dt-synopsis/src/reservoir.rs crates/dt-synopsis/src/sparse.rs crates/dt-synopsis/src/synopsis.rs crates/dt-synopsis/src/wavelet.rs Cargo.toml

crates/dt-synopsis/src/lib.rs:
crates/dt-synopsis/src/adaptive.rs:
crates/dt-synopsis/src/mhist.rs:
crates/dt-synopsis/src/reservoir.rs:
crates/dt-synopsis/src/sparse.rs:
crates/dt-synopsis/src/synopsis.rs:
crates/dt-synopsis/src/wavelet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
