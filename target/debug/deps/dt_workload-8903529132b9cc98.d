/root/repo/target/debug/deps/dt_workload-8903529132b9cc98.d: crates/dt-workload/src/lib.rs crates/dt-workload/src/arrival.rs crates/dt-workload/src/gaussian.rs crates/dt-workload/src/replay.rs crates/dt-workload/src/scenario.rs crates/dt-workload/src/trace.rs

/root/repo/target/debug/deps/dt_workload-8903529132b9cc98: crates/dt-workload/src/lib.rs crates/dt-workload/src/arrival.rs crates/dt-workload/src/gaussian.rs crates/dt-workload/src/replay.rs crates/dt-workload/src/scenario.rs crates/dt-workload/src/trace.rs

crates/dt-workload/src/lib.rs:
crates/dt-workload/src/arrival.rs:
crates/dt-workload/src/gaussian.rs:
crates/dt-workload/src/replay.rs:
crates/dt-workload/src/scenario.rs:
crates/dt-workload/src/trace.rs:
