/root/repo/target/debug/deps/fig6_overhead-cc2dda1bd7d8d100.d: crates/dt-bench/benches/fig6_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_overhead-cc2dda1bd7d8d100.rmeta: crates/dt-bench/benches/fig6_overhead.rs Cargo.toml

crates/dt-bench/benches/fig6_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
