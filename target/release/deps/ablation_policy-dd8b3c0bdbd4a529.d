/root/repo/target/release/deps/ablation_policy-dd8b3c0bdbd4a529.d: crates/dt-bench/src/bin/ablation_policy.rs

/root/repo/target/release/deps/ablation_policy-dd8b3c0bdbd4a529: crates/dt-bench/src/bin/ablation_policy.rs

crates/dt-bench/src/bin/ablation_policy.rs:
