/root/repo/target/release/deps/fig8-c817fd82b5ea484c.d: crates/dt-bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-c817fd82b5ea484c: crates/dt-bench/src/bin/fig8.rs

crates/dt-bench/src/bin/fig8.rs:
