/root/repo/target/release/deps/ablation_queue-29dca2eed9a57347.d: crates/dt-bench/src/bin/ablation_queue.rs

/root/repo/target/release/deps/ablation_queue-29dca2eed9a57347: crates/dt-bench/src/bin/ablation_queue.rs

crates/dt-bench/src/bin/ablation_queue.rs:
