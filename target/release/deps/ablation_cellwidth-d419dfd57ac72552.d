/root/repo/target/release/deps/ablation_cellwidth-d419dfd57ac72552.d: crates/dt-bench/src/bin/ablation_cellwidth.rs

/root/repo/target/release/deps/ablation_cellwidth-d419dfd57ac72552: crates/dt-bench/src/bin/ablation_cellwidth.rs

crates/dt-bench/src/bin/ablation_cellwidth.rs:
