/root/repo/target/release/deps/datatriage-0dade58443e42028.d: crates/datatriage/src/lib.rs

/root/repo/target/release/deps/libdatatriage-0dade58443e42028.rlib: crates/datatriage/src/lib.rs

/root/repo/target/release/deps/libdatatriage-0dade58443e42028.rmeta: crates/datatriage/src/lib.rs

crates/datatriage/src/lib.rs:
