/root/repo/target/release/deps/ablation_burstlen-fdb737a7c9ac33b7.d: crates/dt-bench/src/bin/ablation_burstlen.rs

/root/repo/target/release/deps/ablation_burstlen-fdb737a7c9ac33b7: crates/dt-bench/src/bin/ablation_burstlen.rs

crates/dt-bench/src/bin/ablation_burstlen.rs:
