/root/repo/target/release/deps/dt_server-26f21904cfefda51.d: crates/dt-server/src/lib.rs crates/dt-server/src/client.rs crates/dt-server/src/config.rs crates/dt-server/src/frame.rs crates/dt-server/src/server.rs crates/dt-server/src/source.rs crates/dt-server/src/stats.rs crates/dt-server/src/worker.rs

/root/repo/target/release/deps/libdt_server-26f21904cfefda51.rlib: crates/dt-server/src/lib.rs crates/dt-server/src/client.rs crates/dt-server/src/config.rs crates/dt-server/src/frame.rs crates/dt-server/src/server.rs crates/dt-server/src/source.rs crates/dt-server/src/stats.rs crates/dt-server/src/worker.rs

/root/repo/target/release/deps/libdt_server-26f21904cfefda51.rmeta: crates/dt-server/src/lib.rs crates/dt-server/src/client.rs crates/dt-server/src/config.rs crates/dt-server/src/frame.rs crates/dt-server/src/server.rs crates/dt-server/src/source.rs crates/dt-server/src/stats.rs crates/dt-server/src/worker.rs

crates/dt-server/src/lib.rs:
crates/dt-server/src/client.rs:
crates/dt-server/src/config.rs:
crates/dt-server/src/frame.rs:
crates/dt-server/src/server.rs:
crates/dt-server/src/source.rs:
crates/dt-server/src/stats.rs:
crates/dt-server/src/worker.rs:
