/root/repo/target/release/deps/proptest-fb0818e500eb0ee4.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-fb0818e500eb0ee4.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-fb0818e500eb0ee4.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
