/root/repo/target/release/deps/fig9-2c7001f40b22afd8.d: crates/dt-bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-2c7001f40b22afd8: crates/dt-bench/src/bin/fig9.rs

crates/dt-bench/src/bin/fig9.rs:
