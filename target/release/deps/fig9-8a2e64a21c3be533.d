/root/repo/target/release/deps/fig9-8a2e64a21c3be533.d: crates/dt-bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-8a2e64a21c3be533: crates/dt-bench/src/bin/fig9.rs

crates/dt-bench/src/bin/fig9.rs:
