/root/repo/target/release/deps/fig6-7bb74ed4d97691ff.d: crates/dt-bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-7bb74ed4d97691ff: crates/dt-bench/src/bin/fig6.rs

crates/dt-bench/src/bin/fig6.rs:
