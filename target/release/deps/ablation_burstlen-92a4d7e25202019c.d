/root/repo/target/release/deps/ablation_burstlen-92a4d7e25202019c.d: crates/dt-bench/src/bin/ablation_burstlen.rs

/root/repo/target/release/deps/ablation_burstlen-92a4d7e25202019c: crates/dt-bench/src/bin/ablation_burstlen.rs

crates/dt-bench/src/bin/ablation_burstlen.rs:
