/root/repo/target/release/deps/dt_types-00c5a0d7cc7d9574.d: crates/dt-types/src/lib.rs crates/dt-types/src/clock.rs crates/dt-types/src/error.rs crates/dt-types/src/json.rs crates/dt-types/src/row.rs crates/dt-types/src/schema.rs crates/dt-types/src/time.rs crates/dt-types/src/value.rs crates/dt-types/src/window.rs

/root/repo/target/release/deps/libdt_types-00c5a0d7cc7d9574.rlib: crates/dt-types/src/lib.rs crates/dt-types/src/clock.rs crates/dt-types/src/error.rs crates/dt-types/src/json.rs crates/dt-types/src/row.rs crates/dt-types/src/schema.rs crates/dt-types/src/time.rs crates/dt-types/src/value.rs crates/dt-types/src/window.rs

/root/repo/target/release/deps/libdt_types-00c5a0d7cc7d9574.rmeta: crates/dt-types/src/lib.rs crates/dt-types/src/clock.rs crates/dt-types/src/error.rs crates/dt-types/src/json.rs crates/dt-types/src/row.rs crates/dt-types/src/schema.rs crates/dt-types/src/time.rs crates/dt-types/src/value.rs crates/dt-types/src/window.rs

crates/dt-types/src/lib.rs:
crates/dt-types/src/clock.rs:
crates/dt-types/src/error.rs:
crates/dt-types/src/json.rs:
crates/dt-types/src/row.rs:
crates/dt-types/src/schema.rs:
crates/dt-types/src/time.rs:
crates/dt-types/src/value.rs:
crates/dt-types/src/window.rs:
