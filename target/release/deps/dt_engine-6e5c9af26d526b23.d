/root/repo/target/release/deps/dt_engine-6e5c9af26d526b23.d: crates/dt-engine/src/lib.rs crates/dt-engine/src/aggregate.rs crates/dt-engine/src/cost.rs crates/dt-engine/src/exec.rs crates/dt-engine/src/incremental.rs crates/dt-engine/src/window.rs

/root/repo/target/release/deps/libdt_engine-6e5c9af26d526b23.rlib: crates/dt-engine/src/lib.rs crates/dt-engine/src/aggregate.rs crates/dt-engine/src/cost.rs crates/dt-engine/src/exec.rs crates/dt-engine/src/incremental.rs crates/dt-engine/src/window.rs

/root/repo/target/release/deps/libdt_engine-6e5c9af26d526b23.rmeta: crates/dt-engine/src/lib.rs crates/dt-engine/src/aggregate.rs crates/dt-engine/src/cost.rs crates/dt-engine/src/exec.rs crates/dt-engine/src/incremental.rs crates/dt-engine/src/window.rs

crates/dt-engine/src/lib.rs:
crates/dt-engine/src/aggregate.rs:
crates/dt-engine/src/cost.rs:
crates/dt-engine/src/exec.rs:
crates/dt-engine/src/incremental.rs:
crates/dt-engine/src/window.rs:
