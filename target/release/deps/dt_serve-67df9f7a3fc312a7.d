/root/repo/target/release/deps/dt_serve-67df9f7a3fc312a7.d: crates/dt-server/src/bin/dt-serve.rs

/root/repo/target/release/deps/dt_serve-67df9f7a3fc312a7: crates/dt-server/src/bin/dt-serve.rs

crates/dt-server/src/bin/dt-serve.rs:
