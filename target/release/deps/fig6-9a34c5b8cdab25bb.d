/root/repo/target/release/deps/fig6-9a34c5b8cdab25bb.d: crates/dt-bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-9a34c5b8cdab25bb: crates/dt-bench/src/bin/fig6.rs

crates/dt-bench/src/bin/fig6.rs:
