/root/repo/target/release/deps/dtsim-90a80e61a19688e4.d: crates/datatriage/src/bin/dtsim.rs

/root/repo/target/release/deps/dtsim-90a80e61a19688e4: crates/datatriage/src/bin/dtsim.rs

crates/datatriage/src/bin/dtsim.rs:
