/root/repo/target/release/deps/dt_bench-2182d2e34183b103.d: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

/root/repo/target/release/deps/libdt_bench-2182d2e34183b103.rlib: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

/root/repo/target/release/deps/libdt_bench-2182d2e34183b103.rmeta: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

crates/dt-bench/src/lib.rs:
crates/dt-bench/src/svg.rs:
