/root/repo/target/release/deps/dt_bench-959ffe028efe76eb.d: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

/root/repo/target/release/deps/libdt_bench-959ffe028efe76eb.rlib: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

/root/repo/target/release/deps/libdt_bench-959ffe028efe76eb.rmeta: crates/dt-bench/src/lib.rs crates/dt-bench/src/svg.rs

crates/dt-bench/src/lib.rs:
crates/dt-bench/src/svg.rs:
