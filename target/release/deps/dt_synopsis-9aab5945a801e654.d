/root/repo/target/release/deps/dt_synopsis-9aab5945a801e654.d: crates/dt-synopsis/src/lib.rs crates/dt-synopsis/src/adaptive.rs crates/dt-synopsis/src/mhist.rs crates/dt-synopsis/src/reservoir.rs crates/dt-synopsis/src/sparse.rs crates/dt-synopsis/src/synopsis.rs crates/dt-synopsis/src/wavelet.rs

/root/repo/target/release/deps/libdt_synopsis-9aab5945a801e654.rlib: crates/dt-synopsis/src/lib.rs crates/dt-synopsis/src/adaptive.rs crates/dt-synopsis/src/mhist.rs crates/dt-synopsis/src/reservoir.rs crates/dt-synopsis/src/sparse.rs crates/dt-synopsis/src/synopsis.rs crates/dt-synopsis/src/wavelet.rs

/root/repo/target/release/deps/libdt_synopsis-9aab5945a801e654.rmeta: crates/dt-synopsis/src/lib.rs crates/dt-synopsis/src/adaptive.rs crates/dt-synopsis/src/mhist.rs crates/dt-synopsis/src/reservoir.rs crates/dt-synopsis/src/sparse.rs crates/dt-synopsis/src/synopsis.rs crates/dt-synopsis/src/wavelet.rs

crates/dt-synopsis/src/lib.rs:
crates/dt-synopsis/src/adaptive.rs:
crates/dt-synopsis/src/mhist.rs:
crates/dt-synopsis/src/reservoir.rs:
crates/dt-synopsis/src/sparse.rs:
crates/dt-synopsis/src/synopsis.rs:
crates/dt-synopsis/src/wavelet.rs:
