/root/repo/target/release/deps/rand_chacha-dbbf0a60f563baef.d: shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-dbbf0a60f563baef.rlib: shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-dbbf0a60f563baef.rmeta: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
