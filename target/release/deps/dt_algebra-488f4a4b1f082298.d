/root/repo/target/release/deps/dt_algebra-488f4a4b1f082298.d: crates/dt-algebra/src/lib.rs crates/dt-algebra/src/diff.rs crates/dt-algebra/src/relation.rs crates/dt-algebra/src/signed.rs crates/dt-algebra/src/spj.rs

/root/repo/target/release/deps/libdt_algebra-488f4a4b1f082298.rlib: crates/dt-algebra/src/lib.rs crates/dt-algebra/src/diff.rs crates/dt-algebra/src/relation.rs crates/dt-algebra/src/signed.rs crates/dt-algebra/src/spj.rs

/root/repo/target/release/deps/libdt_algebra-488f4a4b1f082298.rmeta: crates/dt-algebra/src/lib.rs crates/dt-algebra/src/diff.rs crates/dt-algebra/src/relation.rs crates/dt-algebra/src/signed.rs crates/dt-algebra/src/spj.rs

crates/dt-algebra/src/lib.rs:
crates/dt-algebra/src/diff.rs:
crates/dt-algebra/src/relation.rs:
crates/dt-algebra/src/signed.rs:
crates/dt-algebra/src/spj.rs:
