/root/repo/target/release/deps/dt_query-f59744471e42e3dd.d: crates/dt-query/src/lib.rs crates/dt-query/src/ast.rs crates/dt-query/src/explain.rs crates/dt-query/src/lexer.rs crates/dt-query/src/optimizer.rs crates/dt-query/src/parser.rs crates/dt-query/src/plan.rs

/root/repo/target/release/deps/libdt_query-f59744471e42e3dd.rlib: crates/dt-query/src/lib.rs crates/dt-query/src/ast.rs crates/dt-query/src/explain.rs crates/dt-query/src/lexer.rs crates/dt-query/src/optimizer.rs crates/dt-query/src/parser.rs crates/dt-query/src/plan.rs

/root/repo/target/release/deps/libdt_query-f59744471e42e3dd.rmeta: crates/dt-query/src/lib.rs crates/dt-query/src/ast.rs crates/dt-query/src/explain.rs crates/dt-query/src/lexer.rs crates/dt-query/src/optimizer.rs crates/dt-query/src/parser.rs crates/dt-query/src/plan.rs

crates/dt-query/src/lib.rs:
crates/dt-query/src/ast.rs:
crates/dt-query/src/explain.rs:
crates/dt-query/src/lexer.rs:
crates/dt-query/src/optimizer.rs:
crates/dt-query/src/parser.rs:
crates/dt-query/src/plan.rs:
