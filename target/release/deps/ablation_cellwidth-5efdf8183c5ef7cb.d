/root/repo/target/release/deps/ablation_cellwidth-5efdf8183c5ef7cb.d: crates/dt-bench/src/bin/ablation_cellwidth.rs

/root/repo/target/release/deps/ablation_cellwidth-5efdf8183c5ef7cb: crates/dt-bench/src/bin/ablation_cellwidth.rs

crates/dt-bench/src/bin/ablation_cellwidth.rs:
