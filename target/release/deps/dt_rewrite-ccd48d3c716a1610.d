/root/repo/target/release/deps/dt_rewrite-ccd48d3c716a1610.d: crates/dt-rewrite/src/lib.rs crates/dt-rewrite/src/evaluator.rs crates/dt-rewrite/src/shadow.rs

/root/repo/target/release/deps/libdt_rewrite-ccd48d3c716a1610.rlib: crates/dt-rewrite/src/lib.rs crates/dt-rewrite/src/evaluator.rs crates/dt-rewrite/src/shadow.rs

/root/repo/target/release/deps/libdt_rewrite-ccd48d3c716a1610.rmeta: crates/dt-rewrite/src/lib.rs crates/dt-rewrite/src/evaluator.rs crates/dt-rewrite/src/shadow.rs

crates/dt-rewrite/src/lib.rs:
crates/dt-rewrite/src/evaluator.rs:
crates/dt-rewrite/src/shadow.rs:
