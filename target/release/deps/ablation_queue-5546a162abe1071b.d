/root/repo/target/release/deps/ablation_queue-5546a162abe1071b.d: crates/dt-bench/src/bin/ablation_queue.rs

/root/repo/target/release/deps/ablation_queue-5546a162abe1071b: crates/dt-bench/src/bin/ablation_queue.rs

crates/dt-bench/src/bin/ablation_queue.rs:
