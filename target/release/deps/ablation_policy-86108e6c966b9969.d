/root/repo/target/release/deps/ablation_policy-86108e6c966b9969.d: crates/dt-bench/src/bin/ablation_policy.rs

/root/repo/target/release/deps/ablation_policy-86108e6c966b9969: crates/dt-bench/src/bin/ablation_policy.rs

crates/dt-bench/src/bin/ablation_policy.rs:
