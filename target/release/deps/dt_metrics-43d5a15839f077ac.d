/root/repo/target/release/deps/dt_metrics-43d5a15839f077ac.d: crates/dt-metrics/src/lib.rs crates/dt-metrics/src/experiment.rs crates/dt-metrics/src/ideal.rs crates/dt-metrics/src/rms.rs crates/dt-metrics/src/stats.rs crates/dt-metrics/src/summary.rs

/root/repo/target/release/deps/libdt_metrics-43d5a15839f077ac.rlib: crates/dt-metrics/src/lib.rs crates/dt-metrics/src/experiment.rs crates/dt-metrics/src/ideal.rs crates/dt-metrics/src/rms.rs crates/dt-metrics/src/stats.rs crates/dt-metrics/src/summary.rs

/root/repo/target/release/deps/libdt_metrics-43d5a15839f077ac.rmeta: crates/dt-metrics/src/lib.rs crates/dt-metrics/src/experiment.rs crates/dt-metrics/src/ideal.rs crates/dt-metrics/src/rms.rs crates/dt-metrics/src/stats.rs crates/dt-metrics/src/summary.rs

crates/dt-metrics/src/lib.rs:
crates/dt-metrics/src/experiment.rs:
crates/dt-metrics/src/ideal.rs:
crates/dt-metrics/src/rms.rs:
crates/dt-metrics/src/stats.rs:
crates/dt-metrics/src/summary.rs:
