/root/repo/target/release/deps/fig8-f6f9185ac9d8e158.d: crates/dt-bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-f6f9185ac9d8e158: crates/dt-bench/src/bin/fig8.rs

crates/dt-bench/src/bin/fig8.rs:
