/root/repo/target/release/deps/dt_server-72572e9d380707d6.d: crates/dt-server/src/lib.rs

/root/repo/target/release/deps/libdt_server-72572e9d380707d6.rlib: crates/dt-server/src/lib.rs

/root/repo/target/release/deps/libdt_server-72572e9d380707d6.rmeta: crates/dt-server/src/lib.rs

crates/dt-server/src/lib.rs:
