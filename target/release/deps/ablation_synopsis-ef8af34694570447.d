/root/repo/target/release/deps/ablation_synopsis-ef8af34694570447.d: crates/dt-bench/src/bin/ablation_synopsis.rs

/root/repo/target/release/deps/ablation_synopsis-ef8af34694570447: crates/dt-bench/src/bin/ablation_synopsis.rs

crates/dt-bench/src/bin/ablation_synopsis.rs:
