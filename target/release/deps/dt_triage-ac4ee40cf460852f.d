/root/repo/target/release/deps/dt_triage-ac4ee40cf460852f.d: crates/dt-triage/src/lib.rs crates/dt-triage/src/executor.rs crates/dt-triage/src/merge.rs crates/dt-triage/src/pipeline.rs crates/dt-triage/src/policy.rs crates/dt-triage/src/queue.rs crates/dt-triage/src/reorder.rs crates/dt-triage/src/shared.rs crates/dt-triage/src/shed.rs crates/dt-triage/src/stream.rs

/root/repo/target/release/deps/libdt_triage-ac4ee40cf460852f.rlib: crates/dt-triage/src/lib.rs crates/dt-triage/src/executor.rs crates/dt-triage/src/merge.rs crates/dt-triage/src/pipeline.rs crates/dt-triage/src/policy.rs crates/dt-triage/src/queue.rs crates/dt-triage/src/reorder.rs crates/dt-triage/src/shared.rs crates/dt-triage/src/shed.rs crates/dt-triage/src/stream.rs

/root/repo/target/release/deps/libdt_triage-ac4ee40cf460852f.rmeta: crates/dt-triage/src/lib.rs crates/dt-triage/src/executor.rs crates/dt-triage/src/merge.rs crates/dt-triage/src/pipeline.rs crates/dt-triage/src/policy.rs crates/dt-triage/src/queue.rs crates/dt-triage/src/reorder.rs crates/dt-triage/src/shared.rs crates/dt-triage/src/shed.rs crates/dt-triage/src/stream.rs

crates/dt-triage/src/lib.rs:
crates/dt-triage/src/executor.rs:
crates/dt-triage/src/merge.rs:
crates/dt-triage/src/pipeline.rs:
crates/dt-triage/src/policy.rs:
crates/dt-triage/src/queue.rs:
crates/dt-triage/src/reorder.rs:
crates/dt-triage/src/shared.rs:
crates/dt-triage/src/shed.rs:
crates/dt-triage/src/stream.rs:
