/root/repo/target/release/deps/datatriage-45ae5f80c84b8652.d: crates/datatriage/src/lib.rs

/root/repo/target/release/deps/libdatatriage-45ae5f80c84b8652.rlib: crates/datatriage/src/lib.rs

/root/repo/target/release/deps/libdatatriage-45ae5f80c84b8652.rmeta: crates/datatriage/src/lib.rs

crates/datatriage/src/lib.rs:
