/root/repo/target/release/deps/ablation_synopsis-3a4023704f4807aa.d: crates/dt-bench/src/bin/ablation_synopsis.rs

/root/repo/target/release/deps/ablation_synopsis-3a4023704f4807aa: crates/dt-bench/src/bin/ablation_synopsis.rs

crates/dt-bench/src/bin/ablation_synopsis.rs:
