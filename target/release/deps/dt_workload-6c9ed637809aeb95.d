/root/repo/target/release/deps/dt_workload-6c9ed637809aeb95.d: crates/dt-workload/src/lib.rs crates/dt-workload/src/arrival.rs crates/dt-workload/src/gaussian.rs crates/dt-workload/src/replay.rs crates/dt-workload/src/scenario.rs crates/dt-workload/src/trace.rs

/root/repo/target/release/deps/libdt_workload-6c9ed637809aeb95.rlib: crates/dt-workload/src/lib.rs crates/dt-workload/src/arrival.rs crates/dt-workload/src/gaussian.rs crates/dt-workload/src/replay.rs crates/dt-workload/src/scenario.rs crates/dt-workload/src/trace.rs

/root/repo/target/release/deps/libdt_workload-6c9ed637809aeb95.rmeta: crates/dt-workload/src/lib.rs crates/dt-workload/src/arrival.rs crates/dt-workload/src/gaussian.rs crates/dt-workload/src/replay.rs crates/dt-workload/src/scenario.rs crates/dt-workload/src/trace.rs

crates/dt-workload/src/lib.rs:
crates/dt-workload/src/arrival.rs:
crates/dt-workload/src/gaussian.rs:
crates/dt-workload/src/replay.rs:
crates/dt-workload/src/scenario.rs:
crates/dt-workload/src/trace.rs:
