/root/repo/target/release/deps/dtsim-1037778de27703e1.d: crates/datatriage/src/bin/dtsim.rs

/root/repo/target/release/deps/dtsim-1037778de27703e1: crates/datatriage/src/bin/dtsim.rs

crates/datatriage/src/bin/dtsim.rs:
