/root/repo/target/release/examples/winscan-e1c3d68505ec1605.d: crates/dt-metrics/examples/winscan.rs

/root/repo/target/release/examples/winscan-e1c3d68505ec1605: crates/dt-metrics/examples/winscan.rs

crates/dt-metrics/examples/winscan.rs:
