/root/repo/target/release/examples/seedscan-84d10bc8ed04df4f.d: crates/dt-metrics/examples/seedscan.rs

/root/repo/target/release/examples/seedscan-84d10bc8ed04df4f: crates/dt-metrics/examples/seedscan.rs

crates/dt-metrics/examples/seedscan.rs:
