//! The paper's experimental hypothesis (§6.1), asserted end to end at
//! test scale:
//!
//! 1. under constant low load, Data Triage ≈ drop-only (both exact);
//! 2. under constant high load, Data Triage ≲ summarize-only;
//! 3. under bursty load with shifted burst data, Data Triage beats
//!    both.

use datatriage::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    c.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    c
}

/// RMS error per mode on one shared workload, averaged over seeds.
fn errors_at(
    arrival: ArrivalModel,
    seeds: &[u64],
    bursty_data: bool,
) -> std::collections::HashMap<&'static str, f64> {
    let mean_rate = arrival.mean_rate();
    // ~300 tuples per window.
    let width = VDuration::from_secs_f64(300.0 / mean_rate);
    let sql = "SELECT a, COUNT(*) as count FROM R,S,T \
               WHERE R.a = S.b AND S.c = T.d GROUP BY a";
    let mut sums: std::collections::HashMap<&'static str, f64> = Default::default();
    for &seed in seeds {
        let template = if bursty_data {
            WorkloadConfig::paper_bursty(1.0, 9_000, seed)
        } else {
            WorkloadConfig::paper_constant(1.0, 9_000, seed)
        };
        let workload = WorkloadConfig {
            arrival,
            ..template
        };
        let arrivals = generate(&workload).unwrap();
        let mk_plan = || {
            let mut plan = Planner::new(&catalog())
                .plan(&parse_select(sql).unwrap())
                .unwrap();
            let spec = WindowSpec::new(width).unwrap();
            for s in &mut plan.streams {
                s.window = spec;
            }
            plan
        };
        let ideal = ideal_map(&mk_plan(), &arrivals).unwrap();
        for mode in ShedMode::all() {
            let mut cfg = PipelineConfig::new(mode);
            cfg.cost = CostModel::from_capacity(1_000.0).unwrap();
            cfg.queue_capacity = 100;
            cfg.synopsis = SynopsisConfig::Sparse { cell_width: 10 };
            cfg.seed = seed;
            let report = Pipeline::run(mk_plan(), cfg, arrivals.iter().cloned()).unwrap();
            *sums.entry(mode.label()).or_insert(0.0) += rms_error(&ideal, &report_to_map(&report));
        }
    }
    sums.values_mut().for_each(|v| *v /= seeds.len() as f64);
    sums
}

#[test]
fn hypothesis_1_low_constant_load_triage_matches_drop_only() {
    let errs = errors_at(ArrivalModel::Constant { rate: 300.0 }, &[1, 2], false);
    // Both are exact below capacity.
    assert!(errs["data-triage"] < 1e-9, "{errs:?}");
    assert!(errs["drop-only"] < 1e-9, "{errs:?}");
    // Summarize-only pays its approximation cost even here.
    assert!(errs["summarize-only"] > errs["data-triage"], "{errs:?}");
}

#[test]
fn hypothesis_2_high_constant_load_triage_tracks_summarize_only() {
    let errs = errors_at(ArrivalModel::Constant { rate: 8_000.0 }, &[3, 4], false);
    // Deep overload: drop-only is the worst by far; data triage stays
    // in summarize-only's neighbourhood (the paper: "approaching but
    // not exceeding").
    assert!(errs["drop-only"] > errs["data-triage"], "{errs:?}");
    assert!(
        errs["data-triage"] <= errs["summarize-only"] * 1.25,
        "{errs:?}"
    );
}

#[test]
fn hypothesis_3_bursty_shifted_data_triage_dominates_both() {
    // Peak 12 000 t/s, base 120 t/s, burst data from a shifted
    // Gaussian: the mid-range regime where triage wins outright.
    let errs = errors_at(ArrivalModel::paper_bursty(120.0), &[5, 6, 7], true);
    assert!(
        errs["data-triage"] < errs["drop-only"],
        "triage must beat drop-only: {errs:?}"
    );
    assert!(
        errs["data-triage"] < errs["summarize-only"],
        "triage must beat summarize-only: {errs:?}"
    );
}

#[test]
fn drop_only_error_grows_with_rate() {
    let low = errors_at(ArrivalModel::Constant { rate: 1_500.0 }, &[8], false);
    let high = errors_at(ArrivalModel::Constant { rate: 6_000.0 }, &[8], false);
    assert!(
        high["drop-only"] > low["drop-only"],
        "low {low:?} high {high:?}"
    );
}

#[test]
fn summarize_only_error_is_roughly_flat_across_rates() {
    let low = errors_at(ArrivalModel::Constant { rate: 1_000.0 }, &[9], false);
    let high = errors_at(ArrivalModel::Constant { rate: 6_000.0 }, &[9], false);
    let ratio = high["summarize-only"] / low["summarize-only"].max(1e-12);
    assert!(
        (0.4..2.5).contains(&ratio),
        "summarize-only should be roughly rate-independent: {ratio} ({low:?} vs {high:?})"
    );
}
