//! End-to-end exactness: with per-value synopsis resolution (sparse
//! histograms, cell width 1), the whole Data Triage pipeline —
//! queueing, shedding, kept/dropped synopses, shadow-query
//! evaluation, merging — must reproduce the ideal result *exactly*,
//! no matter how hard the load shedder is squeezed. This is the
//! pipeline-level corollary of the §4 rewrite theorem (which
//! `dt-rewrite`'s property tests verify at the algebra level).

use datatriage::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    c.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    c
}

fn exactness_run(sql: &str, capacity: f64, queue: usize, seed: u64) {
    let mut plan = Planner::new(&catalog())
        .plan(&parse_select(sql).unwrap())
        .unwrap();
    let spec = WindowSpec::new(VDuration::from_millis(500)).unwrap();
    for s in &mut plan.streams {
        s.window = spec;
    }
    // Small domain so the width-1 histograms stay tiny even joined.
    let dist = Gaussian {
        mean: 5.0,
        std: 2.0,
        lo: 1,
        hi: 10,
    };
    let workload = WorkloadConfig {
        streams: vec![
            StreamSpec::uniform_bursts(1, dist),
            StreamSpec::uniform_bursts(2, dist),
            StreamSpec::uniform_bursts(1, dist),
        ],
        arrival: ArrivalModel::Constant { rate: 4_000.0 },
        total_tuples: 6_000,
        seed,
    };
    let arrivals = generate(&workload).unwrap();
    let ideal = ideal_map(&plan, &arrivals).unwrap();

    let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
    cfg.cost = CostModel::from_capacity(capacity).unwrap();
    cfg.queue_capacity = queue;
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.seed = seed;
    let report = Pipeline::run(plan, cfg, arrivals.iter().cloned()).unwrap();
    assert!(
        report.totals.dropped > 0,
        "the run must actually shed to be interesting"
    );
    let err = rms_error(&ideal, &report_to_map(&report));
    assert!(
        err < 1e-6,
        "lossless synopses must give exact merged results; err {err}, \
         dropped {}/{}",
        report.totals.dropped,
        report.totals.arrived
    );
}

#[test]
fn paper_join_query_is_exact_with_lossless_synopses_under_heavy_shedding() {
    exactness_run(
        "SELECT a, COUNT(*) as count FROM R,S,T \
         WHERE R.a = S.b AND S.c = T.d GROUP BY a",
        400.0,
        40,
        1,
    );
}

#[test]
fn exactness_survives_extreme_shedding() {
    // Engine at 1% of the arrival rate, queue of 5: nearly everything
    // is shed, and the merged result is still exact.
    exactness_run(
        "SELECT a, COUNT(*) as count FROM R,S,T \
         WHERE R.a = S.b AND S.c = T.d GROUP BY a",
        40.0,
        5,
        2,
    );
}

#[test]
fn exactness_holds_for_sum_and_avg() {
    exactness_run(
        "SELECT b, COUNT(*), SUM(S.c), AVG(S.c) FROM R, S, T \
         WHERE R.a = S.b AND S.c = T.d GROUP BY b",
        400.0,
        40,
        3,
    );
}

#[test]
fn exactness_holds_with_selection_pushdown() {
    exactness_run(
        "SELECT a, COUNT(*) FROM R, S, T \
         WHERE R.a = S.b AND S.c = T.d AND S.c > 3 GROUP BY a",
        400.0,
        40,
        4,
    );
}

#[test]
fn exactness_holds_for_every_drop_policy() {
    for policy in DropPolicy::all() {
        let mut plan = Planner::new(&catalog())
            .plan(&parse_select("SELECT a, COUNT(*) FROM R GROUP BY a").unwrap())
            .unwrap();
        plan.streams[0].window = WindowSpec::new(VDuration::from_millis(500)).unwrap();
        let dist = Gaussian {
            mean: 5.0,
            std: 2.0,
            lo: 1,
            hi: 10,
        };
        let workload = WorkloadConfig {
            streams: vec![StreamSpec::uniform_bursts(1, dist)],
            arrival: ArrivalModel::Constant { rate: 4_000.0 },
            total_tuples: 4_000,
            seed: 5,
        };
        let arrivals = generate(&workload).unwrap();
        let ideal = ideal_map(&plan, &arrivals).unwrap();
        let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
        cfg.cost = CostModel::from_capacity(300.0).unwrap();
        cfg.queue_capacity = 20;
        cfg.policy = policy;
        cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
        let report = Pipeline::run(plan, cfg, arrivals.iter().cloned()).unwrap();
        assert!(report.totals.dropped > 0, "{policy:?}");
        let err = rms_error(&ideal, &report_to_map(&report));
        assert!(err < 1e-6, "{policy:?}: err {err}");
    }
}
