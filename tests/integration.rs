//! Cross-crate integration: SQL text → plan → pipeline → merged
//! results, for every shedding mode, plus the error paths a downstream
//! user will hit first.

use datatriage::prelude::*;

fn paper_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    c.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    c
}

fn paper_plan(window: &str) -> QueryPlan {
    let sql = format!(
        "SELECT a, COUNT(*) as count FROM R,S,T \
         WHERE R.a = S.b AND S.c = T.d GROUP BY a \
         WINDOW R['{window}'], S['{window}'], T['{window}']"
    );
    Planner::new(&paper_catalog())
        .plan(&parse_select(&sql).unwrap())
        .unwrap()
}

fn overload_config(mode: ShedMode) -> PipelineConfig {
    let mut cfg = PipelineConfig::new(mode);
    cfg.cost = CostModel::from_capacity(500.0).unwrap();
    cfg.queue_capacity = 50;
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 10 };
    cfg.seed = 3;
    cfg
}

#[test]
fn every_mode_runs_the_paper_query_under_overload() {
    let workload = WorkloadConfig::paper_constant(3_000.0, 9_000, 3);
    let arrivals = generate(&workload).unwrap();
    for mode in ShedMode::all() {
        let report = Pipeline::run(
            paper_plan("1 second"),
            overload_config(mode),
            arrivals.iter().cloned(),
        )
        .unwrap();
        assert_eq!(report.totals.arrived, 9_000, "{mode:?}");
        assert_eq!(
            report.totals.kept + report.totals.dropped,
            report.totals.arrived,
            "{mode:?}: conservation"
        );
        match mode {
            ShedMode::SummarizeOnly => assert_eq!(report.totals.kept, 0),
            _ => assert!(report.totals.kept > 0, "{mode:?}"),
        }
        assert!(report.totals.dropped > 0, "{mode:?}: overload must shed");
        assert!(!report.windows.is_empty(), "{mode:?}");
        for w in &report.windows {
            assert!(w.groups().is_some(), "{mode:?}: aggregating payload");
        }
    }
}

#[test]
fn underload_keeps_everything_and_is_exact() {
    let workload = WorkloadConfig::paper_constant(200.0, 2_000, 8);
    let arrivals = generate(&workload).unwrap();
    let plan = paper_plan("1 second");
    let ideal = ideal_map(&plan, &arrivals).unwrap();
    for mode in [ShedMode::DropOnly, ShedMode::DataTriage] {
        let report = Pipeline::run(
            paper_plan("1 second"),
            overload_config(mode),
            arrivals.iter().cloned(),
        )
        .unwrap();
        assert_eq!(report.totals.dropped, 0, "{mode:?}");
        let err = rms_error(&ideal, &report_to_map(&report));
        assert!(err < 1e-9, "{mode:?}: err {err}");
    }
}

#[test]
fn shadow_query_is_exposed_and_has_expected_shape() {
    let pipeline = Pipeline::new(
        paper_plan("1 second"),
        overload_config(ShedMode::DataTriage),
    )
    .unwrap();
    let shadow = pipeline
        .shadow()
        .expect("data triage builds a shadow query");
    // Eq. 14 for n = 3: three summands, two joins each.
    assert_eq!(shadow.num_streams, 3);
    assert_eq!(shadow.plan.join_count(), 6);
    // Drop-only mode builds none.
    let pipeline =
        Pipeline::new(paper_plan("1 second"), overload_config(ShedMode::DropOnly)).unwrap();
    assert!(pipeline.shadow().is_none());
}

#[test]
fn window_scaling_changes_window_count() {
    let workload = WorkloadConfig::paper_constant(1_000.0, 4_000, 4);
    let arrivals = generate(&workload).unwrap();
    let half = Pipeline::run(
        paper_plan("0.5 seconds"),
        overload_config(ShedMode::DataTriage),
        arrivals.iter().cloned(),
    )
    .unwrap();
    let two = Pipeline::run(
        paper_plan("2 seconds"),
        overload_config(ShedMode::DataTriage),
        arrivals.iter().cloned(),
    )
    .unwrap();
    assert!(half.windows.len() > 2 * two.windows.len());
}

#[test]
fn float_streams_rejected_for_synopsis_modes_only() {
    let mut c = Catalog::new();
    c.add_stream("F", Schema::from_pairs(&[("x", DataType::Float)]));
    let plan = Planner::new(&c)
        .plan(&parse_select("SELECT x, COUNT(*) FROM F GROUP BY x").unwrap())
        .unwrap();
    assert!(Pipeline::new(plan.clone(), PipelineConfig::new(ShedMode::DataTriage)).is_err());
    assert!(Pipeline::new(plan.clone(), PipelineConfig::new(ShedMode::SummarizeOnly)).is_err());
    assert!(Pipeline::new(plan, PipelineConfig::new(ShedMode::DropOnly)).is_ok());
}

#[test]
fn unsupported_shadow_queries_fail_fast_at_construction() {
    let mut c = Catalog::new();
    c.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    // Two equality conditions in one join step.
    let plan = Planner::new(&c)
        .plan(
            &parse_select(
                "SELECT S.b, COUNT(*) FROM S, S z WHERE S.b = z.b AND S.c = z.c GROUP BY S.b",
            )
            .unwrap(),
        )
        .unwrap();
    let err = Pipeline::new(plan.clone(), PipelineConfig::new(ShedMode::DataTriage))
        .err()
        .expect("must fail");
    assert!(err.to_string().contains("single dimension pair"), "{err}");
    // …but drop-only handles the same query (exact path supports
    // multi-condition joins).
    assert!(Pipeline::new(plan, PipelineConfig::new(ShedMode::DropOnly)).is_ok());
}

#[test]
fn multi_column_group_by_rejected_for_synopsis_modes() {
    let plan = Planner::new(&paper_catalog())
        .plan(&parse_select("SELECT b, c, COUNT(*) FROM S GROUP BY b, c").unwrap())
        .unwrap();
    let err = Pipeline::new(plan.clone(), overload_config(ShedMode::DataTriage))
        .err()
        .expect("must fail fast");
    assert!(err.to_string().contains("one GROUP BY column"), "{err}");
    // Drop-only handles it exactly.
    assert!(Pipeline::new(plan, overload_config(ShedMode::DropOnly)).is_ok());
}

#[test]
fn run_reports_are_deterministic_per_seed() {
    let workload = WorkloadConfig::paper_bursty(50.0, 4_000, 12);
    let arrivals = generate(&workload).unwrap();
    let run = || {
        let report = Pipeline::run(
            paper_plan("1 second"),
            overload_config(ShedMode::DataTriage),
            arrivals.iter().cloned(),
        )
        .unwrap();
        report_to_map(&report)
            .into_iter()
            .map(|((w, k), v)| (w, k, v.iter().map(|f| f.to_bits()).collect::<Vec<u64>>()))
            .collect::<std::collections::BTreeSet<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn prelude_reexports_cover_the_readme_workflow() {
    // The quickstart doc-test covers the happy path; here we make sure
    // typed errors surface through the facade.
    let err = parse_select("SELECT FROM").unwrap_err();
    assert!(matches!(err, DtError::Parse { .. }));
    let catalog = Catalog::new();
    let err = Planner::new(&catalog)
        .plan(&parse_select("SELECT a FROM nope").unwrap())
        .unwrap_err();
    assert!(matches!(err, DtError::Plan(_)));
}
