//! Offline `rand_chacha` stand-in: a genuine ChaCha8 keystream
//! generator over the workspace's `rand` shim traits.
//!
//! The keystream is real ChaCha (RFC 8439 block function, 8 rounds),
//! so its statistical quality matches the crates.io implementation;
//! only the word-to-output mapping differs, so seeds are portable as
//! determinism handles but not as bit-exact fixtures.

use rand::{RngCore, SeedableRng};

/// The ChaCha8 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (words 4..12 of the initial state).
    key: [u32; 8],
    /// 64-bit block counter + 64-bit nonce (words 12..16).
    counter: u64,
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    cursor: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (w, init) in state.iter_mut().zip(initial.iter()) {
            *w = w.wrapping_add(*init);
        }
        self.block = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.cursor + 2 > 16 {
            self.refill();
        }
        let lo = self.block[self.cursor] as u64;
        let hi = self.block[self.cursor + 1] as u64;
        self.cursor += 2;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut r = ChaCha8Rng::seed_from_u64(42);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut counts = [0u32; 10];
        for _ in 0..n {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket {frac}");
        }
    }

    #[test]
    fn clone_replays_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let _ = a.next_u32();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
