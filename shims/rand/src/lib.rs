//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, uniform range sampling
//! (`gen_range`), and Bernoulli draws (`gen_bool`). Generators live in
//! sibling shims (e.g. the `rand_chacha` shim). Streams produced here
//! are *not* bit-compatible with the real `rand` crate; everything in
//! this workspace treats seeds as opaque determinism handles, never as
//! cross-library fixtures.

use std::ops::{Range, RangeInclusive};

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[lo, hi)`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Sample uniformly from `[lo, hi]`. Panics if `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Uniform `u64` in `[0, n)` by rejection sampling (no modulo bias).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Rejection zone: multiples of n fitting in 2^64.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u64;
                let off = uniform_u64_below(rng, span);
                ((lo as i128) + off as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = lo + unit * (hi - lo);
                if v < hi { v } else { lo }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Values with a canonical "uniform over the whole type" distribution
/// (the subset of `rand`'s `Standard` this workspace uses).
pub trait Standard: Sized {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u16 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u16
    }
}
impl Standard for i64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)`, matching `rand`'s `Standard` for floats.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        f64::standard_sample(self) < p
    }

    /// A value from the type's canonical uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it through SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Lcg(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let i = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Lcg(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut r = Lcg(3);
        let _: u64 = r.gen_range(0..=u64::MAX);
    }
}
