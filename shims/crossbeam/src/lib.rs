//! Offline stand-in for `crossbeam`'s channel module.
//!
//! The build environment has no crates.io access, so this crate wraps
//! `std::sync::mpsc` behind crossbeam-channel's names: [`channel::bounded`] /
//! [`channel::unbounded`] constructors, `try_send` / `send` / `recv` /
//! `try_recv` / `recv_timeout`, and the corresponding error types.
//! Bounded capacity — the property `dt-server` leans on for
//! backpressure-driven load shedding — maps directly onto
//! `mpsc::sync_channel`.
//!
//! Differences from real crossbeam: `Receiver` is not `Clone` (one
//! consumer per channel, which is exactly the dt-server topology), and
//! `select!` is not provided.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recover the unsent message.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(t) | TrySendError::Disconnected(t) => t,
            }
        }

        /// True when the failure was a full channel.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Queue `msg` without blocking; fails if full or disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.tx {
                Tx::Bounded(s) => s.try_send(msg).map_err(|e| match e {
                    mpsc::TrySendError::Full(t) => TrySendError::Full(t),
                    mpsc::TrySendError::Disconnected(t) => TrySendError::Disconnected(t),
                }),
                Tx::Unbounded(s) => s
                    .send(msg)
                    .map_err(|mpsc::SendError(t)| TrySendError::Disconnected(t)),
            }
        }

        /// Queue `msg`, blocking while the channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Bounded(s) => s.send(msg).map_err(|mpsc::SendError(t)| SendError(t)),
                Tx::Unbounded(s) => s.send(msg).map_err(|mpsc::SendError(t)| SendError(t)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        /// Take a queued message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Drain every currently queued message.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.rx.try_iter()
        }
    }

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                tx: Tx::Bounded(tx),
            },
            Receiver { rx },
        )
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                tx: Tx::Unbounded(tx),
            },
            Receiver { rx },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        let err = tx.try_send(3).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 3);
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv().unwrap(), 3);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
    }

    #[test]
    fn disconnect_is_observable() {
        let (tx, rx) = bounded::<u32>(1);
        drop(tx);
        assert_eq!(rx.recv().unwrap_err(), RecvError);
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.try_send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)).unwrap(), 7);
    }

    #[test]
    fn threads_share_sender() {
        let (tx, rx) = bounded::<u32>(64);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        let mut got: Vec<u32> = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
