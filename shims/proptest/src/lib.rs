//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait, `any::<T>()`, ranges, [`Just`],
//! `prop_oneof!`, `prop::collection::{vec, btree_set}`, simple
//! regex-literal string strategies, `.prop_map`, and the `proptest!` /
//! `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs and
//!   panics; it does not minimize them.
//! * **Deterministic.** Cases derive from a fixed seed, so a given test
//!   binary always explores the same inputs (the right trade-off for an
//!   offline CI with no failure-persistence file).
//! * `PROPTEST_CASES` overrides the case count, like the real crate.

use std::ops::{Range, RangeInclusive};

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The RNG driving generation.
pub type TestRng = ChaCha8Rng;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The effective case count, honoring `PROPTEST_CASES`.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Regenerate until `f` accepts the value (bounded retries).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// `.prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Tuples of strategies generate tuples of values (field order).
macro_rules! impl_tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 => 0);
impl_tuple_strategy!(S0 => 0, S1 => 1);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a whole-domain default strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// All bit patterns — including NaNs, infinities, and subnormals —
    /// matching the spirit of proptest's `any::<f64>()`.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives (at least one).
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.variants.len());
        self.variants[i].generate(rng)
    }
}

/// Sizes accepted by the collection strategies.
pub trait SizeRange {
    /// Draw a concrete size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.is_empty() {
            self.start
        } else {
            rng.gen_range(self.clone())
        }
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// `Vec` of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// `Vec` strategy (see [`vec()`]).
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of values from `element`; `size` bounds the target
    /// cardinality (duplicates are retried a bounded number of times).
    pub fn btree_set<S, Z>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    /// `BTreeSet` strategy (see [`btree_set`]).
    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 10 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The `prop::` facade module (`prop::collection::vec(...)`).
/// `Option` strategies (`prop::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Yields `None` about a quarter of the time, `Some` otherwise
    /// (proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// `Option` strategy (see [`of`]).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            use rand::Rng;
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

// ---------------------------------------------------------------------------
// Regex-literal string strategies.
// ---------------------------------------------------------------------------

/// One regex atom with its repetition range.
#[derive(Debug, Clone)]
enum PatternPiece {
    /// Candidate characters (expanded char class).
    Class {
        chars: Vec<char>,
        min: usize,
        max: usize,
    },
}

fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let mut pieces = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let class: Vec<char> = match c {
            '\\' => match chars.next() {
                // `\PC`: proptest's "any printable char"; ASCII
                // printable is a faithful-enough subset for fuzzing
                // parsers offline.
                Some('P') => {
                    if chars.peek() == Some(&'C') {
                        chars.next();
                    }
                    (' '..='~').collect()
                }
                Some('d') => ('0'..='9').collect(),
                Some(other) => vec![other],
                None => panic!("trailing backslash in pattern {pattern:?}"),
            },
            '[' => {
                let mut cls = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated char class in {pattern:?}"),
                        Some(']') => break,
                        Some('\\') => {
                            let e = chars.next().expect("escape in class");
                            cls.push(e);
                            prev = Some(e);
                        }
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("range start");
                            let hi = chars.next().expect("range end");
                            // `lo` is already in `cls`; add the rest.
                            let mut x = lo;
                            while x < hi {
                                x = char::from_u32(x as u32 + 1).expect("char range");
                                cls.push(x);
                            }
                        }
                        Some(ch) => {
                            cls.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                cls
            }
            lit => vec![lit],
        };
        // Optional repetition suffix.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repetition lower bound"),
                        hi.trim().parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 32)
            }
            Some('+') => {
                chars.next();
                (1, 32)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        pieces.push(PatternPiece::Class {
            chars: class,
            min,
            max,
        });
    }
    pieces
}

/// String literals act as generation patterns, as in real proptest:
/// `"[a-z]{1,5}"` yields matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let PatternPiece::Class { chars, min, max } = piece;
            let n = if min == max {
                min
            } else {
                rng.gen_range(min..=max)
            };
            for _ in 0..n {
                if chars.is_empty() {
                    continue;
                }
                out.push(chars[rng.gen_range(0..chars.len())]);
            }
        }
        out
    }
}

/// Build the deterministic RNG for one test function.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: distinct tests explore distinct
    // streams while staying reproducible run over run.
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::seed_from_u64(h)
}

/// Everything a property test needs, in one import.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// A property-test failure (mirrors proptest's type so helper
/// functions can return `Result<(), TestCaseError>` and compose with
/// `?` inside test bodies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input should not count as a case (accepted but treated the
    /// same as a failure by this shim's runner — rejection sampling
    /// belongs in the strategy).
    Reject(String),
}

impl TestCaseError {
    /// A failed property.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected input.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "property failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// Shorthand for the result type property-test helpers return.
pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Assert inside a property test: an early `Err` return, so helpers
/// returning [`TestCaseResult`] can compose with `?` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Uniform choice among strategies with one common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Define property tests (see crate docs for the supported subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.effective_cases() {
                    // Values are generated into a tuple and formatted
                    // *before* destructuring, because a `pat_param`
                    // capture cannot be re-used in expression position.
                    let __vals = (
                        $($crate::Strategy::generate(&$strat, &mut __rng),)+
                    );
                    let __inputs = format!("{:?}", __vals);
                    // The body runs inside a Result-returning closure
                    // so `prop_assert!` (an early Err return) and `?`
                    // on TestCaseResult helpers both work, and inside
                    // catch_unwind so plain assert!/panics are also
                    // reported with their inputs.
                    let __outcome = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(move || -> $crate::TestCaseResult {
                            let ($($arg,)+) = __vals;
                            $body
                            Ok(())
                        })
                    );
                    let __report = || eprintln!(
                        "proptest {} failed at case {}/{} with inputs: {}",
                        stringify!($name), __case + 1, __config.effective_cases(), __inputs
                    );
                    match __outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => {
                            __report();
                            panic!("{e}");
                        }
                        Err(e) => {
                            __report();
                            std::panic::resume_unwind(e);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Color {
        Red,
        Blue,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -1.0..1.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u64>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map(c in prop_oneof![Just(Color::Red), Just(Color::Blue)],
                         s in (0u64..5).prop_map(|v| v * 2)) {
            prop_assert!(c == Color::Red || c == Color::Blue);
            prop_assert_eq!(s % 2, 0);
        }

        #[test]
        fn string_patterns_match(s in "[a-c]{2,4}", t in "\\PC{0,10}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(t.len() <= 10);
            prop_assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn btree_set_sizes() {
        let mut rng = crate::test_rng("btree");
        let s = collection::btree_set(0u64..1000, 5usize);
        let v = crate::Strategy::generate(&s, &mut rng);
        assert_eq!(v.len(), 5);
    }
}
