//! Offline stand-in for the `criterion` crate.
//!
//! Implements enough of criterion's API for the workspace's benches to
//! build and run without crates.io access: `Criterion`,
//! `benchmark_group`, `bench_function`, `iter`/`iter_batched`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are intentionally simple — warm-up, then a fixed-time
//! measurement loop reporting mean/min per iteration — because the
//! benches' role offline is regression *smoke* coverage, not
//! publication-grade statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Per-iteration timing driver handed to bench closures.
pub struct Bencher {
    /// Total measured time across iterations.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Measure `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }
}

fn report(label: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{label:50} (no iterations)");
        return;
    }
    let mean = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!("{label:50} {:>12.1} ns/iter  ({} iters)", mean, b.iters);
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep offline runs quick; CRITERION_BUDGET_MS overrides.
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        Criterion {
            budget: Duration::from_millis(ms),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(id, &b);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }

    /// Accepted for API compatibility (the shim keys on wall time).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.parent.budget);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n;
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.parent.budget = d;
        self
    }

    /// Finish the group.
    pub fn finish(&mut self) {}
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10).bench_function("mul", |b| {
            b.iter_batched(|| 3u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        std::env::set_var("CRITERION_BUDGET_MS", "5");
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
