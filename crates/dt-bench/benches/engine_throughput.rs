//! Engine and pipeline throughput: exact window execution at several
//! window sizes, and the full pipeline per shedding mode on one
//! fixed workload.

use criterion::{criterion_group, criterion_main, Criterion};
use dt_engine::{execute_window, CostModel, IncrementalWindow};
use dt_metrics::{report_to_map, SweepConfig};
use dt_query::{parse_select, Catalog, Planner, QueryPlan};
use dt_synopsis::SynopsisConfig;
use dt_triage::{Pipeline, PipelineConfig, ShedMode};
use dt_types::{DataType, Row, Schema};
use dt_workload::{generate, WorkloadConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn paper_plan() -> QueryPlan {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    catalog.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    catalog.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    Planner::new(&catalog)
        .plan(
            &parse_select("SELECT a, COUNT(*) FROM R,S,T WHERE R.a = S.b AND S.c = T.d GROUP BY a")
                .unwrap(),
        )
        .unwrap()
}

fn window_inputs(per_stream: usize, seed: u64) -> Vec<Vec<Row>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut gen = |arity: usize| -> Vec<Row> {
        (0..per_stream)
            .map(|_| {
                Row::from_ints(
                    &(0..arity)
                        .map(|_| rng.gen_range(1..=100))
                        .collect::<Vec<i64>>(),
                )
            })
            .collect()
    };
    vec![gen(1), gen(2), gen(1)]
}

fn bench_window_exec(c: &mut Criterion) {
    let plan = paper_plan();
    let mut group = c.benchmark_group("window_exec_3way_join");
    // The incremental executor at 1600/stream runs >1 s per iteration;
    // keep the sample count small so the whole suite stays minutes,
    // not hours.
    group.sample_size(10);
    for per_stream in [100usize, 400, 1_600] {
        let inputs = window_inputs(per_stream, per_stream as u64);
        group.bench_function(&format!("batch/{per_stream}_per_stream"), |b| {
            b.iter(|| execute_window(&plan, &inputs).unwrap().len())
        });
        group.bench_function(&format!("incremental/{per_stream}_per_stream"), |b| {
            b.iter(|| {
                let mut w = IncrementalWindow::new(plan.clone()).unwrap();
                // Round-robin delivery, as the pipeline would.
                for i in 0..per_stream {
                    for (s, rows) in inputs.iter().enumerate() {
                        w.insert(s, rows[i].clone()).unwrap();
                    }
                }
                w.finish().len()
            })
        });
    }
    group.finish();
}

fn bench_pipeline_modes(c: &mut Criterion) {
    let workload = WorkloadConfig::paper_constant(4_000.0, 8_000, 5);
    let arrivals = generate(&workload).unwrap();
    let sweep = SweepConfig::paper_default();
    let _ = &sweep; // documents where the defaults come from
    let mut group = c.benchmark_group("pipeline_8k_tuples_4x_overload");
    group.sample_size(10);
    for mode in ShedMode::all() {
        group.bench_function(mode.label(), |b| {
            b.iter(|| {
                let mut cfg = PipelineConfig::new(mode);
                cfg.cost = CostModel::from_capacity(1_000.0).unwrap();
                cfg.synopsis = SynopsisConfig::Sparse { cell_width: 10 };
                let report = Pipeline::run(paper_plan(), cfg, arrivals.iter().cloned()).unwrap();
                report_to_map(&report).len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_window_exec, bench_pipeline_modes);
criterion_main!(benches);
