//! Microbenchmarks of the synopsis primitives: per-tuple insertion
//! (the §5.2.2 requirement that insertion be far cheaper than full
//! processing) and the relational operations the shadow plan uses.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dt_synopsis::{Synopsis, SynopsisConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn points(n: usize, dims: usize, seed: u64) -> Vec<Vec<i64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dims).map(|_| rng.gen_range(1..=100)).collect())
        .collect()
}

fn built(cfg: &SynopsisConfig, pts: &[Vec<i64>]) -> Synopsis {
    let dims = pts[0].len();
    let mut s = cfg.build(dims).unwrap();
    for p in pts {
        s.insert(p).unwrap();
    }
    s.seal();
    s
}

fn configs() -> Vec<(&'static str, SynopsisConfig)> {
    vec![
        ("sparse_w10", SynopsisConfig::Sparse { cell_width: 10 }),
        (
            "mhist_b32",
            SynopsisConfig::MHist {
                max_buckets: 32,
                alignment: None,
            },
        ),
        (
            "reservoir_c200",
            SynopsisConfig::Reservoir {
                capacity: 200,
                seed: 1,
            },
        ),
    ]
}

fn bench_insert(c: &mut Criterion) {
    let pts = points(2_000, 2, 7);
    let mut group = c.benchmark_group("synopsis_insert_2k");
    for (name, cfg) in configs() {
        group.bench_function(name, |b| {
            b.iter_batched(
                || cfg.build(2).unwrap(),
                |mut s| {
                    for p in &pts {
                        s.insert(p).unwrap();
                    }
                    s.seal();
                    s.total_mass()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_equijoin(c: &mut Criterion) {
    let a_pts = points(2_000, 1, 11);
    let b_pts = points(2_000, 1, 13);
    let mut group = c.benchmark_group("synopsis_equijoin_2kx2k");
    for (name, cfg) in configs() {
        let a = built(&cfg, &a_pts);
        let b = built(&cfg, &b_pts);
        group.bench_function(name, |bch| {
            bch.iter(|| a.equijoin(0, &b, 0).unwrap().total_mass())
        });
    }
    group.finish();
}

fn bench_union_and_group(c: &mut Criterion) {
    let a_pts = points(2_000, 2, 17);
    let b_pts = points(2_000, 2, 19);
    let mut group = c.benchmark_group("synopsis_union_group");
    for (name, cfg) in configs() {
        let a = built(&cfg, &a_pts);
        let b = built(&cfg, &b_pts);
        group.bench_function(&format!("union/{name}"), |bch| {
            bch.iter(|| a.union_all(&b).unwrap().total_mass())
        });
        group.bench_function(&format!("group_counts/{name}"), |bch| {
            bch.iter(|| a.group_counts(0).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_equijoin, bench_union_and_group);
criterion_main!(benches);
