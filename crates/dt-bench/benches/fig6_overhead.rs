//! Criterion version of the Fig. 6 microbenchmark at a CI-friendly
//! scale: original exact join vs shadow query with fast (sparse) and
//! slow (MHIST) synopses. The `fig6` binary runs the paper-scale
//! version.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dt_algebra::Relation;
use dt_query::{parse_select, Catalog, Planner};
use dt_rewrite::{evaluate, rewrite_dropped, ShadowQuery};
use dt_synopsis::{Synopsis, SynopsisConfig};
use dt_types::{DataType, Row, Schema};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const N: usize = 1_000;
const DOMAIN: i64 = 200;

struct Fixture {
    tables: Vec<Vec<Vec<i64>>>, // r, s, t
    shadow: ShadowQuery,
}

fn fixture() -> Fixture {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut gen = |arity: usize| -> Vec<Vec<i64>> {
        (0..N)
            .map(|_| (0..arity).map(|_| rng.gen_range(1..=DOMAIN)).collect())
            .collect()
    };
    let tables = vec![gen(1), gen(2), gen(1)];
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    catalog.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    catalog.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    let plan = Planner::new(&catalog)
        .plan(&parse_select("SELECT * FROM R, S, T WHERE R.a = S.b AND S.c = T.d").unwrap())
        .unwrap();
    Fixture {
        tables,
        shadow: rewrite_dropped(&plan).unwrap(),
    }
}

fn build(cfg: &SynopsisConfig, dims: usize, rows: &[Vec<i64>]) -> Synopsis {
    let mut s = cfg.build(dims).unwrap();
    for r in rows {
        s.insert(r).unwrap();
    }
    s.seal();
    s
}

fn bench_fig6(c: &mut Criterion) {
    let fx = fixture();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);

    group.bench_function("original_exact_join", |b| {
        let rels: Vec<Relation> = fx
            .tables
            .iter()
            .map(|t| Relation::from_rows(t.iter().map(|r| Row::from_ints(r))))
            .collect();
        b.iter(|| {
            let rs = rels[0].equijoin(&rels[1], &[(0, 0)]);
            rs.equijoin(&rels[2], &[(2, 0)]).len()
        })
    });

    let arities = [1usize, 2, 1];
    let mut shadow_bench = |name: &str, cfg: SynopsisConfig| {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    // Build-per-iteration: the paper's UDFs built the
                    // histograms inside the measured query.
                    let halves: Vec<(Synopsis, Synopsis)> = fx
                        .tables
                        .iter()
                        .zip(arities)
                        .map(|(t, a)| {
                            let mid = t.len() / 2;
                            (build(&cfg, a, &t[..mid]), build(&cfg, a, &t[mid..]))
                        })
                        .collect();
                    halves
                },
                |halves| {
                    let (kept, dropped): (Vec<_>, Vec<_>) = halves.into_iter().unzip();
                    evaluate(&fx.shadow.plan, &kept, &dropped)
                        .unwrap()
                        .total_mass()
                },
                BatchSize::LargeInput,
            )
        });
    };
    shadow_bench(
        "shadow_fast_sparse",
        SynopsisConfig::Sparse { cell_width: 10 },
    );
    shadow_bench(
        "shadow_slow_mhist",
        SynopsisConfig::MHist {
            max_buckets: 32,
            alignment: None,
        },
    );
    shadow_bench(
        "shadow_aligned_mhist",
        SynopsisConfig::MHist {
            max_buckets: 32,
            alignment: Some(20),
        },
    );
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
