//! Triage-queue hot path: push under overflow for each drop policy.
//! The queue sits on the ingest path, so push must stay O(1)-ish even
//! while shedding.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dt_synopsis::SynopsisConfig;
use dt_triage::{DropPolicy, TriageQueue};
use dt_types::{Row, Timestamp, Tuple};

fn tuples(n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(
                Row::from_ints(&[(i % 100) as i64]),
                Timestamp::from_micros(i as u64),
            )
        })
        .collect()
}

fn bench_push_overflow(c: &mut Criterion) {
    let input = tuples(10_000);
    let mut group = c.benchmark_group("queue_push_10k_cap100");
    for policy in DropPolicy::all() {
        group.bench_function(policy.label(), |b| {
            let syn = {
                let mut s = SynopsisConfig::Sparse { cell_width: 10 }.build(1).unwrap();
                for v in 0..100 {
                    s.insert(&[v]).unwrap();
                }
                s
            };
            b.iter_batched(
                || TriageQueue::new(100, policy, 1).unwrap(),
                |mut q| {
                    let mut victims = 0u64;
                    for t in &input {
                        if q.push(t.clone(), Some(&syn)).is_some() {
                            victims += 1;
                        }
                    }
                    victims
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_push_pop_balanced(c: &mut Criterion) {
    let input = tuples(10_000);
    c.bench_function("queue_push_pop_balanced_10k", |b| {
        b.iter_batched(
            || TriageQueue::new(100, DropPolicy::Random, 1).unwrap(),
            |mut q| {
                let mut popped = 0u64;
                for t in &input {
                    q.push(t.clone(), None);
                    if q.pop().is_some() {
                        popped += 1;
                    }
                }
                popped
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_push_overflow, bench_push_pop_balanced);
criterion_main!(benches);
