//! Enforce the dt-obs overhead budget: running the pipeline bench with
//! a live `MetricsRegistry` must cost at most 3 % over running it with
//! the registry disabled.
//!
//! The two variants are measured *interleaved* (alternating runs, min
//! of each) inside a single process, because that is the only
//! comparison that survives wall-clock drift on shared hardware. On a
//! first failure the test re-measures with more reps before judging —
//! the min-of-N estimator converges with N, so a transient scheduling
//! spike must survive a deeper sample to count as a real regression.

use std::time::Instant;

use dt_engine::CostModel;
use dt_obs::MetricsRegistry;
use dt_query::{parse_select, Catalog, Planner, QueryPlan};
use dt_synopsis::SynopsisConfig;
use dt_triage::{Pipeline, PipelineConfig, ShedMode};
use dt_types::{DataType, Schema};
use dt_workload::{generate, WorkloadConfig};

const BUDGET: f64 = 1.03;

fn paper_plan() -> QueryPlan {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    catalog.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    catalog.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    Planner::new(&catalog)
        .plan(
            &parse_select("SELECT a, COUNT(*) FROM R,S,T WHERE R.a = S.b AND S.c = T.d GROUP BY a")
                .unwrap(),
        )
        .unwrap()
}

fn cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
    cfg.cost = CostModel::from_capacity(1_000.0).unwrap();
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 10 };
    cfg
}

/// Interleaved min-of-`reps` of the pipeline bench body with metrics
/// disabled vs. enabled. Returns `(disabled_secs, enabled_secs)`.
fn measure_pair(reps: usize) -> (f64, f64) {
    let workload = WorkloadConfig::paper_constant(4_000.0, 4_000, 5);
    let arrivals = generate(&workload).unwrap();
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = Pipeline::run(paper_plan(), cfg(), arrivals.iter().cloned()).unwrap();
        best_off = best_off.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(report.windows.len());

        let reg = MetricsRegistry::new();
        let t0 = Instant::now();
        let report =
            Pipeline::run_with_metrics(paper_plan(), cfg(), arrivals.iter().cloned(), &reg)
                .unwrap();
        best_on = best_on.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(report.windows.len());
    }
    (best_off, best_on)
}

#[test]
fn metrics_enabled_pipeline_stays_within_three_percent() {
    // Escalating re-measures before failing: min-of-N tightens with N
    // and the mins carry across rounds, so only a regression that
    // persists through every deeper sample is treated as real. Debug
    // builds run this body ~10x slower than release, where scheduler
    // noise routinely exceeds the 3 % budget at shallow rep counts.
    let (mut off, mut on) = measure_pair(5);
    for reps in [15, 45] {
        if on <= off * BUDGET {
            return;
        }
        let (off2, on2) = measure_pair(reps);
        off = off.min(off2);
        on = on.min(on2);
    }
    assert!(
        on <= off * BUDGET,
        "metrics-enabled pipeline is {:.2}% over the disabled baseline (budget 3%): \
         disabled {:.3} ms, enabled {:.3} ms",
        (on / off - 1.0) * 100.0,
        off * 1e3,
        on * 1e3,
    );
}
