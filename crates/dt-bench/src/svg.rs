//! A minimal SVG line-chart renderer for the figure binaries.
//!
//! No plotting dependency is available offline, and the figures only
//! need lines, error bars, axes, and a legend — a few hundred lines of
//! direct SVG emission. The output mirrors the paper's plots: one line
//! per shedding mode, standard-deviation error bars per point.

use std::fmt::Write;

use dt_metrics::RatePoint;

/// One plotted line.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y, stddev)` triples.
    pub points: Vec<(f64, f64, f64)>,
}

/// Convert a rate sweep into one series per shedding mode.
pub fn rate_points_to_series(points: &[RatePoint]) -> Vec<Series> {
    let Some(first) = points.first() else {
        return Vec::new();
    };
    first
        .modes
        .iter()
        .enumerate()
        .map(|(mi, mode)| Series {
            label: mode.mode.clone(),
            points: points
                .iter()
                .map(|p| (p.rate, p.modes[mi].rms.mean, p.modes[mi].rms.std))
                .collect(),
        })
        .collect()
}

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 440.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 42.0;
const MARGIN_B: f64 = 56.0;
const COLORS: &[&str] = &["#1b7f4d", "#c23b22", "#2a5db0", "#8a5bc7", "#b8860b"];

/// Render a chart as an SVG document.
pub fn render_chart(title: &str, xlabel: &str, ylabel: &str, series: &[Series]) -> String {
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="24" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
        WIDTH / 2.0,
        escape(title)
    );

    // Data extents (include error bars in the y range).
    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1 + p.2))
        .collect();
    if xs.is_empty() {
        svg.push_str(r#"<text x="20" y="60" font-size="13">(no data)</text></svg>"#);
        return svg;
    }
    let (xmin, xmax) = bounds(&xs);
    let (_, ymax) = bounds(&ys);
    let ymin = 0.0;
    let ymax = if ymax <= ymin { ymin + 1.0 } else { ymax };
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let sx = move |x: f64| MARGIN_L + (x - xmin) / (xmax - xmin).max(1e-12) * plot_w;
    let sy = move |y: f64| MARGIN_T + plot_h - (y - ymin) / (ymax - ymin) * plot_h;

    // Axes.
    let _ = write!(
        svg,
        r#"<line x1="{l}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/><line x1="{l}" y1="{t}" x2="{l}" y2="{b}" stroke="black"/>"#,
        l = MARGIN_L,
        r = WIDTH - MARGIN_R,
        t = MARGIN_T,
        b = HEIGHT - MARGIN_B
    );
    // Ticks (5 per axis).
    for i in 0..=5 {
        let fx = xmin + (xmax - xmin) * i as f64 / 5.0;
        let px = sx(fx);
        let _ = write!(
            svg,
            r#"<line x1="{px}" y1="{b}" x2="{px}" y2="{b2}" stroke="black"/><text x="{px}" y="{ty}" text-anchor="middle" font-size="11">{}</text>"#,
            fmt_tick(fx),
            b = HEIGHT - MARGIN_B,
            b2 = HEIGHT - MARGIN_B + 5.0,
            ty = HEIGHT - MARGIN_B + 18.0,
        );
        let fy = ymin + (ymax - ymin) * i as f64 / 5.0;
        let py = sy(fy);
        let _ = write!(
            svg,
            r#"<line x1="{l1}" y1="{py}" x2="{l}" y2="{py}" stroke="black"/><text x="{tx}" y="{typ}" text-anchor="end" font-size="11">{}</text>"#,
            fmt_tick(fy),
            l1 = MARGIN_L - 5.0,
            l = MARGIN_L,
            tx = MARGIN_L - 8.0,
            typ = py + 4.0,
        );
        // Light gridline.
        let _ = write!(
            svg,
            r##"<line x1="{l}" y1="{py}" x2="{r}" y2="{py}" stroke="#dddddd" stroke-width="0.6"/>"##,
            l = MARGIN_L,
            r = WIDTH - MARGIN_R,
        );
    }
    // Axis labels.
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle" font-size="13">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        HEIGHT - 14.0,
        escape(xlabel)
    );
    let _ = write!(
        svg,
        r#"<text x="18" y="{}" text-anchor="middle" font-size="13" transform="rotate(-90 18 {})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        escape(ylabel)
    );

    // Series.
    for (si, s) in series.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        // Error bars.
        for &(x, y, e) in &s.points {
            if e > 0.0 {
                let (px, py0, py1) = (sx(x), sy((y - e).max(ymin)), sy(y + e));
                let _ = write!(
                    svg,
                    r#"<line x1="{px}" y1="{py0}" x2="{px}" y2="{py1}" stroke="{color}" stroke-width="1" opacity="0.55"/>"#
                );
                for py in [py0, py1] {
                    let _ = write!(
                        svg,
                        r#"<line x1="{x0}" y1="{py}" x2="{x1}" y2="{py}" stroke="{color}" stroke-width="1" opacity="0.55"/>"#,
                        x0 = px - 3.0,
                        x1 = px + 3.0,
                    );
                }
            }
        }
        // Polyline.
        let pts: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y, _)| format!("{:.1},{:.1}", sx(x), sy(y)))
            .collect();
        let _ = write!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            pts.join(" ")
        );
        // Markers.
        for &(x, y, _) in &s.points {
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3.2" fill="{color}"/>"#,
                sx(x),
                sy(y)
            );
        }
        // Legend entry.
        let (lx, ly) = (MARGIN_L + 14.0, MARGIN_T + 16.0 + si as f64 * 18.0);
        let _ = write!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{x2}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{tx}" y="{ty}" font-size="12">{}</text>"#,
            escape(&s.label),
            x2 = lx + 22.0,
            tx = lx + 28.0,
            ty = ly + 4.0,
        );
    }
    svg.push_str("</svg>");
    svg
}

fn bounds(vals: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in vals {
        if v.is_finite() {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if !min.is_finite() {
        (0.0, 1.0)
    } else {
        (min, max)
    }
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{:.0}k", v / 1000.0)
    } else if v.abs() >= 10.0 || v == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series {
                label: "data-triage".into(),
                points: vec![(100.0, 0.0, 0.0), (1000.0, 20.0, 2.0), (4000.0, 38.0, 1.0)],
            },
            Series {
                label: "drop-only".into(),
                points: vec![(100.0, 0.0, 0.0), (1000.0, 35.0, 3.0), (4000.0, 80.0, 2.0)],
            },
        ]
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render_chart("Fig 8", "rate (t/s)", "RMS error", &demo_series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("data-triage"));
        assert!(svg.contains("drop-only"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("Fig 8"));
        // Two polylines, one per series.
        assert_eq!(svg.matches("<polyline").count(), 2);
        // Markers: 3 per series.
        assert_eq!(svg.matches("<circle").count(), 6);
    }

    #[test]
    fn escapes_markup_in_labels() {
        let series = vec![Series {
            label: "a<b&c".into(),
            points: vec![(0.0, 1.0, 0.0)],
        }];
        let svg = render_chart("t<t", "x", "y", &series);
        assert!(svg.contains("a&lt;b&amp;c"));
        assert!(svg.contains("t&lt;t"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn empty_series_renders_placeholder() {
        let svg = render_chart("t", "x", "y", &[]);
        assert!(svg.contains("no data"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn y_axis_starts_at_zero_and_covers_error_bars() {
        let series = vec![Series {
            label: "s".into(),
            points: vec![(0.0, 10.0, 5.0), (1.0, 20.0, 5.0)],
        }];
        let svg = render_chart("t", "x", "y", &series);
        // Top tick must be at least max(y+std) = 25.
        assert!(
            svg.contains(">25<") || svg.contains(">30<") || svg.contains(">26<"),
            "unexpected ticks in {svg}"
        );
    }

    #[test]
    fn rate_points_convert() {
        use dt_metrics::{MeanStd, ModeSeries, RatePoint};
        let pts = vec![RatePoint {
            rate: 5.0,
            modes: vec![ModeSeries {
                mode: "data-triage".into(),
                rms: MeanStd::from_samples(&[1.0, 3.0]),
                drop_fraction: 0.1,
                diff_vs_first: None,
            }],
        }];
        let series = rate_points_to_series(&pts);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].points[0].0, 5.0);
        assert_eq!(series[0].points[0].1, 2.0);
        assert!(rate_points_to_series(&[]).is_empty());
    }
}
