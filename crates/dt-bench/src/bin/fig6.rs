//! Figure 6: overhead of the rewritten (shadow) query vs the original
//! query, with a slow synopsis (unconstrained MHIST) and a fast
//! synopsis (sparse cubic histogram).
//!
//! The paper loads three tables with 10 000 randomly generated tuples
//! each (values 1..=100), runs the original 3-way join, and compares
//! against the rewritten query evaluated over synopses built from the
//! same data. The original query is executed the way a query engine
//! executes `SELECT *`: every output row is produced and consumed
//! (streamed into a fold), not count-compressed — with ~10⁸ output
//! rows that is the dominant cost, exactly as in the paper's
//! TelegraphCQ runs.
//!
//! ```sh
//! cargo run --release -p dt-bench --bin fig6
//! ```

use std::time::Instant;

use dt_query::{parse_select, Catalog, Planner};
use dt_rewrite::{evaluate, rewrite_dropped};
use dt_synopsis::{Synopsis, SynopsisConfig};
use dt_types::{DataType, Schema};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const TUPLES_PER_TABLE: usize = 10_000;
const DOMAIN: i64 = 100;

fn gen_table(rng: &mut ChaCha8Rng, arity: usize, n: usize) -> Vec<Vec<i64>> {
    (0..n)
        .map(|_| (0..arity).map(|_| rng.gen_range(1..=DOMAIN)).collect())
        .collect()
}

fn build_synopsis(cfg: &SynopsisConfig, dims: usize, rows: &[Vec<i64>]) -> Synopsis {
    let mut s = cfg.build(dims).expect("synopsis config");
    for r in rows {
        s.insert(r).expect("insert");
    }
    s.seal();
    s
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2004);
    let r = gen_table(&mut rng, 1, TUPLES_PER_TABLE);
    let s = gen_table(&mut rng, 2, TUPLES_PER_TABLE);
    let t = gen_table(&mut rng, 1, TUPLES_PER_TABLE);
    // 50/50 kept/dropped split, as a triage queue under 2× overload
    // would produce.
    let split = |v: &[Vec<i64>]| -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
        let mid = v.len() / 2;
        (v[..mid].to_vec(), v[mid..].to_vec())
    };
    let (rk, rd) = split(&r);
    let (sk, sd) = split(&s);
    let (tk, td) = split(&t);

    // ---- Original query: exact 3-way equijoin over all the data ----
    // Row-level streamed execution: build hash indexes on R and T,
    // stream S, and consume every output row through a fold — the cost
    // profile of a real engine running `SELECT *`.
    let start = Instant::now();
    let mut r_index: std::collections::HashMap<i64, u64> = Default::default();
    for row in &r {
        *r_index.entry(row[0]).or_insert(0) += 1;
    }
    let mut t_index: std::collections::HashMap<i64, Vec<i64>> = Default::default();
    for row in &t {
        t_index.entry(row[0]).or_default().push(row[0]);
    }
    let mut original_rows = 0u64;
    for srow in &s {
        let Some(&r_matches) = r_index.get(&srow[0]) else {
            continue;
        };
        let Some(t_matches) = t_index.get(&srow[1]) else {
            continue;
        };
        for _ in 0..r_matches {
            for &d in t_matches {
                // "Emit" the output row (a, b, c, d): materialize it
                // and hand it to an opaque consumer, as an engine's
                // output stage would. black_box prevents the compiler
                // from collapsing the emission loop.
                original_rows += 1;
                let out_row = [srow[0], srow[0], srow[1], d];
                std::hint::black_box(&out_row);
            }
        }
    }
    let original = start.elapsed();

    // ---- Shadow query over synopses ---------------------------------
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    catalog.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    catalog.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    let plan = Planner::new(&catalog)
        .plan(&parse_select("SELECT * FROM R, S, T WHERE R.a = S.b AND S.c = T.d").expect("parse"))
        .expect("plan");
    let shadow = rewrite_dropped(&plan).expect("rewrite");

    let run_shadow = |label: &str, cfg: SynopsisConfig| -> (String, f64) {
        let start = Instant::now();
        let kept = vec![
            build_synopsis(&cfg, 1, &rk),
            build_synopsis(&cfg, 2, &sk),
            build_synopsis(&cfg, 1, &tk),
        ];
        let dropped = vec![
            build_synopsis(&cfg, 1, &rd),
            build_synopsis(&cfg, 2, &sd),
            build_synopsis(&cfg, 1, &td),
        ];
        let est = evaluate(&shadow.plan, &kept, &dropped).expect("evaluate");
        let elapsed = start.elapsed();
        (
            format!(
                "{label:<28} {:>10.3} s   (est. lost rows {:>12.0}, {} memory units)",
                elapsed.as_secs_f64(),
                est.total_mass(),
                est.memory_units()
            ),
            elapsed.as_secs_f64(),
        )
    };

    let (fast_line, fast_secs) = run_shadow(
        "rewritten, fast synopsis",
        SynopsisConfig::Sparse { cell_width: 10 },
    );
    let (slow_line, slow_secs) = run_shadow(
        "rewritten, slow synopsis",
        SynopsisConfig::MHist {
            max_buckets: 64,
            alignment: None,
        },
    );
    let (aligned_line, aligned_secs) = run_shadow(
        "rewritten, aligned MHIST",
        SynopsisConfig::MHist {
            max_buckets: 64,
            alignment: Some(10),
        },
    );

    println!("# Figure 6 — shadow-query overhead microbenchmark");
    println!(
        "# {} tuples/table, values uniform 1..={}, 50% dropped\n",
        TUPLES_PER_TABLE, DOMAIN
    );
    println!(
        "{:<28} {:>10.3} s   (exact join, {} result rows)",
        "original query",
        original.as_secs_f64(),
        original_rows
    );
    println!("{fast_line}");
    println!("{slow_line}");
    println!("{aligned_line}  [§8.1 constrained variant]");
    println!();
    println!(
        "fast synopsis is {:.1}% of the original query's cost; slow synopsis is {:.0}x the fast one",
        100.0 * fast_secs / original.as_secs_f64(),
        slow_secs / fast_secs
    );
    let _ = aligned_secs;
}
