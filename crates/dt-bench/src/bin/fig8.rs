//! Figure 8: RMS error of query results vs **constant** data rate for
//! Data Triage, drop-only, and summarize-only load shedding.
//!
//! Expected shape (paper §7.1): drop-only is exact at low rates and
//! degrades past the engine's capacity; summarize-only is flat;
//! Data Triage tracks drop-only at low rates and approaches — without
//! exceeding — summarize-only at high rates, dominating both across
//! the sweep. Points are the mean of 9 seeded runs, ± stddev.
//!
//! ```sh
//! cargo run --release -p dt-bench --bin fig8            # full sweep
//! cargo run --release -p dt-bench --bin fig8 -- --quick # CI-sized
//! ```

use dt_bench::{render_rate_table, write_json};
use dt_metrics::{rate_sweep, SweepConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = SweepConfig::paper_default();
    // Engine capacity 1000 tuples/s; sweep from well under capacity to
    // deep overload (the paper stops where drop-only sheds nearly
    // everything).
    cfg.engine_capacity = 1_000.0;
    let rates: Vec<f64> = if quick {
        cfg.runs = 3;
        cfg.workload.total_tuples = 9_000;
        cfg.tuples_per_window = 450;
        vec![250.0, 1_000.0, 4_000.0]
    } else {
        cfg.runs = 9;
        cfg.workload.total_tuples = 30_000;
        cfg.tuples_per_window = 600;
        vec![
            200.0, 400.0, 600.0, 800.0, 1_000.0, 1_200.0, 1_600.0, 2_400.0, 3_200.0, 4_800.0,
            6_400.0,
        ]
    };

    let points = rate_sweep(&cfg, &rates, false).expect("sweep");
    let table = render_rate_table(
        "Figure 8 — RMS error vs constant data rate (engine capacity 1000 t/s)",
        "rate (t/s)",
        &points,
    );
    println!("{table}");
    if let Err(e) = write_json("fig8.json", &points) {
        eprintln!("note: could not write fig8.json: {e}");
    } else {
        println!("(series written to fig8.json)");
    }
    let svg = dt_bench::svg::render_chart(
        "Figure 8 — RMS error vs constant data rate",
        "data rate (tuples/sec)",
        "RMS error (lower is better)",
        &dt_bench::svg::rate_points_to_series(&points),
    );
    if let Err(e) = std::fs::write("fig8.svg", svg) {
        eprintln!("note: could not write fig8.svg: {e}");
    } else {
        println!("(chart written to fig8.svg)");
    }
}
