//! Ablation A3: sparse-histogram cell width.
//!
//! Width 1 makes the shadow query lossless (and the pipeline exact,
//! see `tests/rewrite_vs_algebra.rs`) but costs one cell per distinct
//! value combination; wider cells shrink the synopsis and cheapen the
//! joins at the price of uniformity error. This sweep quantifies that
//! trade-off at 2x overload.
//!
//! ```sh
//! cargo run --release -p dt-bench --bin ablation_cellwidth
//! ```

use dt_metrics::{rate_sweep, SweepConfig};
use dt_synopsis::SynopsisConfig;
use dt_triage::ShedMode;

fn main() {
    println!("# Ablation A3 — sparse histogram cell width (rate 2000, capacity 1000)");
    println!("{:<10} {:>18}", "width", "RMS (mean±std)");
    for width in [1i64, 2, 5, 10, 20, 50, 100] {
        let mut sweep = SweepConfig::paper_default();
        sweep.runs = 5;
        sweep.workload.total_tuples = 15_000;
        sweep.tuples_per_window = 600;
        sweep.engine_capacity = 1_000.0;
        sweep.synopsis = SynopsisConfig::Sparse { cell_width: width };
        sweep.modes = vec![ShedMode::DataTriage];
        let points = rate_sweep(&sweep, &[2_000.0], false).expect("sweep");
        let m = &points[0].modes[0];
        println!(
            "{:<10} {:>18}",
            width,
            format!("{:8.2} ± {:6.2}", m.rms.mean, m.rms.std)
        );
    }
    println!("\n(width 1 is lossless for GROUP BY counts; width 100 is a single bucket");
    println!(" per dimension — the degenerate 'count only' synopsis)");
}
