//! Emit `BENCH_baseline.json`: the workspace's performance trajectory.
//!
//! Re-measures a small set of representative benchmarks in-process and
//! writes them next to the numbers recorded at the pre-optimization
//! baseline commit, so every future PR can see where the hot path
//! stands relative to where it started.
//!
//! ```sh
//! cargo run --release -p dt-bench --bin bench_baseline            # 3 reps
//! cargo run --release -p dt-bench --bin bench_baseline -- --reps 10
//! ```
//!
//! Methodology note: the `baseline` fields below were measured on the
//! same machine in the same session as the optimized numbers, by
//! alternating runs of the baseline-commit binary and the optimized
//! binary and taking the minimum of 10 — session-to-session wall-clock
//! drift on shared hardware is large enough (±25 % observed) that
//! non-interleaved comparisons are not trustworthy. The `current`
//! fields are re-measured live on every invocation and are therefore
//! only comparable to `baseline` in ratio terms, not absolute ones.

use std::time::Instant;

use dt_engine::CostModel;
use dt_metrics::{rate_sweep_with_threads, report_to_map, SweepConfig};
use dt_obs::MetricsRegistry;
use dt_query::{parse_select, Catalog, Planner, QueryPlan};
use dt_synopsis::SynopsisConfig;
use dt_triage::{Pipeline, PipelineConfig, ShedMode};
use dt_types::{json::obj, DataType, Json, Schema};
use dt_workload::{generate, WorkloadConfig};

/// Numbers recorded at the pre-optimization baseline (PR 1 head), in
/// the units of each bench below.
mod baseline {
    /// `fig8 --quick` wall-clock seconds (interleaved min-of-10).
    pub const FIG8_QUICK_SECS: f64 = 0.206;
    /// Criterion `pipeline_8k_tuples_4x_overload/data-triage` ns/iter.
    pub const PIPELINE_DT_NS: f64 = 7_184_168.0;
    /// Criterion `window_exec_3way_join/batch/400_per_stream` ns/iter.
    pub const WINDOW_EXEC_400_NS: f64 = 1_373_537.0;
    /// Criterion `queue_push_10k_cap100/random` ns/iter.
    pub const QUEUE_PUSH_RANDOM_NS: f64 = 773_072.0;
}

fn paper_plan() -> QueryPlan {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    catalog.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    catalog.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    Planner::new(&catalog)
        .plan(
            &parse_select("SELECT a, COUNT(*) FROM R,S,T WHERE R.a = S.b AND S.c = T.d GROUP BY a")
                .unwrap(),
        )
        .unwrap()
}

/// Minimum elapsed seconds of `f` over `reps` runs — min, not mean,
/// because scheduling noise on shared hardware only ever adds time.
fn min_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The `fig8 --quick` sweep, minus process startup and file output.
fn fig8_quick_secs(reps: usize) -> f64 {
    let mut cfg = SweepConfig::paper_default();
    cfg.engine_capacity = 1_000.0;
    cfg.runs = 3;
    cfg.workload.total_tuples = 9_000;
    cfg.tuples_per_window = 450;
    let rates = [250.0, 1_000.0, 4_000.0];
    // One worker: the baseline number was measured serially, and the
    // trajectory should track single-core hot-path cost, not core
    // count.
    min_secs(reps, || {
        rate_sweep_with_threads(&cfg, &rates, false, 1).expect("sweep");
    })
}

/// The criterion `pipeline_8k_tuples_4x_overload/data-triage` bench
/// body with metrics disabled and enabled, measured *interleaved*
/// (alternating runs, min of each) so the overhead delta is not
/// polluted by wall-clock drift between two separate measurement
/// blocks. Returns `(disabled_ns, enabled_ns)` and optionally hands
/// the last enabled-run registry to `keep_registry` (the `--obs`
/// snapshot).
fn pipeline_dt_pair_ns(reps: usize, mut keep_registry: Option<&mut MetricsRegistry>) -> (f64, f64) {
    let workload = WorkloadConfig::paper_constant(4_000.0, 8_000, 5);
    let arrivals = generate(&workload).unwrap();
    let cfg = || {
        let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
        cfg.cost = CostModel::from_capacity(1_000.0).unwrap();
        cfg.synopsis = SynopsisConfig::Sparse { cell_width: 10 };
        cfg
    };
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = Pipeline::run(paper_plan(), cfg(), arrivals.iter().cloned()).unwrap();
        best_off = best_off.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(report_to_map(&report).len());

        // A fresh registry per run, registration included: that is the
        // cost an instrumented run actually pays.
        let reg = MetricsRegistry::new();
        let t0 = Instant::now();
        let report =
            Pipeline::run_with_metrics(paper_plan(), cfg(), arrivals.iter().cloned(), &reg)
                .unwrap();
        best_on = best_on.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(report_to_map(&report).len());
        if let Some(keep) = keep_registry.as_deref_mut() {
            *keep = reg;
        }
    }
    (best_off * 1e9, best_on * 1e9)
}

/// The `window_exec_3way_join/batch/400_per_stream` bench body.
fn window_exec_400_ns(reps: usize) -> f64 {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(400);
    let mut make = |arity: usize| -> Vec<dt_types::Row> {
        (0..400)
            .map(|_| {
                dt_types::Row::from_ints(
                    &(0..arity)
                        .map(|_| rng.gen_range(1..=100))
                        .collect::<Vec<i64>>(),
                )
            })
            .collect()
    };
    let inputs = vec![make(1), make(2), make(1)];
    let plan = paper_plan();
    min_secs(reps, || {
        std::hint::black_box(dt_engine::execute_window(&plan, &inputs).unwrap().len());
    }) * 1e9
}

/// The `queue_push_10k_cap100/random` bench body.
fn queue_push_random_ns(reps: usize) -> f64 {
    use dt_triage::{DropPolicy, TriageQueue};
    use dt_types::{Row, Timestamp, Tuple};
    let tuples: Vec<Tuple> = (0..10_000)
        .map(|i| Tuple::new(Row::from_ints(&[i % 100]), Timestamp::from_micros(i as u64)))
        .collect();
    let syn = {
        let mut s = SynopsisConfig::Sparse { cell_width: 10 }.build(1).unwrap();
        for v in 0..100 {
            s.insert(&[v]).unwrap();
        }
        s
    };
    min_secs(reps, || {
        let mut q = TriageQueue::new(100, DropPolicy::Random, 1).unwrap();
        let mut victims = 0u64;
        for t in &tuples {
            if q.push(t.clone(), Some(&syn)).is_some() {
                victims += 1;
            }
        }
        std::hint::black_box(victims);
    }) * 1e9
}

fn entry(name: &str, unit: &str, before: f64, after: f64) -> Json {
    obj(vec![
        ("name", Json::Str(name.to_string())),
        ("unit", Json::Str(unit.to_string())),
        ("baseline", Json::Num(before)),
        ("current", Json::Num(after)),
        // Rounded so reruns produce stable-looking diffs.
        (
            "speedup",
            Json::Num((before / after * 100.0).round() / 100.0),
        ),
    ])
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut reps = 3usize;
    let mut out = "BENCH_baseline.json".to_string();
    let mut obs = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).unwrap_or(reps),
            "--out" => out = args.next().unwrap_or(out),
            "--obs" => obs = true,
            other => {
                eprintln!("unknown arg {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!("measuring ({reps} reps per bench)...");
    let fig8 = fig8_quick_secs(reps);
    let mut reg = MetricsRegistry::disabled();
    let (pipeline, pipeline_obs) = pipeline_dt_pair_ns(reps, obs.then_some(&mut reg));
    let window = window_exec_400_ns(reps);
    let queue = queue_push_random_ns(reps);
    let overhead_pct = (pipeline_obs / pipeline - 1.0) * 100.0;

    let doc =
        obj(vec![
        ("baseline_commit", Json::Str("PR 1 head (pre-batching)".into())),
        (
            "methodology",
            Json::Str(
                "baseline = interleaved min-of-10 vs the baseline-commit binary on one machine; \
                 current = live min-of-N this invocation; compare ratios, not absolutes"
                    .into(),
            ),
        ),
        (
            "benches",
            Json::Arr(vec![
                entry(
                    "fig8_quick_wall_clock",
                    "seconds",
                    baseline::FIG8_QUICK_SECS,
                    fig8,
                ),
                entry(
                    "pipeline_8k_tuples_4x_overload/data-triage",
                    "ns_per_iter",
                    baseline::PIPELINE_DT_NS,
                    pipeline,
                ),
                entry(
                    "window_exec_3way_join/batch/400_per_stream",
                    "ns_per_iter",
                    baseline::WINDOW_EXEC_400_NS,
                    window,
                ),
                entry(
                    "queue_push_10k_cap100/random",
                    "ns_per_iter",
                    baseline::QUEUE_PUSH_RANDOM_NS,
                    queue,
                ),
            ]),
        ),
        // The dt-obs overhead guard: the same pipeline bench with a live
        // MetricsRegistry vs. a disabled one, measured interleaved in the
        // same invocation. The ≤3 % budget is test-enforced by
        // `crates/dt-bench/tests/obs_overhead.rs`.
        (
            "metrics_overhead",
            obj(vec![
                ("bench", Json::Str("pipeline_8k_tuples_4x_overload/data-triage".into())),
                ("disabled_ns", Json::Num(pipeline)),
                ("enabled_ns", Json::Num(pipeline_obs)),
                ("overhead_pct", Json::Num((overhead_pct * 100.0).round() / 100.0)),
                ("budget_pct", Json::Num(3.0)),
            ]),
        ),
    ]);
    std::fs::write(&out, doc.render_pretty()).expect("write baseline json");
    println!("{}", doc.render_pretty());
    println!("(written to {out})");
    if obs {
        println!("\n{}", reg.render_table());
    }
}
