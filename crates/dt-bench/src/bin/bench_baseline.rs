//! Emit `BENCH_baseline.json`: the workspace's performance trajectory.
//!
//! Re-measures a small set of representative benchmarks in-process and
//! writes them next to the numbers recorded at the pre-optimization
//! baseline commit, so every future PR can see where the hot path
//! stands relative to where it started.
//!
//! ```sh
//! cargo run --release -p dt-bench --bin bench_baseline            # 3 reps
//! cargo run --release -p dt-bench --bin bench_baseline -- --reps 10
//! # regression gate: re-measure and fail if any headline metric is
//! # >10 % worse than the committed BENCH_baseline.json
//! cargo run --release -p dt-bench --bin bench_baseline -- --compare --quick
//! ```
//!
//! `--compare` never writes: it loads the committed baseline (override
//! with `--baseline PATH`), re-measures the headline metrics live, and
//! exits non-zero listing every metric that regressed past its
//! per-metric tolerance (see [`HEADLINE`]). `--quick` drops to one rep
//! per bench for CI smoke use; min-of-1 only ever over-estimates, so a
//! quick pass is trustworthy and a quick failure is worth re-running
//! deeper.
//!
//! Write mode appends one entry to the `trajectory` array per
//! invocation (label it with `--label`), so the JSON records each
//! optimization generation, not just the latest.
//!
//! Methodology note: the `baseline` fields below were measured on the
//! same machine in the same session as the optimized numbers, by
//! alternating runs of the baseline-commit binary and the optimized
//! binary and taking the minimum of 10 — session-to-session wall-clock
//! drift on shared hardware is large enough (±25 % observed) that
//! non-interleaved comparisons are not trustworthy. The `current`
//! fields are re-measured live on every invocation and are therefore
//! only comparable to `baseline` in ratio terms, not absolute ones.

use std::time::Instant;

use dt_engine::CostModel;
use dt_metrics::{rate_sweep_with_threads, report_to_map, SweepConfig};
use dt_obs::MetricsRegistry;
use dt_query::{parse_select, Catalog, Planner, QueryPlan};
use dt_synopsis::SynopsisConfig;
use dt_triage::{Pipeline, PipelineConfig, ShedMode};
use dt_types::{json::obj, DataType, Json, Schema};
use dt_workload::{generate, WorkloadConfig};

/// Numbers recorded at the pre-optimization baseline (PR 1 head), in
/// the units of each bench below.
mod baseline {
    /// `fig8 --quick` wall-clock seconds (interleaved min-of-10).
    pub const FIG8_QUICK_SECS: f64 = 0.206;
    /// Criterion `pipeline_8k_tuples_4x_overload/data-triage` ns/iter.
    pub const PIPELINE_DT_NS: f64 = 7_184_168.0;
    /// Criterion `window_exec_3way_join/batch/400_per_stream` ns/iter.
    pub const WINDOW_EXEC_400_NS: f64 = 1_373_537.0;
    /// Criterion `queue_push_10k_cap100/random` ns/iter.
    pub const QUEUE_PUSH_RANDOM_NS: f64 = 773_072.0;
}

fn paper_plan() -> QueryPlan {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    catalog.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    catalog.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    Planner::new(&catalog)
        .plan(
            &parse_select("SELECT a, COUNT(*) FROM R,S,T WHERE R.a = S.b AND S.c = T.d GROUP BY a")
                .unwrap(),
        )
        .unwrap()
}

/// Minimum elapsed seconds of `f` over `reps` runs — min, not mean,
/// because scheduling noise on shared hardware only ever adds time.
fn min_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The `fig8 --quick` sweep, minus process startup and file output.
fn fig8_quick_secs(reps: usize) -> f64 {
    let mut cfg = SweepConfig::paper_default();
    cfg.engine_capacity = 1_000.0;
    cfg.runs = 3;
    cfg.workload.total_tuples = 9_000;
    cfg.tuples_per_window = 450;
    let rates = [250.0, 1_000.0, 4_000.0];
    // One worker: the baseline number was measured serially, and the
    // trajectory should track single-core hot-path cost, not core
    // count.
    min_secs(reps, || {
        rate_sweep_with_threads(&cfg, &rates, false, 1).expect("sweep");
    })
}

/// The criterion `pipeline_8k_tuples_4x_overload/data-triage` bench
/// body with metrics disabled and enabled, measured *interleaved*
/// (alternating runs, min of each) so the overhead delta is not
/// polluted by wall-clock drift between two separate measurement
/// blocks. Returns `(disabled_ns, enabled_ns)` and optionally hands
/// the last enabled-run registry to `keep_registry` (the `--obs`
/// snapshot).
fn pipeline_dt_pair_ns(reps: usize, mut keep_registry: Option<&mut MetricsRegistry>) -> (f64, f64) {
    let workload = WorkloadConfig::paper_constant(4_000.0, 8_000, 5);
    let arrivals = generate(&workload).unwrap();
    let cfg = || {
        let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
        cfg.cost = CostModel::from_capacity(1_000.0).unwrap();
        cfg.synopsis = SynopsisConfig::Sparse { cell_width: 10 };
        cfg
    };
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = Pipeline::run(paper_plan(), cfg(), arrivals.iter().cloned()).unwrap();
        best_off = best_off.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(report_to_map(&report).len());

        // A fresh registry per run, registration included: that is the
        // cost an instrumented run actually pays.
        let reg = MetricsRegistry::new();
        let t0 = Instant::now();
        let report =
            Pipeline::run_with_metrics(paper_plan(), cfg(), arrivals.iter().cloned(), &reg)
                .unwrap();
        best_on = best_on.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(report_to_map(&report).len());
        if let Some(keep) = keep_registry.as_deref_mut() {
            *keep = reg;
        }
    }
    (best_off * 1e9, best_on * 1e9)
}

/// The `window_exec_3way_join/batch/400_per_stream` bench body.
fn window_exec_400_ns(reps: usize) -> f64 {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(400);
    let mut make = |arity: usize| -> Vec<dt_types::Row> {
        (0..400)
            .map(|_| {
                dt_types::Row::from_ints(
                    &(0..arity)
                        .map(|_| rng.gen_range(1..=100))
                        .collect::<Vec<i64>>(),
                )
            })
            .collect()
    };
    let inputs = vec![make(1), make(2), make(1)];
    let plan = paper_plan();
    min_secs(reps, || {
        std::hint::black_box(dt_engine::execute_window(&plan, &inputs).unwrap().len());
    }) * 1e9
}

/// The `queue_push_10k_cap100/random` bench body.
fn queue_push_random_ns(reps: usize) -> f64 {
    use dt_triage::{DropPolicy, TriageQueue};
    use dt_types::{Row, Timestamp, Tuple};
    let tuples: Vec<Tuple> = (0..10_000)
        .map(|i| Tuple::new(Row::from_ints(&[i % 100]), Timestamp::from_micros(i as u64)))
        .collect();
    let syn = {
        let mut s = SynopsisConfig::Sparse { cell_width: 10 }.build(1).unwrap();
        for v in 0..100 {
            s.insert(&[v]).unwrap();
        }
        s
    };
    min_secs(reps, || {
        let mut q = TriageQueue::new(100, DropPolicy::Random, 1).unwrap();
        let mut victims = 0u64;
        for t in &tuples {
            if q.push(t.clone(), Some(&syn)).is_some() {
                victims += 1;
            }
        }
        std::hint::black_box(victims);
    }) * 1e9
}

fn entry(name: &str, unit: &str, before: f64, after: f64, cal: f64) -> Json {
    obj(vec![
        ("name", Json::Str(name.to_string())),
        ("unit", Json::Str(unit.to_string())),
        ("baseline", Json::Num(before)),
        ("current", Json::Num(after)),
        // Rounded so reruns produce stable-looking diffs.
        (
            "speedup",
            Json::Num((before / after * 100.0).round() / 100.0),
        ),
        // Calibration-kernel reading taken right before `current` was
        // measured: host contention on this box swings on second
        // timescales, so `--compare` normalizes each metric by its own
        // contemporaneous machine speed, not a process-global one.
        ("cal_ns", Json::Num(cal)),
    ])
}

/// The headline metrics, `(name, unit, tolerance)`; names match the
/// `benches` array in the committed JSON. Lower is always better.
///
/// Tolerance is the worse-than-committed ratio `--compare` fails at,
/// sized per metric to ~2x the cross-process variance of
/// drift-normalized mins observed on the 1-vCPU shared-host CI box:
/// the two execution-kernel benches normalize well (±10 %) and get a
/// tight 15 % gate, while fig8 (a threaded wall-clock sweep) and the
/// sub-millisecond queue microbench swing ±20-35 % from host steal
/// alone and get gates wide enough to not cry wolf — a real
/// regression of interest (e.g. the columnar path degrading to the
/// row path) is a multiple, not a percentage.
const HEADLINE: [(&str, &str, f64); 4] = [
    ("fig8_quick_wall_clock", "seconds", 1.50),
    (
        "pipeline_8k_tuples_4x_overload/data-triage",
        "ns_per_iter",
        1.15,
    ),
    (
        "window_exec_3way_join/batch/400_per_stream",
        "ns_per_iter",
        1.15,
    ),
    ("queue_push_10k_cap100/random", "ns_per_iter", 1.30),
];

/// Calibration kernel: a fixed CPU/memory-bound loop, independent of
/// any code this workspace optimizes, timed min-of-5. Its ratio
/// between two sessions estimates machine-speed drift, so `--compare`
/// can normalize absolute numbers measured on different days (the
/// methodology note: ±25 % session drift is routine here).
fn calibration_ns() -> f64 {
    min_secs(5, || {
        // Shaped like the benches — per-pass Vec growth, hash-style
        // mixing, and scattered access over an L2-busting buffer —
        // rather than pure ALU, so host-side memory-subsystem or
        // allocator contention moves this number the same way it
        // moves the real measurements. (A sequential ALU kernel sits
        // in registers and L2 and reads "fast" while alloc-heavy
        // benches crater, which mis-normalizes exactly when it
        // matters.)
        const MASK: usize = (1 << 20) - 1;
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut buf = vec![0u64; 1 << 20];
        for _ in 0..4 {
            let mut scratch: Vec<u64> = Vec::new();
            for i in 0..(1u64 << 16) {
                // xorshift* — cheap, serial, and opaque to the
                // optimizer once black_boxed below.
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                let h = x.wrapping_mul(0x2545F4914F6CDD1D);
                let idx = (h as usize) & MASK;
                buf[idx] = buf[idx].wrapping_add(h ^ i);
                scratch.push(h);
            }
            std::hint::black_box(scratch.len());
        }
        std::hint::black_box(buf[x as usize & MASK]);
    }) * 1e9
}

/// Measure one headline metric by name.
fn measure_one(name: &str, reps: usize) -> f64 {
    match name {
        "fig8_quick_wall_clock" => fig8_quick_secs(reps),
        "pipeline_8k_tuples_4x_overload/data-triage" => pipeline_dt_pair_ns(reps, None).0,
        "window_exec_3way_join/batch/400_per_stream" => window_exec_400_ns(reps),
        "queue_push_10k_cap100/random" => queue_push_random_ns(reps),
        other => unreachable!("unknown headline metric {other}"),
    }
}

/// `--compare`: re-measure and gate against the committed baseline.
/// Exits non-zero when any headline metric is worse than its stored
/// `current` value by more than that metric's [`HEADLINE`] tolerance.
///
/// The committed values are min-of-many; a shallow live min (all
/// `--quick` affords) routinely lands 10-50 % above them from cold
/// caches alone. So a metric that trips the tolerance is re-measured
/// at up to 25 reps, each round drift-normalized by a contemporaneous
/// calibration run — the running min over normalized samples only
/// ever tightens, so escalation can acquit a noisy first read but
/// never excuse a real regression.
fn run_compare(baseline_path: &str, reps: usize) -> ! {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
    let doc = Json::parse(&text).expect("parse baseline json");
    let committed: Vec<(String, f64, Option<f64>)> = doc
        .get("benches")
        .and_then(Json::as_arr)
        .expect("baseline json has a benches array")
        .iter()
        .map(|b| {
            (
                b.get("name")
                    .and_then(Json::as_str)
                    .expect("bench name")
                    .to_string(),
                b.get("current")
                    .and_then(Json::as_f64)
                    .expect("bench current value"),
                b.get("cal_ns").and_then(Json::as_f64),
            )
        })
        .collect();
    // Drift normalization: the committed numbers were taken at some
    // other moment's machine speed. Host contention on this box comes
    // and goes on second timescales, so each stored metric carries the
    // calibration reading taken next to it (`cal_ns`, falling back to
    // the process-global `calibration_ns`), and every live measurement
    // round re-runs the kernel: both sides of the tolerance test are
    // normalized by a contemporaneous reading of the machine.
    let global_cal = doc.get("calibration_ns").and_then(Json::as_f64);
    let drift_now = |stored_cal: Option<f64>| match stored_cal.or(global_cal) {
        Some(sc) => {
            let d = calibration_ns() / sc;
            eprintln!("    (machine drift x{d:.3})");
            d
        }
        None => 1.0,
    };
    eprintln!("comparing against {baseline_path} ({reps} reps per bench)...");
    let mut regressions = Vec::new();
    for (name, unit, tolerance) in HEADLINE {
        let Some((_, stored, stored_cal)) = committed.iter().find(|(n, ..)| n == name) else {
            eprintln!("  {name}: not in baseline, skipped");
            continue;
        };
        // Escalating rounds: each one measures the metric and divides
        // by that round's drift; the running min over normalized
        // samples only ever tightens, so deeper rounds can acquit a
        // noisy first read but never excuse a real regression.
        let mut value = f64::INFINITY;
        let rounds = [reps, 10.max(reps), 25];
        for (i, round_reps) in rounds.into_iter().enumerate() {
            let v = measure_one(name, round_reps) / drift_now(*stored_cal);
            value = value.min(v);
            if value / stored <= tolerance || i + 1 == rounds.len() {
                break;
            }
            eprintln!("  {name}: {value:.3e} over tolerance at {round_reps} rep(s), escalating");
        }
        let ratio = value / stored;
        let verdict = if ratio > tolerance {
            regressions.push(format!(
                "{name}: {value:.3e} {unit} vs committed {stored:.3e} \
                 ({:+.1} %, tolerance {:+.0} %)",
                (ratio - 1.0) * 100.0,
                (tolerance - 1.0) * 100.0
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {verdict:>9}  {name}: {value:.3e} {unit} (committed {stored:.3e}, {:+.1} % \
             of {:+.0} % allowed)",
            (ratio - 1.0) * 100.0,
            (tolerance - 1.0) * 100.0
        );
    }
    if regressions.is_empty() {
        println!(
            "compare: all {} headline metrics within tolerance of {baseline_path}",
            HEADLINE.len(),
        );
        std::process::exit(0);
    }
    eprintln!("compare: {} metric(s) regressed:", regressions.len());
    for r in &regressions {
        eprintln!("  {r}");
    }
    std::process::exit(1);
}

/// The `trajectory` array carried forward from a prior output file —
/// or, for a file written before trajectories existed, synthesized
/// from its `baseline`/`current` pairs so history is never dropped.
fn prior_trajectory(out_path: &str) -> Vec<Json> {
    let Ok(text) = std::fs::read_to_string(out_path) else {
        return Vec::new();
    };
    let Ok(doc) = Json::parse(&text) else {
        return Vec::new();
    };
    if let Some(t) = doc.get("trajectory").and_then(Json::as_arr) {
        return t.to_vec();
    }
    // Pre-trajectory file: its benches hold two generations.
    let Some(benches) = doc.get("benches").and_then(Json::as_arr) else {
        return Vec::new();
    };
    let gen = |field: &str, label: &str| {
        obj(vec![
            ("label", Json::Str(label.into())),
            (
                "metrics",
                obj(benches
                    .iter()
                    .filter_map(|b| {
                        Some((
                            b.get("name").and_then(Json::as_str)?,
                            Json::Num(b.get(field).and_then(Json::as_f64)?),
                        ))
                    })
                    .collect()),
            ),
        ])
    };
    let commit = doc
        .get("baseline_commit")
        .and_then(Json::as_str)
        .unwrap_or("baseline");
    vec![gen("baseline", commit), gen("current", "pre-columnar")]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut reps = 3usize;
    let mut out = "BENCH_baseline.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut label = "unlabeled".to_string();
    let mut obs = false;
    let mut compare = false;
    let mut quick = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).unwrap_or(reps),
            "--out" => out = args.next().unwrap_or(out),
            "--baseline" => baseline_path = args.next(),
            "--label" => label = args.next().unwrap_or(label),
            "--obs" => obs = true,
            "--compare" => compare = true,
            "--quick" => quick = true,
            other => {
                eprintln!("unknown arg {other}");
                std::process::exit(2);
            }
        }
    }
    if quick {
        reps = 1;
    }
    if compare {
        let path = baseline_path.unwrap_or_else(|| "BENCH_baseline.json".to_string());
        run_compare(&path, reps);
    }

    eprintln!("measuring ({reps} reps per bench)...");
    // Each metric gets a calibration reading taken immediately before
    // it, so the committed (current, cal_ns) pairs are contemporaneous
    // even when host contention shifts mid-run.
    let cal = calibration_ns();
    let fig8 = fig8_quick_secs(reps);
    let cal_pipeline = calibration_ns();
    let mut reg = MetricsRegistry::disabled();
    let (pipeline, pipeline_obs) = pipeline_dt_pair_ns(reps, obs.then_some(&mut reg));
    let cal_window = calibration_ns();
    let window = window_exec_400_ns(reps);
    let cal_queue = calibration_ns();
    let queue = queue_push_random_ns(reps);
    let overhead_pct = (pipeline_obs / pipeline - 1.0) * 100.0;

    let mut trajectory = prior_trajectory(&out);
    trajectory.push(obj(vec![
        ("label", Json::Str(label)),
        (
            "metrics",
            obj(vec![
                ("fig8_quick_wall_clock", Json::Num(fig8)),
                (
                    "pipeline_8k_tuples_4x_overload/data-triage",
                    Json::Num(pipeline),
                ),
                (
                    "window_exec_3way_join/batch/400_per_stream",
                    Json::Num(window),
                ),
                ("queue_push_10k_cap100/random", Json::Num(queue)),
            ]),
        ),
    ]));

    let doc =
        obj(vec![
        ("baseline_commit", Json::Str("PR 1 head (pre-batching)".into())),
        (
            "methodology",
            Json::Str(
                "baseline = interleaved min-of-10 vs the baseline-commit binary on one machine; \
                 current = live min-of-N this invocation; compare ratios, not absolutes"
                    .into(),
            ),
        ),
        // Machine-speed reference for `--compare` (same session as the
        // numbers below): a fixed kernel whose live/stored ratio
        // rescales them onto a future session's clock.
        ("calibration_ns", Json::Num(cal)),
        (
            "benches",
            Json::Arr(vec![
                entry(
                    "fig8_quick_wall_clock",
                    "seconds",
                    baseline::FIG8_QUICK_SECS,
                    fig8,
                    cal,
                ),
                entry(
                    "pipeline_8k_tuples_4x_overload/data-triage",
                    "ns_per_iter",
                    baseline::PIPELINE_DT_NS,
                    pipeline,
                    cal_pipeline,
                ),
                entry(
                    "window_exec_3way_join/batch/400_per_stream",
                    "ns_per_iter",
                    baseline::WINDOW_EXEC_400_NS,
                    window,
                    cal_window,
                ),
                entry(
                    "queue_push_10k_cap100/random",
                    "ns_per_iter",
                    baseline::QUEUE_PUSH_RANDOM_NS,
                    queue,
                    cal_queue,
                ),
            ]),
        ),
        // The dt-obs overhead guard: the same pipeline bench with a live
        // MetricsRegistry vs. a disabled one, measured interleaved in the
        // same invocation. The ≤3 % budget is test-enforced by
        // `crates/dt-bench/tests/obs_overhead.rs`.
        (
            "metrics_overhead",
            obj(vec![
                ("bench", Json::Str("pipeline_8k_tuples_4x_overload/data-triage".into())),
                ("disabled_ns", Json::Num(pipeline)),
                ("enabled_ns", Json::Num(pipeline_obs)),
                ("overhead_pct", Json::Num((overhead_pct * 100.0).round() / 100.0)),
                ("budget_pct", Json::Num(3.0)),
            ]),
        ),
        // One entry per optimization generation, oldest first; write
        // mode appends the live measurement under `--label`.
        ("trajectory", Json::Arr(trajectory)),
    ]);
    std::fs::write(&out, doc.render_pretty()).expect("write baseline json");
    println!("{}", doc.render_pretty());
    println!("(written to {out})");
    if obs {
        println!("\n{}", reg.render_table());
    }
}
