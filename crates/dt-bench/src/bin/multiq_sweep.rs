//! Multi-query sharing sweep: the marginal cost of one more query on
//! a stream (ISSUE 6, the paper's "triage once per stream" economy,
//! §3 Fig. 3).
//!
//! Two architectures process the identical workload with Q = 1…16
//! concurrent aggregation queries over one stream:
//!
//! * **shared** — one [`dt_registry::QueryRegistry`]: tuples are
//!   triaged and folded into the stream's kept/dropped synopses
//!   *once*, and each sealed window fans out to the Q executors by
//!   reference. Per-tuple work is constant in Q; only the per-window
//!   close scales.
//! * **naive** — Q independent single-query registries, each fed
//!   every tuple: per-tuple triage + synopsis work is paid Q times,
//!   the way Q separate `dtsim`/`dt-serve` processes would.
//!
//! Expected shape: naive per-tuple cost grows linearly in Q while the
//! shared curve stays ~flat, so the marginal cost of query Q+1 in the
//! shared architecture is a small fraction of the naive one.
//!
//! ```sh
//! cargo run --release -p dt-bench --bin multiq_sweep            # full
//! cargo run --release -p dt-bench --bin multiq_sweep -- --quick # CI
//! ```
//!
//! The committed `MULTIQ_sweep.json` at the repo root is the full
//! (non-quick) sweep's output.

use std::time::Instant;

use dt_bench::write_json;
use dt_obs::MetricsRegistry;
use dt_query::Catalog;
use dt_registry::{QueryRegistry, QuerySpec, RegistryConfig, WindowInputs};
use dt_synopsis::SynopsisConfig;
use dt_triage::{ShedMode, SynPair};
use dt_types::{json, DataType, Json, Row, Schema, ToJson, VDuration, WindowSpec};

/// One sweep point.
struct MultiqPoint {
    queries: usize,
    /// Mean µs of per-tuple + per-window work, per tuple, per arch.
    shared_us_per_tuple: f64,
    naive_us_per_tuple: f64,
    /// Marginal µs/tuple for each query beyond the first.
    shared_marginal_us: f64,
    naive_marginal_us: f64,
}

impl ToJson for MultiqPoint {
    fn to_json(&self) -> Json {
        json::obj(vec![
            ("queries", self.queries.to_json()),
            ("shared_us_per_tuple", self.shared_us_per_tuple.to_json()),
            ("naive_us_per_tuple", self.naive_us_per_tuple.to_json()),
            ("shared_marginal_us", self.shared_marginal_us.to_json()),
            ("naive_marginal_us", self.naive_marginal_us.to_json()),
        ])
    }
}

/// The statements attached to the stream, cycled to build Q queries.
const STATEMENTS: [&str; 4] = [
    "SELECT a, COUNT(*) FROM R GROUP BY a",
    "SELECT a, SUM(a) FROM R GROUP BY a",
    "SELECT a, AVG(a) FROM R GROUP BY a",
    "SELECT a, COUNT(*) FROM R GROUP BY a WINDOW R['1 second']",
];

fn registry(n_queries: usize) -> QueryRegistry {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let reg = QueryRegistry::new(
        RegistryConfig {
            catalog,
            mode: ShedMode::DataTriage,
            spec: WindowSpec::new(VDuration::from_secs(1)).expect("window spec"),
            override_windows: false,
        },
        MetricsRegistry::disabled(),
    )
    .expect("registry");
    for q in 0..n_queries {
        reg.register(QuerySpec::new(STATEMENTS[q % STATEMENTS.len()]))
            .expect("register");
    }
    reg
}

/// Process `windows` windows of `per_window` tuples through `reg`:
/// per-tuple triage (keep half, shed half into the dropped synopsis)
/// once, then a per-window close that fans out to every registered
/// query. Returns elapsed seconds.
fn drive(reg: &QueryRegistry, windows: u64, per_window: usize, syn: SynopsisConfig) -> f64 {
    let start = Instant::now();
    let mut acc = 0.0f64;
    for w in 0..windows {
        let mut kept_rows: Vec<Row> = Vec::with_capacity(per_window / 2);
        let mut pair = SynPair {
            kept: syn.build(1).expect("synopsis"),
            dropped: syn.build(1).expect("synopsis"),
        };
        let (mut kept, mut dropped) = (0u64, 0u64);
        for i in 0..per_window {
            // Deterministic skewed values; alternate keep/shed so both
            // synopsis paths and the exact path are exercised.
            let v = ((i * i + w as usize) % 97) as i64 % 10;
            if i % 2 == 0 {
                kept += 1;
                kept_rows.push(Row::from_ints(&[v]));
                pair.kept.insert(&[v]).expect("insert");
            } else {
                dropped += 1;
                pair.dropped.insert(&[v]).expect("insert");
            }
        }
        pair.kept.seal();
        pair.dropped.seal();
        let rows = vec![kept_rows];
        let pairs = vec![pair];
        let counts = vec![(kept, dropped)];
        let closes = reg
            .close_window(
                w,
                WindowInputs {
                    rows: &rows,
                    pairs: Some(&pairs),
                    counts: &counts,
                },
            )
            .expect("close");
        // Fold a result byte so the optimizer cannot discard the work.
        for (_, c) in &closes {
            acc += c.estimated_share();
        }
    }
    std::hint::black_box(acc);
    start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (windows, per_window, reps) = if quick {
        (8, 2_000, 1)
    } else {
        (20, 10_000, 3)
    };
    let syn = SynopsisConfig::Sparse { cell_width: 2 };
    let tuples = windows as f64 * per_window as f64;

    let mut points: Vec<MultiqPoint> = Vec::new();
    let mut shared_base = 0.0f64;
    let mut naive_base = 0.0f64;
    for &q in &[1usize, 2, 4, 8, 16] {
        // Best-of-reps wall time, to shrug off scheduler noise.
        let mut shared = f64::INFINITY;
        let mut naive = f64::INFINITY;
        for _ in 0..reps {
            let reg = registry(q);
            shared = shared.min(drive(&reg, windows, per_window, syn));
            let regs: Vec<QueryRegistry> = (0..q).map(|_| registry(1)).collect();
            let t = regs
                .iter()
                .map(|r| drive(r, windows, per_window, syn))
                .sum();
            naive = naive.min(t);
        }
        let shared_us = shared * 1e6 / tuples;
        let naive_us = naive * 1e6 / tuples;
        if q == 1 {
            shared_base = shared_us;
            naive_base = naive_us;
        }
        points.push(MultiqPoint {
            queries: q,
            shared_us_per_tuple: shared_us,
            naive_us_per_tuple: naive_us,
            shared_marginal_us: if q > 1 {
                (shared_us - shared_base) / (q - 1) as f64
            } else {
                0.0
            },
            naive_marginal_us: if q > 1 {
                (naive_us - naive_base) / (q - 1) as f64
            } else {
                0.0
            },
        });
    }

    println!("Multi-query sharing sweep — µs per tuple ({windows} windows × {per_window} tuples)");
    println!("queries |  shared | marginal |   naive | marginal | naive/shared");
    println!("------- | ------- | -------- | ------- | -------- | ------------");
    for p in &points {
        println!(
            "{:>7} | {:>7.3} | {:>8.4} | {:>7.3} | {:>8.4} | {:>11.2}x",
            p.queries,
            p.shared_us_per_tuple,
            p.shared_marginal_us,
            p.naive_us_per_tuple,
            p.naive_marginal_us,
            p.naive_us_per_tuple / p.shared_us_per_tuple.max(1e-12),
        );
    }

    // The headline claim, checked: at Q=16 the shared architecture's
    // marginal per-query cost must undercut the naive one decisively.
    let last = points.last().expect("points");
    if last.shared_marginal_us * 2.0 > last.naive_marginal_us {
        eprintln!(
            "WARNING: shared marginal {:.4} µs is not clearly below naive {:.4} µs",
            last.shared_marginal_us, last.naive_marginal_us
        );
    }

    if let Err(e) = write_json("multiq_sweep.json", &points) {
        eprintln!("note: could not write multiq_sweep.json: {e}");
    } else {
        println!("(series written to multiq_sweep.json)");
    }
}
