//! Ablation A4: triage-queue capacity.
//!
//! The queue is the knob between result latency and shedding: a larger
//! queue absorbs longer bursts before dropping (fewer drops, better
//! accuracy) but delays window results while it drains. This sweep
//! reports RMS error, drop fraction, and mean result latency per
//! capacity, on the bursty workload.
//!
//! ```sh
//! cargo run --release -p dt-bench --bin ablation_queue
//! ```

use dt_engine::CostModel;
use dt_metrics::{ideal_map, latencies, report_to_map, rms_error, LatencyStats, MeanStd};
use dt_query::{parse_select, Catalog, Planner};
use dt_synopsis::SynopsisConfig;
use dt_triage::{Pipeline, PipelineConfig, ShedMode};
use dt_types::{DataType, Schema, VDuration, WindowSpec};
use dt_workload::{generate, WorkloadConfig};

fn main() {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    catalog.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    catalog.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    let sql = "SELECT a, COUNT(*) as count FROM R,S,T \
               WHERE R.a = S.b AND S.c = T.d GROUP BY a";

    println!("# Ablation A4 — triage queue capacity, bursty workload (peak 8000, capacity 1000)");
    println!(
        "{:<10} {:>18} {:>11} {:>12} {:>12} {:>12}",
        "capacity", "RMS (mean±std)", "drop-frac", "lat p50 (s)", "lat p95 (s)", "lat max (s)"
    );
    for capacity in [10usize, 25, 50, 100, 200, 400, 800] {
        let mut errs = Vec::new();
        let mut fracs = Vec::new();
        let mut lats = Vec::new();
        for seed in 1..=5u64 {
            let workload = WorkloadConfig::paper_bursty(80.0, 15_000, seed);
            let arrivals = generate(&workload).unwrap();
            let mean_rate = workload.arrival.mean_rate();
            let spec = WindowSpec::new(VDuration::from_secs_f64(600.0 / mean_rate)).unwrap();
            let mut plan = Planner::new(&catalog)
                .plan(&parse_select(sql).unwrap())
                .unwrap();
            for s in &mut plan.streams {
                s.window = spec;
            }
            let ideal = ideal_map(&plan, &arrivals).unwrap();
            let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
            cfg.cost = CostModel::from_capacity(1_000.0).unwrap();
            cfg.queue_capacity = capacity;
            cfg.synopsis = SynopsisConfig::Sparse { cell_width: 10 };
            cfg.seed = seed;
            let report = Pipeline::run(plan, cfg, arrivals.iter().cloned()).unwrap();
            errs.push(rms_error(&ideal, &report_to_map(&report)));
            fracs.push(report.totals.dropped as f64 / report.totals.arrived.max(1) as f64);
            lats.extend(latencies(&report));
        }
        let rms = MeanStd::from_samples(&errs);
        let lat = LatencyStats::from_samples(&lats);
        println!(
            "{:<10} {:>18} {:>11.3} {:>12.3} {:>12.3} {:>12.3}",
            capacity,
            format!("{:8.2} ± {:6.2}", rms.mean, rms.std),
            fracs.iter().sum::<f64>() / fracs.len() as f64,
            lat.p50,
            lat.p95,
            lat.max,
        );
    }
    println!("\n(larger queues trade result latency for fewer drops)");
}
