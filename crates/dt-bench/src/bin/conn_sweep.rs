//! Concurrent-connection sweep over the two ingest planes (ISSUE 9,
//! DESIGN.md §14): accepted-connection and ingest-throughput curves
//! for the thread-per-connection plane vs the readiness-driven event
//! loop, a reactor-pool ablation, a connection-churn point, and the
//! graceful-drain latency with every connection still open.
//!
//! The process fd ceiling (20 000 here) caps how many sockets one
//! process may hold, so load comes from child *worker processes*
//! (`conn_sweep --worker`, spawned from the same binary): each worker
//! opens up to [`WORKER_CONN_CAP`] connections and is driven over
//! stdin/stdout with a four-word protocol — it prints `ready <k>`
//! once connected, waits for `go`, blasts its frame quota round-robin
//! across its connections, prints `sent <n> <nanos>` (or
//! `churned <n> <nanos>` in churn mode), and parks until `quit`. The
//! park matters: the orchestrator times `Server::shutdown()` *while
//! the connections are still open*, which is exactly the drain path
//! the event loop must not serialize behind silent peers.
//!
//! ```sh
//! cargo run --release -p dt-bench --bin conn_sweep            # full
//! cargo run --release -p dt-bench --bin conn_sweep -- --quick # CI
//! ```
//!
//! The committed `CONN_sweep.json` at the repo root is the full
//! sweep's output on a 1-vCPU container.

use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::TcpStream;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dt_bench::write_json;
use dt_obs::MetricsRegistry;
use dt_query::Catalog;
use dt_server::{IngestPlane, Server, ServerConfig};
use dt_types::{json, DataType, Json, MonotonicClock, Schema, ToJson, VDuration};

/// One NDJSON tuple frame; no `ts`, so the server stamps its clock.
const FRAME: &str = "{\"stream\":\"R\",\"row\":[3]}\n";

/// Per-worker connection ceiling, comfortably under the 20 000-fd
/// process limit (the orchestrator holds the server-side twins, so it
/// is the binding side at the 16 k point).
const WORKER_CONN_CAP: usize = 4_000;

/// Frames written per connection visit: small enough that many
/// connections hold readable data at once (the multiplexing under
/// test), large enough to amortize the syscall.
const VISIT_FRAMES: usize = 25;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--worker") {
        worker(&args[1..]);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    sweep(quick);
}

// ----------------------------------------------------------------
// Worker side (child process)
// ----------------------------------------------------------------

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn connect_retry(addr: &str) -> Option<TcpStream> {
    for attempt in 0u64..200 {
        match TcpStream::connect(addr) {
            Ok(s) => return Some(s),
            // Backlog overflow under the connect storm: back off.
            Err(_) => std::thread::sleep(Duration::from_millis(attempt.min(20))),
        }
    }
    None
}

fn await_line(lines: &mut impl Iterator<Item = std::io::Result<String>>, want: &str) {
    match lines.next() {
        Some(Ok(l)) if l.trim() == want => {}
        other => panic!("worker expected {want:?}, got {other:?}"),
    }
}

fn worker(args: &[String]) {
    let addr = flag(args, "--addr").expect("--addr");
    let conns: usize = flag(args, "--conns")
        .expect("--conns")
        .parse()
        .expect("conns");
    let frames: usize = flag(args, "--frames")
        .expect("--frames")
        .parse()
        .expect("frames");
    let churn: usize = flag(args, "--churn")
        .expect("--churn")
        .parse()
        .expect("churn");

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    if churn > 0 {
        writeln!(out, "ready 0").expect("stdout");
        out.flush().expect("flush");
        await_line(&mut lines, "go");
        let t0 = Instant::now();
        let mut done = 0usize;
        for _ in 0..churn {
            if let Some(mut s) = connect_retry(&addr) {
                if s.write_all(FRAME.as_bytes()).is_ok() {
                    done += 1;
                }
                // Half-close, then wait for the server's FIN: the
                // frame is known-consumed before the next connect,
                // and the close is orderly on both sides.
                let _ = s.shutdown(std::net::Shutdown::Write);
                let mut sink = [0u8; 16];
                use std::io::Read;
                while matches!(s.read(&mut sink), Ok(n) if n > 0) {}
            }
        }
        writeln!(out, "churned {done} {}", t0.elapsed().as_nanos()).expect("stdout");
        out.flush().expect("flush");
        await_line(&mut lines, "quit");
        return;
    }

    let mut socks: Vec<TcpStream> = Vec::with_capacity(conns);
    for _ in 0..conns {
        match connect_retry(&addr) {
            Some(s) => socks.push(s),
            None => break,
        }
    }
    writeln!(out, "ready {}", socks.len()).expect("stdout");
    out.flush().expect("flush");
    await_line(&mut lines, "go");

    // Chunked round-robin: every connection gets VISIT_FRAMES per
    // visit until the quota is spent, so readable data piles up on
    // many connections simultaneously. A blocked write is the
    // server's backpressure doing its job — just wait it out.
    let chunk: Vec<u8> = FRAME.as_bytes().repeat(VISIT_FRAMES);
    let t0 = Instant::now();
    let mut sent = 0usize;
    if !socks.is_empty() {
        'quota: loop {
            for s in &mut socks {
                if sent >= frames {
                    break 'quota;
                }
                let take = VISIT_FRAMES.min(frames - sent);
                if s.write_all(&chunk[..take * FRAME.len()]).is_ok() {
                    sent += take;
                }
            }
        }
    }
    writeln!(out, "sent {sent} {}", t0.elapsed().as_nanos()).expect("stdout");
    out.flush().expect("flush");
    // Park with every connection open until the orchestrator has
    // timed the server's drain.
    await_line(&mut lines, "quit");
}

// ----------------------------------------------------------------
// Orchestrator side
// ----------------------------------------------------------------

struct WorkerProc {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl WorkerProc {
    fn spawn(addr: &str, conns: usize, frames: usize, churn: usize) -> WorkerProc {
        let exe = std::env::current_exe().expect("current_exe");
        let mut child = Command::new(exe)
            .args([
                "--worker",
                "--addr",
                addr,
                "--conns",
                &conns.to_string(),
                "--frames",
                &frames.to_string(),
                "--churn",
                &churn.to_string(),
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn worker");
        let stdin = child.stdin.take().expect("worker stdin");
        let stdout = BufReader::new(child.stdout.take().expect("worker stdout"));
        WorkerProc {
            child,
            stdin,
            stdout,
        }
    }

    fn read_report(&mut self, verb: &str) -> (usize, u128) {
        let mut line = String::new();
        self.stdout.read_line(&mut line).expect("worker report");
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some(verb), "worker said {line:?}");
        let n = parts.next().expect("count").parse().expect("count");
        let nanos = parts.next().map_or(0, |p| p.parse().expect("nanos"));
        (n, nanos)
    }

    fn say(&mut self, word: &str) {
        writeln!(self.stdin, "{word}").expect("worker stdin");
        self.stdin.flush().expect("worker stdin flush");
    }

    fn finish(mut self) {
        self.say("quit");
        let _ = self.child.wait();
    }
}

fn server_config(ingest: IngestPlane) -> ServerConfig {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog);
    cfg.window = Some(VDuration::from_secs(1));
    cfg.metrics = MetricsRegistry::new();
    cfg.ingest = ingest;
    cfg
}

struct Point {
    label: String,
    plane: &'static str,
    reactors: usize,
    conns_target: usize,
    conns_accepted: usize,
    frames_sent: usize,
    frames_ingested: u64,
    elapsed_s: f64,
    ingest_fps: f64,
    drain_ms: f64,
}

impl ToJson for Point {
    fn to_json(&self) -> Json {
        json::obj(vec![
            ("label", self.label.to_json()),
            ("plane", self.plane.to_json()),
            ("reactors", self.reactors.to_json()),
            ("conns_target", self.conns_target.to_json()),
            ("conns_accepted", self.conns_accepted.to_json()),
            ("frames_sent", self.frames_sent.to_json()),
            ("frames_ingested", self.frames_ingested.to_json()),
            ("elapsed_s", self.elapsed_s.to_json()),
            ("ingest_fps", self.ingest_fps.to_json()),
            ("drain_ms", self.drain_ms.to_json()),
        ])
    }
}

/// Split `total` across workers of at most [`WORKER_CONN_CAP`].
fn shares(total: usize, cap: usize) -> Vec<usize> {
    let n = total.div_ceil(cap).max(1);
    (0..n)
        .map(|i| total / n + usize::from(i < total % n))
        .collect()
}

fn throughput_point(
    label: &str,
    plane: &'static str,
    ingest: IngestPlane,
    reactors: usize,
    conns: usize,
    frames: usize,
) -> Point {
    let cfg = server_config(ingest);
    let server =
        Server::start(&cfg, Some("127.0.0.1:0"), Arc::new(MonotonicClock::new())).expect("server");
    let addr = server.addr().expect("bound").to_string();

    let conn_shares = shares(conns, WORKER_CONN_CAP);
    let frame_shares = shares(frames, frames.div_ceil(conn_shares.len()));
    let mut workers: Vec<WorkerProc> = conn_shares
        .iter()
        .zip(frame_shares.iter().chain(std::iter::repeat(&0)))
        .map(|(&c, &f)| WorkerProc::spawn(&addr, c, f, 0))
        .collect();

    let mut accepted = 0usize;
    for w in &mut workers {
        accepted += w.read_report("ready").0;
    }

    let t0 = Instant::now();
    for w in &mut workers {
        w.say("go");
    }
    let mut sent = 0usize;
    for w in &mut workers {
        sent += w.read_report("sent").0;
    }
    // The workers' writes may still sit in kernel buffers; the point
    // is done when the *server* has ingested them (or visibly cannot
    // within the cap — the degradation this sweep exists to show).
    let offered = &server.stats().stream(0).offered;
    let cap = Duration::from_secs(120);
    while offered.load(Ordering::SeqCst) < sent as u64 && t0.elapsed() < cap {
        std::thread::sleep(Duration::from_millis(2));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let ingested = offered.load(Ordering::SeqCst);

    // Drain with every connection still open and silent.
    let td = Instant::now();
    let _report = server.shutdown().expect("shutdown");
    let drain_ms = td.elapsed().as_secs_f64() * 1e3;

    for w in workers {
        w.finish();
    }
    let p = Point {
        label: label.to_string(),
        plane,
        reactors,
        conns_target: conns,
        conns_accepted: accepted,
        frames_sent: sent,
        frames_ingested: ingested,
        elapsed_s: elapsed,
        ingest_fps: ingested as f64 / elapsed.max(1e-9),
        drain_ms,
    };
    println!(
        "{:<28} {:>9} {:>6} conns {:>8}/{:<8} frames {:>9.0} fps {:>8.1} ms drain",
        p.label,
        p.plane,
        p.conns_accepted,
        p.frames_ingested,
        p.frames_sent,
        p.ingest_fps,
        p.drain_ms
    );
    p
}

fn churn_point(ingest: IngestPlane, reactors: usize, total: usize, nworkers: usize) -> Point {
    let cfg = server_config(ingest);
    let server =
        Server::start(&cfg, Some("127.0.0.1:0"), Arc::new(MonotonicClock::new())).expect("server");
    let addr = server.addr().expect("bound").to_string();

    let per = total / nworkers;
    let mut workers: Vec<WorkerProc> = (0..nworkers)
        .map(|i| {
            let n = per + usize::from(i < total % nworkers);
            WorkerProc::spawn(&addr, 0, 0, n)
        })
        .collect();
    for w in &mut workers {
        w.read_report("ready");
    }
    let t0 = Instant::now();
    for w in &mut workers {
        w.say("go");
    }
    let mut done = 0usize;
    for w in &mut workers {
        done += w.read_report("churned").0;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let td = Instant::now();
    let _report = server.shutdown().expect("shutdown");
    let drain_ms = td.elapsed().as_secs_f64() * 1e3;
    for w in workers {
        w.finish();
    }
    let p = Point {
        label: format!("churn-{total}"),
        plane: "eventloop",
        reactors,
        conns_target: total,
        conns_accepted: done,
        frames_sent: done,
        frames_ingested: done as u64,
        elapsed_s: elapsed,
        ingest_fps: done as f64 / elapsed.max(1e-9),
        drain_ms,
    };
    println!(
        "{:<28} {:>9} {:>6} conns churned at {:>9.0} conn/s ({:>6.1}s)",
        p.label, p.plane, p.conns_accepted, p.ingest_fps, p.elapsed_s
    );
    p
}

fn sweep(quick: bool) {
    let (small, big, xl, frames, churn_total) = if quick {
        (16, 48, 64, 2_000, 200)
    } else {
        (1_000, 10_000, 16_000, 100_000, 100_000)
    };
    let ev = |r: usize| IngestPlane::EventLoop { reactors: r };

    println!("Concurrent-connection sweep (frames/point: {frames})");
    let mut points = Vec::new();

    // Plane comparison at the small and big connection counts.
    points.push(throughput_point(
        &format!("threaded-{small}"),
        "threaded",
        IngestPlane::Threaded,
        0,
        small,
        frames,
    ));
    points.push(throughput_point(
        &format!("eventloop-{small}"),
        "eventloop",
        ev(2),
        2,
        small,
        frames,
    ));
    points.push(throughput_point(
        &format!("threaded-{big}"),
        "threaded",
        IngestPlane::Threaded,
        0,
        big,
        frames,
    ));
    // Reactor-pool ablation at the big point (r=2 doubles as the
    // event-loop side of the plane comparison).
    for r in [1usize, 2, 4] {
        points.push(throughput_point(
            &format!("eventloop-{big}-r{r}"),
            "eventloop",
            ev(r),
            r,
            big,
            frames,
        ));
    }
    // Beyond the threaded plane's comfort: the event loop at the
    // largest count one process-pair can hold under the fd ceiling.
    points.push(throughput_point(
        &format!("eventloop-{xl}"),
        "eventloop",
        ev(2),
        2,
        xl,
        frames,
    ));
    // Accept-churn: every connection lives for exactly one frame.
    points.push(churn_point(
        ev(2),
        2,
        churn_total,
        if quick { 2 } else { 4 },
    ));

    if let Err(e) = write_json("conn_sweep.json", &points) {
        eprintln!("note: could not write conn_sweep.json: {e}");
    } else {
        println!("(series written to conn_sweep.json)");
    }
}
