//! Figure 9: RMS error vs **peak** data rate under bursty arrivals
//! whose burst data comes from a different distribution than the
//! steady-state data.
//!
//! Expected shape (paper §7.2): the same ordering as Fig. 8 — Data
//! Triage dominates — with visibly larger variance, since burst
//! timing differs run to run. The x-axis is the burst (peak) rate;
//! the base rate is `peak / 100`, 60 % of tuples arrive in bursts of
//! expected length 200, and burst tuples are drawn from a Gaussian
//! with a shifted mean (§6.2.2).
//!
//! ```sh
//! cargo run --release -p dt-bench --bin fig9            # full sweep
//! cargo run --release -p dt-bench --bin fig9 -- --quick # CI-sized
//! ```

use dt_bench::{render_rate_table, write_json};
use dt_metrics::{rate_sweep, SweepConfig};
use dt_workload::WorkloadConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = SweepConfig::paper_default();
    cfg.engine_capacity = 1_000.0;
    // Burst data shifted to mean 20 (base mean 50) — the §6.2.2
    // independent-distributions setting.
    cfg.workload = WorkloadConfig::paper_bursty(100.0, 30_000, 0);
    let peaks: Vec<f64> = if quick {
        cfg.runs = 3;
        cfg.workload.total_tuples = 9_000;
        cfg.tuples_per_window = 450;
        vec![1_000.0, 8_000.0, 32_000.0]
    } else {
        cfg.runs = 9;
        cfg.workload.total_tuples = 30_000;
        cfg.tuples_per_window = 600;
        vec![
            500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0, 12_000.0, 16_000.0, 24_000.0, 32_000.0,
        ]
    };

    let points = rate_sweep(&cfg, &peaks, true).expect("sweep");
    let table = render_rate_table(
        "Figure 9 — RMS error vs peak data rate, bursty arrivals \
         (burst data from a shifted distribution)",
        "peak (t/s)",
        &points,
    );
    println!("{table}");
    if let Err(e) = write_json("fig9.json", &points) {
        eprintln!("note: could not write fig9.json: {e}");
    } else {
        println!("(series written to fig9.json)");
    }
    let svg = dt_bench::svg::render_chart(
        "Figure 9 — RMS error vs peak data rate (bursty)",
        "peak data rate (tuples/sec)",
        "RMS error (lower is better)",
        &dt_bench::svg::rate_points_to_series(&points),
    );
    if let Err(e) = std::fs::write("fig9.svg", svg) {
        eprintln!("note: could not write fig9.svg: {e}");
    } else {
        println!("(chart written to fig9.svg)");
    }
}
