//! The delay-vs-accuracy tradeoff curve: sweep the adaptive
//! controller's [`dt_metrics::delay`] constraint at a fixed overload
//! rate and tabulate RMS error, shed fraction, and window result
//! latency per constraint (DESIGN.md §11).
//!
//! Expected shape: the unconstrained baseline has the best RMS and the
//! worst latency tail; tightening the constraint trades RMS away for a
//! latency bound the controller then honors (zero deadline misses)
//! down to very tight constraints.
//!
//! ```sh
//! cargo run --release -p dt-bench --bin delay_sweep            # full
//! cargo run --release -p dt-bench --bin delay_sweep -- --quick # CI
//! ```
//!
//! The committed `DELAY_sweep.json` at the repo root is the full
//! (non-quick) sweep's output.

use dt_bench::write_json;
use dt_metrics::{delay_sweep, DelayPoint, SweepConfig};

fn render_table(title: &str, points: &[DelayPoint]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(
        "constraint (ms) |        RMS error | shed |  p50 lat |  p99 lat |  max lat | misses\n",
    );
    out.push_str(
        "--------------- | ---------------- | ---- | -------- | -------- | -------- | ------\n",
    );
    for p in points {
        let c = match p.constraint_ms {
            None => "(none)".to_string(),
            Some(ms) => ms.to_string(),
        };
        out.push_str(&format!(
            "{:>15} | {:>7.3} ± {:>6.3} | {:>4.2} | {:>7.4}s | {:>7.4}s | {:>7.4}s | {:>2}/{}\n",
            c,
            p.rms.mean,
            p.rms.std,
            p.drop_fraction,
            p.p50_latency,
            p.p99_latency,
            p.max_latency,
            p.deadline_misses,
            p.windows,
        ));
    }
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = SweepConfig::paper_default();
    cfg.engine_capacity = 1_000.0;
    // Twice the engine capacity: saturated enough that every
    // constraint in the active region must shed, mild enough that the
    // baseline still produces meaningful results.
    let rate = 2_000.0;
    // Thresholds for the constrained points all sit below the total
    // queue bound (3 streams × 100), so each one actually engages the
    // controller; see crate::delay's module docs for why a looser
    // constraint would just replay the baseline.
    let constraints: Vec<Option<u64>> = if quick {
        cfg.runs = 3;
        cfg.workload.total_tuples = 9_000;
        cfg.tuples_per_window = 450;
        vec![None, Some(200), Some(50), Some(20)]
    } else {
        cfg.runs = 9;
        cfg.workload.total_tuples = 30_000;
        cfg.tuples_per_window = 600;
        vec![
            None,
            Some(250),
            Some(200),
            Some(150),
            Some(100),
            Some(50),
            Some(25),
            Some(10),
        ]
    };

    let points = delay_sweep(&cfg, rate, &constraints).expect("delay sweep");
    let table = render_table(
        "Delay constraint sweep — RMS error vs latency bound (rate 2000 t/s, capacity 1000 t/s)",
        &points,
    );
    println!("{table}");
    if let Err(e) = write_json("delay_sweep.json", &points) {
        eprintln!("note: could not write delay_sweep.json: {e}");
    } else {
        println!("(series written to delay_sweep.json)");
    }
}
