//! Shard-count sweep for the per-stream worker group (ISSUE 10,
//! DESIGN.md §15): throughput vs `--shards` 1→8 under uniform,
//! zipfian, and adversarial single-key workloads, with batch
//! work-stealing on and off.
//!
//! **Methodology (1-vCPU honest).** The container that produces the
//! committed artifact has a single vCPU, so wall-clock cannot show
//! parallel speedup. The sweep therefore measures the *critical path*:
//! tuples are routed through the real [`dt_triage::ShardRouter`] /
//! [`dt_triage::ShardQueues`] primitives and folded into real
//! per-shard [`dt_triage::StreamTriage`] instances by a deterministic
//! round-robin scheduler (one batch per shard per round, idle shards
//! stealing exactly as the server's workers do), counting the work
//! units each shard performs. A group's modeled throughput is
//!
//! ```text
//! tuples / (max_shard_units × measured_cost_per_tuple)
//! ```
//!
//! — the time the slowest worker needs, which is what wall-clock
//! becomes on a machine with ≥ `shards` free cores. Per-tuple cost is
//! measured by timing the actual folds. Every run seals through
//! [`dt_triage::merge_sealed`] and asserts conservation, so the sweep
//! doubles as an end-to-end exercise of the sharded seal path.
//!
//! ```sh
//! cargo run --release -p dt-bench --bin shard_sweep            # full
//! cargo run --release -p dt-bench --bin shard_sweep -- --quick # CI
//! ```
//!
//! The committed `SHARD_sweep.json` at the repo root is the full
//! sweep's output on the 1-vCPU container.

use std::time::Instant;

use dt_bench::write_json;
use dt_synopsis::SynopsisConfig;
use dt_triage::{merge_sealed, SealedWindow, ShardQueues, ShardRouter, ShedMode, StreamTriage};
use dt_types::{json, Json, Row, Timestamp, ToJson, Tuple, VDuration, WindowSpec};

/// Tuples a worker folds per scheduler visit — the same batched-drain
/// shape the server's workers use.
const BATCH: usize = 64;

/// splitmix64 — the deterministic generator for workload draws.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The three group-key workloads of DESIGN.md §15.
#[derive(Clone, Copy)]
enum Workload {
    /// Keys uniform over 64 groups — keyed routing spreads evenly.
    Uniform,
    /// Zipf(s≈1.3) over 64 groups — a handful of hot keys pile most
    /// of the work onto few shards.
    Zipfian,
    /// One single key — everything routes to one shard; only
    /// stealing can spread the work.
    SingleKey,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Uniform => "uniform",
            Workload::Zipfian => "zipfian",
            Workload::SingleKey => "single-key",
        }
    }

    /// The group key of tuple `i` under this workload.
    fn key(self, i: u64, zipf_cdf: &[f64]) -> i64 {
        match self {
            Workload::Uniform => (mix64(i) % 64) as i64,
            Workload::Zipfian => {
                let u = (mix64(i ^ 0x5A1F_5A1F) >> 11) as f64 / (1u64 << 53) as f64;
                zipf_cdf.partition_point(|&c| c < u) as i64
            }
            Workload::SingleKey => 42,
        }
    }
}

/// Cumulative Zipf(s) weights over `n` ranks.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

struct Point {
    workload: &'static str,
    shards: usize,
    steal: bool,
    tuples: u64,
    max_shard_units: u64,
    steal_batches: u64,
    stolen_items: u64,
    cost_ns_per_tuple: f64,
    throughput_tps: f64,
    speedup_vs_1: f64,
    windows: usize,
    rows_out: u64,
}

impl ToJson for Point {
    fn to_json(&self) -> Json {
        json::obj(vec![
            ("workload", self.workload.to_json()),
            ("shards", self.shards.to_json()),
            ("steal", self.steal.to_json()),
            ("tuples", self.tuples.to_json()),
            ("max_shard_units", self.max_shard_units.to_json()),
            ("steal_batches", self.steal_batches.to_json()),
            ("stolen_items", self.stolen_items.to_json()),
            ("cost_ns_per_tuple", self.cost_ns_per_tuple.to_json()),
            ("throughput_tps", self.throughput_tps.to_json()),
            ("speedup_vs_1", self.speedup_vs_1.to_json()),
            ("windows", self.windows.to_json()),
            ("rows_out", self.rows_out.to_json()),
        ])
    }
}

/// Run one (workload, shards, steal) cell: route all tuples, drive
/// the round-robin scheduler, seal and merge, return the critical
/// path. `cost_ns` is filled with the measured per-tuple fold cost.
fn run_cell(workload: Workload, shards: usize, steal: bool, n: u64, cdf: &[f64]) -> Point {
    let spec = WindowSpec::new(VDuration::from_secs(1)).expect("spec");
    let synopsis = SynopsisConfig::Sparse { cell_width: 5 };
    let router = ShardRouter::new(shards, Some(0));
    let queues: ShardQueues<(Tuple, u64)> = ShardQueues::new(shards, n as usize + 1);
    let mut triages: Vec<StreamTriage> = (0..shards)
        .map(|k| StreamTriage::new(0, 1, ShedMode::DataTriage, synopsis, spec).sharded(k))
        .collect();

    // Route the whole trace up front (~100 windows of arrivals).
    for i in 0..n {
        let t = Tuple::new(
            Row::from_ints(&[workload.key(i, cdf)]),
            Timestamp::from_micros(i * 10),
        );
        let shard = router.route(&t.row);
        assert!(queues.push(shard, (t, i)).is_ok(), "sized for the trace");
    }

    // Deterministic round-robin schedule, one BATCH of work per shard
    // per round — a round models one concurrent time slice across the
    // group. A shard drains its stolen backlog first, then its own
    // queue; only when both are empty does it steal the newest half of
    // the deepest sibling, which lands in its backlog and is folded
    // BATCH per round like any other work. (A thief that folded a huge
    // stolen batch "instantly" would understate the time it spends on
    // it and re-steal work that, on real cores, its siblings would
    // have taken.)
    let mut units = vec![0u64; shards];
    let mut backlog: Vec<std::collections::VecDeque<(Tuple, u64)>> = (0..shards)
        .map(|_| std::collections::VecDeque::new())
        .collect();
    let mut batch: Vec<(Tuple, u64)> = Vec::with_capacity(BATCH);
    let t0 = Instant::now();
    loop {
        let mut moved = false;
        for (k, triage) in triages.iter_mut().enumerate() {
            batch.clear();
            while batch.len() < BATCH {
                match backlog[k].pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            while batch.len() < BATCH {
                match queues.pop(k) {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if batch.is_empty() && steal {
                backlog[k] = queues.steal(k, |_| true).into();
                while batch.len() < BATCH {
                    match backlog[k].pop_front() {
                        Some(item) => batch.push(item),
                        None => break,
                    }
                }
            }
            if !batch.is_empty() {
                units[k] += batch.len() as u64;
                triage.keep_batch_seq(&batch).expect("fold batch");
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    let fold_ns = t0.elapsed().as_nanos() as f64;
    let cost_ns = fold_ns / n as f64;

    // Seal every shard through the group maximum and merge.
    let last = triages
        .iter()
        .filter_map(StreamTriage::max_open)
        .max()
        .expect("non-empty trace");
    let mut per_shard: Vec<Vec<SealedWindow>> = Vec::with_capacity(shards);
    for t in &mut triages {
        per_shard.push(t.seal_through(last).expect("seal"));
    }
    let n_windows = per_shard[0].len();
    let mut iters: Vec<_> = per_shard.into_iter().map(Vec::into_iter).collect();
    let mut rows_out = 0u64;
    for _ in 0..n_windows {
        let parts: Vec<SealedWindow> = iters
            .iter_mut()
            .map(|it| it.next().expect("sized"))
            .collect();
        let merged = merge_sealed(parts).expect("merge");
        rows_out += merged.rows.len() as u64;
    }
    assert_eq!(
        rows_out, n,
        "conservation: every tuple in exactly one window"
    );
    assert_eq!(
        units.iter().sum::<u64>(),
        n,
        "every tuple folded exactly once"
    );

    let max_units = *units.iter().max().expect("shards >= 1");
    Point {
        workload: workload.name(),
        shards,
        steal,
        tuples: n,
        max_shard_units: max_units,
        steal_batches: queues.steal_count(),
        stolen_items: queues.stolen_items(),
        cost_ns_per_tuple: cost_ns,
        throughput_tps: n as f64 * 1e9 / (cost_ns * max_units as f64),
        speedup_vs_1: n as f64 / max_units as f64,
        windows: n_windows,
        rows_out,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, shard_counts): (u64, Vec<usize>) = if quick {
        (20_000, vec![1, 2, 4])
    } else {
        (200_000, vec![1, 2, 3, 4, 6, 8])
    };
    let cdf = zipf_cdf(64, 1.3);
    let workloads = [Workload::Uniform, Workload::Zipfian, Workload::SingleKey];

    println!("Shard sweep ({n} tuples/cell; modeled critical-path throughput, see DESIGN.md §15)");
    println!(
        "{:<12} {:>6} {:>6} {:>12} {:>9} {:>12} {:>9}",
        "workload", "shards", "steal", "max-units", "speedup", "tput(t/s)", "steals"
    );
    let mut points = Vec::new();
    for &w in &workloads {
        for &k in &shard_counts {
            for steal in [false, true] {
                if k == 1 && steal {
                    continue; // nothing to steal from
                }
                let p = run_cell(w, k, steal, n, &cdf);
                println!(
                    "{:<12} {:>6} {:>6} {:>12} {:>8.2}x {:>12.0} {:>9}",
                    p.workload,
                    p.shards,
                    if p.steal { "on" } else { "off" },
                    p.max_shard_units,
                    p.speedup_vs_1,
                    p.throughput_tps,
                    p.steal_batches
                );
                points.push(p);
            }
        }
    }

    // The headline acceptance point: 4 shards with stealing on the
    // zipfian workload must at least double the single-worker
    // critical-path throughput.
    let headline = points
        .iter()
        .find(|p| p.workload == "zipfian" && p.shards == 4 && p.steal)
        .expect("zipfian x4 steal cell");
    println!(
        "\nzipfian @4 shards (steal on): {:.2}x the single-worker critical path",
        headline.speedup_vs_1
    );
    assert!(
        headline.speedup_vs_1 >= 2.0,
        "expected >=2x at 4 shards on zipfian, got {:.2}x",
        headline.speedup_vs_1
    );

    if let Err(e) = write_json("SHARD_sweep.json", &points) {
        eprintln!("note: could not write SHARD_sweep.json: {e}");
    } else {
        println!("(series written to SHARD_sweep.json)");
    }
}
