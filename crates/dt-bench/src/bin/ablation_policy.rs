//! Ablation A2: victim-selection (drop) policies.
//!
//! The paper's build uses random victims; §8.1 sketches smarter
//! policies, including the "synergistic" one that prefers victims the
//! synopsis absorbs at zero marginal memory cost. This ablation runs
//! the bursty mid-overload point under each policy.
//!
//! ```sh
//! cargo run --release -p dt-bench --bin ablation_policy
//! ```

use dt_metrics::{rate_sweep, SweepConfig};
use dt_triage::{DropPolicy, ShedMode};
use dt_workload::WorkloadConfig;

fn main() {
    println!("# Ablation A2 — drop policy, bursty workload (peak 8000, capacity 1000)");
    println!(
        "{:<14} {:>18} {:>12}",
        "policy", "RMS (mean±std)", "drop-frac"
    );
    for policy in DropPolicy::all() {
        let mut sweep = SweepConfig::paper_default();
        sweep.runs = 5;
        sweep.workload = WorkloadConfig::paper_bursty(80.0, 15_000, 0);
        sweep.tuples_per_window = 600;
        sweep.engine_capacity = 1_000.0;
        sweep.policy = policy;
        sweep.modes = vec![ShedMode::DataTriage];
        let points = rate_sweep(&sweep, &[8_000.0], true).expect("sweep");
        let m = &points[0].modes[0];
        println!(
            "{:<14} {:>18} {:>12.3}",
            policy.label(),
            format!("{:8.2} ± {:6.2}", m.rms.mean, m.rms.std),
            m.drop_fraction
        );
    }
    println!("\n(random is the paper's default; synergistic is the §8.1 proposal)");
}
