//! Ablation A1: synopsis structure.
//!
//! Runs the Fig. 8 mid-overload point (2× capacity, where shedding is
//! heavy but the exact channel still matters) with each synopsis
//! structure, reporting RMS error, shadow-query evaluation cost (as a
//! proxy: total wall time of the run), and synopsis memory. This is
//! the experiment behind the paper's §8.1 "more advanced synopsis"
//! discussion: accuracy per byte vs manipulation cost.
//!
//! ```sh
//! cargo run --release -p dt-bench --bin ablation_synopsis
//! ```

use std::time::Instant;

use dt_metrics::{rate_sweep, SweepConfig};
use dt_synopsis::SynopsisConfig;
use dt_triage::ShedMode;

fn main() {
    let variants: Vec<SynopsisConfig> = vec![
        SynopsisConfig::Sparse { cell_width: 10 },
        SynopsisConfig::Sparse { cell_width: 5 },
        SynopsisConfig::MHist {
            max_buckets: 32,
            alignment: None,
        },
        SynopsisConfig::MHist {
            max_buckets: 32,
            alignment: Some(10),
        },
        SynopsisConfig::Reservoir {
            capacity: 100,
            seed: 0,
        },
        SynopsisConfig::Reservoir {
            capacity: 400,
            seed: 0,
        },
        SynopsisConfig::Wavelet {
            budget: 16,
            domain: 128,
        },
        SynopsisConfig::Wavelet {
            budget: 64,
            domain: 128,
        },
        SynopsisConfig::AdaptiveSparse {
            base_width: 1,
            max_cells: 50,
        },
    ];

    println!("# Ablation A1 — synopsis structure at 2x overload (rate 2000, capacity 1000)");
    println!(
        "{:<26} {:>16} {:>16} {:>12}",
        "synopsis", "RMS (mean±std)", "vs drop-only", "wall time"
    );
    for cfg in variants {
        let mut sweep = SweepConfig::paper_default();
        sweep.runs = 5;
        sweep.workload.total_tuples = 15_000;
        sweep.tuples_per_window = 600;
        sweep.engine_capacity = 1_000.0;
        sweep.synopsis = cfg;
        sweep.modes = vec![ShedMode::DataTriage, ShedMode::DropOnly];
        let start = Instant::now();
        let points = rate_sweep(&sweep, &[2_000.0], false).expect("sweep");
        let elapsed = start.elapsed();
        let dt = &points[0].modes[0];
        let dr = &points[0].modes[1];
        println!(
            "{:<26} {:>16} {:>15.1}% {:>10.2} s",
            cfg.label(),
            format!("{:7.2} ± {:5.2}", dt.rms.mean, dt.rms.std),
            100.0 * dt.rms.mean / dr.rms.mean,
            elapsed.as_secs_f64()
        );
    }
    println!("\n(lower RMS and lower wall time are better; 'vs drop-only' < 100% means");
    println!(" the synopsis recovers signal that dropping loses)");
}
