//! Ablation A5: burst length.
//!
//! Fig. 9 fixes the expected burst length at 200 tuples. This sweep
//! varies it at constant peak rate and constant burst fraction: short
//! bursts are absorbed by the triage queue (few drops), long bursts
//! overwhelm it and force the synopsis path to carry the burst's
//! signal. The queue capacity (100) sets the knee.
//!
//! ```sh
//! cargo run --release -p dt-bench --bin ablation_burstlen
//! ```

use dt_metrics::SweepConfig;
use dt_triage::ShedMode;
use dt_workload::{ArrivalModel, WorkloadConfig};

fn main() {
    println!(
        "# Ablation A5 — mean burst length at fixed peak rate (8000 t/s, capacity 1000, queue 100)"
    );
    println!(
        "{:<12} {:>22} {:>22} {:>11}",
        "burst len", "triage RMS", "drop-only RMS", "drop-frac"
    );
    for mean_burst_len in [25.0, 50.0, 100.0, 200.0, 400.0, 800.0] {
        let mut sweep = SweepConfig::paper_default();
        sweep.runs = 5;
        sweep.workload = WorkloadConfig::paper_bursty(80.0, 15_000, 0);
        sweep.workload.arrival = ArrivalModel::Bursty {
            base_rate: 80.0,
            burst_multiplier: 100.0,
            burst_fraction: 0.6,
            mean_burst_len,
        };
        sweep.tuples_per_window = 600;
        sweep.engine_capacity = 1_000.0;
        sweep.modes = vec![ShedMode::DataTriage, ShedMode::DropOnly];
        // `rate_sweep(bursty = true)` overrides the arrival model from
        // the peak rate, so sweep manually through the workload field:
        // run one "rate point" whose model we already fixed above.
        let points = rate_sweep_fixed(&sweep).expect("sweep");
        let dt = &points[0];
        let dr = &points[1];
        println!(
            "{:<12} {:>22} {:>22} {:>11.3}",
            mean_burst_len,
            format!("{:9.2} ± {:7.2}", dt.0, dt.1),
            format!("{:9.2} ± {:7.2}", dr.0, dr.1),
            dt.2,
        );
    }
    println!("\n(queue capacity 100: bursts shorter than ~100 tuples are absorbed;");
    println!(" beyond that, accuracy rests on the synopsis path)");
}

/// Like `dt_metrics::rate_sweep` but honouring the workload's own
/// arrival model instead of deriving one from a rate axis. Returns
/// `(mean, std, drop_fraction)` per mode.
fn rate_sweep_fixed(cfg: &SweepConfig) -> dt_types::DtResult<Vec<(f64, f64, f64)>> {
    use dt_engine::CostModel;
    use dt_metrics::{ideal_map, report_to_map, rms_error, MeanStd};
    use dt_query::{parse_select, Planner};
    use dt_triage::{Pipeline, PipelineConfig};
    use dt_types::{VDuration, WindowSpec};
    use dt_workload::generate;

    let mean_rate = cfg.workload.arrival.mean_rate();
    let width = VDuration::from_secs_f64(cfg.tuples_per_window as f64 / mean_rate);
    let mut out = Vec::new();
    let mut per_mode: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); cfg.modes.len()];
    for run in 0..cfg.runs {
        let seed = run as u64 + 1;
        let workload = dt_workload::WorkloadConfig {
            seed,
            ..cfg.workload.clone()
        };
        let arrivals = generate(&workload)?;
        let mk_plan = || -> dt_types::DtResult<dt_query::QueryPlan> {
            let mut plan = Planner::new(&cfg.catalog).plan(&parse_select(&cfg.sql)?)?;
            let spec = WindowSpec::new(width)?;
            for s in &mut plan.streams {
                s.window = spec;
            }
            Ok(plan)
        };
        let ideal = ideal_map(&mk_plan()?, &arrivals)?;
        for (mi, &mode) in cfg.modes.iter().enumerate() {
            let mut pcfg = PipelineConfig::new(mode);
            pcfg.policy = cfg.policy;
            pcfg.queue_capacity = cfg.queue_capacity;
            pcfg.cost = CostModel::from_capacity(cfg.engine_capacity)?;
            pcfg.synopsis = cfg.synopsis;
            pcfg.seed = seed;
            let report = Pipeline::run(mk_plan()?, pcfg, arrivals.iter().cloned())?;
            per_mode[mi]
                .0
                .push(rms_error(&ideal, &report_to_map(&report)));
            per_mode[mi]
                .1
                .push(report.totals.dropped as f64 / report.totals.arrived.max(1) as f64);
        }
    }
    for (errs, fracs) in per_mode {
        let m = MeanStd::from_samples(&errs);
        out.push((
            m.mean,
            m.std,
            fracs.iter().sum::<f64>() / fracs.len() as f64,
        ));
    }
    Ok(out)
}
