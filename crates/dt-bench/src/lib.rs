//! Shared helpers for the figure-regeneration binaries and Criterion
//! benches.
//!
//! Each binary in `src/bin/` regenerates one evaluation artifact of
//! the paper (see `DESIGN.md` §4 for the experiment index):
//!
//! * `fig6`  — shadow-query overhead microbenchmark (paper Fig. 6);
//! * `fig8`  — RMS error vs constant data rate (paper Fig. 8);
//! * `fig9`  — RMS error vs peak data rate, bursty arrivals (Fig. 9);
//! * `ablation_synopsis` / `ablation_policy` / `ablation_cellwidth` /
//!   `ablation_queue` / `ablation_burstlen` — the A1–A5 design-choice
//!   ablations. Figure binaries also emit `figN.json` (machine
//!   readable) and `figN.svg` (chart, via [`svg`]).

pub mod svg;

use dt_metrics::RatePoint;

/// Render one figure's data series as an aligned text table (one row
/// per rate, one column per mode: `mean ± std`). When the first mode
/// (data-triage in the paper's figures) beats *every* other mode by a
/// Welch-t-significant margin, the row is marked `**`; `*` marks
/// beating at least one.
pub fn render_rate_table(title: &str, xlabel: &str, points: &[RatePoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    if points.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let mode_names: Vec<&str> = points[0].modes.iter().map(|m| m.mode.as_str()).collect();
    out.push_str(&format!("{:>12}", xlabel));
    for m in &mode_names {
        out.push_str(&format!("  {:>24}", m));
    }
    out.push_str(&format!("  {:>10}  {:>4}\n", "drop-frac", "sig"));
    for p in points {
        out.push_str(&format!("{:>12.0}", p.rate));
        for m in &p.modes {
            out.push_str(&format!(
                "  {:>24}",
                format!("{:10.2} ± {:8.2}", m.rms.mean, m.rms.std)
            ));
        }
        let first = &p.modes[0];
        let beaten = p.modes[1..]
            .iter()
            .filter(|m| match &m.diff_vs_first {
                // Paired per-run differences (shared arrivals): the
                // sensitive test.
                Some(d) => d.significantly_positive(),
                None => first.rms.significantly_less(&m.rms),
            })
            .count();
        let marker = if p.modes.len() > 1 && beaten == p.modes.len() - 1 {
            "**"
        } else if beaten > 0 {
            "*"
        } else {
            ""
        };
        // Drop fraction of the *first* mode (data-triage by default).
        out.push_str(&format!(
            "  {:>10.3}  {:>4}\n",
            p.modes[0].drop_fraction, marker
        ));
    }
    if points[0].modes.len() > 1 {
        out.push_str(&format!(
            "\n('**' = {} significantly better than every other mode, Welch t < -2;\n\
             \x20'*' = better than at least one)\n",
            mode_names[0]
        ));
    }
    out
}

/// Write an experiment's JSON record next to the text output so
/// EXPERIMENTS.md can reference machine-readable results.
pub fn write_json(path: &str, value: &impl dt_types::ToJson) -> std::io::Result<()> {
    std::fs::write(path, value.to_json().render_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_metrics::{MeanStd, ModeSeries};

    #[test]
    fn table_renders_all_modes() {
        let points = vec![RatePoint {
            rate: 100.0,
            modes: vec![
                ModeSeries {
                    mode: "data-triage".into(),
                    rms: MeanStd::from_samples(&[1.0, 2.0]),
                    drop_fraction: 0.5,
                    diff_vs_first: None,
                },
                ModeSeries {
                    mode: "drop-only".into(),
                    rms: MeanStd::from_samples(&[3.0]),
                    drop_fraction: 0.5,
                    diff_vs_first: Some(MeanStd::from_samples(&[1.5, 1.4, 1.6])),
                },
            ],
        }];
        let t = render_rate_table("Fig 8", "rate", &points);
        assert!(t.contains("data-triage"));
        assert!(t.contains("drop-only"));
        assert!(t.contains("100"));
        assert!(t.contains("±"));
    }

    #[test]
    fn empty_points_render_placeholder() {
        assert!(render_rate_table("x", "rate", &[]).contains("no data"));
    }
}
