//! Time windows.
//!
//! TelegraphCQ queries attach a window clause to each stream, e.g.
//! `WINDOW R['1 second']`. The paper's experiments use windows whose
//! results are grouped *by window number*: tumbling (non-overlapping)
//! partitions of the time axis, with the window width scaled to the
//! data rate so each window holds a constant expected number of tuples
//! (paper §6.2.2).
//!
//! [`WindowSpec`] generalizes this to **hopping** windows: window `w`
//! covers `[w·slide, w·slide + width)`, so with `slide < width`
//! consecutive windows overlap and one tuple contributes to
//! `⌈width/slide⌉` windows (TelegraphCQ's sliding-window semantics at
//! a fixed hop granularity). `slide == width` — the default — recovers
//! tumbling windows.

use crate::error::{DtError, DtResult};
use crate::time::{Timestamp, VDuration};

/// The ordinal of a window: window `w` covers virtual time
/// `[w · slide, w · slide + width)`.
pub type WindowId = u64;

/// A (possibly hopping) time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowSpec {
    width: VDuration,
    slide: VDuration,
}

impl WindowSpec {
    /// A tumbling window (`slide == width`). Errors if the width is
    /// zero.
    pub fn new(width: VDuration) -> DtResult<Self> {
        Self::hopping(width, width)
    }

    /// A hopping window advancing by `slide`. Errors if either span is
    /// zero or if `slide > width` (gaps would silently lose tuples).
    pub fn hopping(width: VDuration, slide: VDuration) -> DtResult<Self> {
        if width.is_zero() || slide.is_zero() {
            return Err(DtError::config("window width and slide must be positive"));
        }
        if slide > width {
            return Err(DtError::config(
                "window slide must not exceed the width (gapped windows lose tuples)",
            ));
        }
        Ok(WindowSpec { width, slide })
    }

    /// A tumbling window of the given whole-second width.
    pub fn seconds(s: u64) -> DtResult<Self> {
        Self::new(VDuration::from_secs(s))
    }

    /// The window width.
    pub fn width(&self) -> VDuration {
        self.width
    }

    /// The hop between consecutive window starts.
    pub fn slide(&self) -> VDuration {
        self.slide
    }

    /// True if windows tile the axis without overlap.
    pub fn is_tumbling(&self) -> bool {
        self.slide == self.width
    }

    /// The *latest* window containing `ts` (for tumbling windows, the
    /// unique one).
    pub fn window_of(&self, ts: Timestamp) -> WindowId {
        ts.micros() / self.slide.micros()
    }

    /// All windows containing `ts`, oldest first. For tumbling windows
    /// this yields exactly one id.
    pub fn windows_of(&self, ts: Timestamp) -> impl Iterator<Item = WindowId> {
        let latest = self.window_of(ts);
        // Window w contains ts iff w·slide ≤ ts (⇒ w ≤ latest) and
        // ts < w·slide + width (⇒ w·slide > ts − width, i.e.
        // w ≥ ⌊(ts − width)/slide⌋ + 1 for ts ≥ width; else w ≥ 0).
        let oldest = if ts.micros() < self.width.micros() {
            0
        } else {
            (ts.micros() - self.width.micros()) / self.slide.micros() + 1
        };
        oldest..=latest
    }

    /// Start of window `w`.
    pub fn window_start(&self, w: WindowId) -> Timestamp {
        Timestamp::from_micros(w * self.slide.micros())
    }

    /// Exclusive end of window `w`.
    pub fn window_end(&self, w: WindowId) -> Timestamp {
        Timestamp::from_micros(w * self.slide.micros() + self.width.micros())
    }

    /// True if `ts` falls inside window `w`.
    pub fn contains(&self, w: WindowId, ts: Timestamp) -> bool {
        ts >= self.window_start(w) && ts < self.window_end(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_width_rejected() {
        assert!(WindowSpec::new(VDuration::ZERO).is_err());
    }

    #[test]
    fn window_of_partitions_time() {
        let w = WindowSpec::seconds(1).unwrap();
        assert_eq!(w.window_of(Timestamp::from_micros(0)), 0);
        assert_eq!(w.window_of(Timestamp::from_micros(999_999)), 0);
        assert_eq!(w.window_of(Timestamp::from_micros(1_000_000)), 1);
        assert_eq!(w.window_of(Timestamp::from_secs(10)), 10);
    }

    #[test]
    fn window_bounds() {
        let w = WindowSpec::new(VDuration::from_millis(250)).unwrap();
        assert_eq!(w.window_start(4), Timestamp::from_secs(1));
        assert_eq!(w.window_end(4), Timestamp::from_micros(1_250_000));
        assert!(w.contains(4, Timestamp::from_micros(1_100_000)));
        assert!(!w.contains(4, Timestamp::from_micros(1_250_000)));
    }

    #[test]
    fn hopping_rejects_bad_configs() {
        let w = VDuration::from_secs(4);
        assert!(WindowSpec::hopping(w, VDuration::ZERO).is_err());
        assert!(WindowSpec::hopping(VDuration::ZERO, w).is_err());
        // Gapped windows (slide > width) are rejected.
        assert!(WindowSpec::hopping(VDuration::from_secs(1), VDuration::from_secs(2)).is_err());
        assert!(WindowSpec::hopping(w, w).unwrap().is_tumbling());
    }

    #[test]
    fn hopping_windows_overlap() {
        // width 4s, slide 1s: every tuple is in 4 windows.
        let spec = WindowSpec::hopping(VDuration::from_secs(4), VDuration::from_secs(1)).unwrap();
        assert!(!spec.is_tumbling());
        let ws: Vec<WindowId> = spec.windows_of(Timestamp::from_secs(10)).collect();
        assert_eq!(ws, vec![7, 8, 9, 10]);
        for &w in &ws {
            assert!(spec.contains(w, Timestamp::from_secs(10)));
        }
        // The window just before the range excludes it (end exclusive).
        assert!(!spec.contains(6, Timestamp::from_secs(10)));
        assert!(!spec.contains(11, Timestamp::from_secs(10)));
    }

    #[test]
    fn hopping_near_origin_clips() {
        let spec = WindowSpec::hopping(VDuration::from_secs(4), VDuration::from_secs(1)).unwrap();
        let ws: Vec<WindowId> = spec.windows_of(Timestamp::from_secs(2)).collect();
        assert_eq!(ws, vec![0, 1, 2]);
        let ws: Vec<WindowId> = spec.windows_of(Timestamp::ZERO).collect();
        assert_eq!(ws, vec![0]);
    }

    #[test]
    fn tumbling_windows_of_is_singleton() {
        let spec = WindowSpec::seconds(2).unwrap();
        for us in [0u64, 1, 1_999_999, 2_000_000, 7_654_321] {
            let ts = Timestamp::from_micros(us);
            let ws: Vec<WindowId> = spec.windows_of(ts).collect();
            assert_eq!(ws, vec![spec.window_of(ts)], "ts {us}");
        }
    }

    #[test]
    fn hopping_bounds() {
        let spec = WindowSpec::hopping(VDuration::from_secs(3), VDuration::from_secs(1)).unwrap();
        assert_eq!(spec.window_start(5), Timestamp::from_secs(5));
        assert_eq!(spec.window_end(5), Timestamp::from_secs(8));
        assert_eq!(spec.width(), VDuration::from_secs(3));
        assert_eq!(spec.slide(), VDuration::from_secs(1));
    }

    #[test]
    fn boundaries_belong_to_next_window() {
        let w = WindowSpec::seconds(2).unwrap();
        assert_eq!(w.window_of(w.window_end(0)), 1);
        assert_eq!(w.window_of(w.window_start(3)), 3);
    }
}
