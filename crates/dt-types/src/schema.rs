//! Stream schemas and column resolution.

use std::fmt;

use crate::error::{DtError, DtResult};

/// The static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INTEGER"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "TEXT"),
            DataType::Bool => write!(f, "BOOLEAN"),
        }
    }
}

/// A named, typed column, optionally qualified with the stream it came
/// from (`R.a` has `qualifier == Some("R")`, `name == "a"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Stream or alias qualifier, if any.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

impl Field {
    /// An unqualified field.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Field {
            qualifier: None,
            name: name.into(),
            ty,
        }
    }

    /// A field qualified by its source stream.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>, ty: DataType) -> Self {
        Field {
            qualifier: Some(qualifier.into()),
            name: name.into(),
            ty,
        }
    }

    /// `R.a` or bare `a`.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Does this field answer to the given (optionally qualified) name?
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if self.name != name {
            return false;
        }
        match (qualifier, &self.qualifier) {
            (None, _) => true,
            (Some(q), Some(fq)) => q == fq,
            (Some(_), None) => false,
        }
    }
}

/// An ordered list of fields describing the rows of a stream or an
/// intermediate relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Convenience: unqualified fields from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            fields: pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect(),
        }
    }

    /// The empty schema.
    pub fn empty() -> Self {
        Schema { fields: vec![] }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// True if there are no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at a position.
    pub fn field(&self, idx: usize) -> Option<&Field> {
        self.fields.get(idx)
    }

    /// Resolve an optionally qualified column name to its index.
    ///
    /// Errors if the name is unknown or ambiguous (matches more than
    /// one field, e.g. bare `a` when both `R.a` and `S.a` exist).
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> DtResult<usize> {
        let mut found = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(qualifier, name) {
                if found.is_some() {
                    return Err(DtError::schema(format!(
                        "ambiguous column reference '{}{}{}'",
                        qualifier.unwrap_or(""),
                        if qualifier.is_some() { "." } else { "" },
                        name
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            DtError::schema(format!(
                "unknown column '{}{}{}'",
                qualifier.unwrap_or(""),
                if qualifier.is_some() { "." } else { "" },
                name
            ))
        })
    }

    /// Resolve a dotted name like `"R.a"` or a bare name like `"a"`.
    pub fn resolve_dotted(&self, dotted: &str) -> DtResult<usize> {
        match dotted.split_once('.') {
            Some((q, n)) => self.resolve(Some(q), n),
            None => self.resolve(None, dotted),
        }
    }

    /// Schema of `self × other` (concatenated columns).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Schema of a projection onto the given column indices.
    ///
    /// Errors if any index is out of range.
    pub fn project(&self, indices: &[usize]) -> DtResult<Schema> {
        let mut fields = Vec::with_capacity(indices.len());
        for &i in indices {
            let f = self.fields.get(i).ok_or_else(|| {
                DtError::schema(format!(
                    "projection index {i} out of range for arity {}",
                    self.arity()
                ))
            })?;
            fields.push(f.clone());
        }
        Ok(Schema { fields })
    }

    /// Re-qualify every field with the given stream alias (used when a
    /// stream appears in a FROM clause under an alias).
    pub fn with_qualifier(&self, qualifier: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| Field {
                    qualifier: Some(qualifier.to_string()),
                    name: f.name.clone(),
                    ty: f.ty,
                })
                .collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", field.qualified_name(), field.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs_schema() -> Schema {
        Schema::new(vec![
            Field::qualified("R", "a", DataType::Int),
            Field::qualified("S", "a", DataType::Int),
            Field::qualified("S", "b", DataType::Float),
        ])
    }

    #[test]
    fn resolve_qualified() {
        let s = rs_schema();
        assert_eq!(s.resolve(Some("R"), "a").unwrap(), 0);
        assert_eq!(s.resolve(Some("S"), "a").unwrap(), 1);
        assert_eq!(s.resolve(Some("S"), "b").unwrap(), 2);
    }

    #[test]
    fn resolve_bare_unique() {
        let s = rs_schema();
        assert_eq!(s.resolve(None, "b").unwrap(), 2);
    }

    #[test]
    fn resolve_bare_ambiguous_errors() {
        let s = rs_schema();
        let err = s.resolve(None, "a").unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    #[test]
    fn resolve_unknown_errors() {
        let s = rs_schema();
        assert!(s.resolve(None, "zzz").is_err());
        assert!(s.resolve(Some("T"), "a").is_err());
    }

    #[test]
    fn resolve_dotted() {
        let s = rs_schema();
        assert_eq!(s.resolve_dotted("R.a").unwrap(), 0);
        assert_eq!(s.resolve_dotted("b").unwrap(), 2);
    }

    #[test]
    fn concat_and_project() {
        let r = Schema::from_pairs(&[("a", DataType::Int)]).with_qualifier("R");
        let s = Schema::from_pairs(&[("b", DataType::Int)]).with_qualifier("S");
        let both = r.concat(&s);
        assert_eq!(both.arity(), 2);
        assert_eq!(both.field(1).unwrap().qualified_name(), "S.b");
        let proj = both.project(&[1]).unwrap();
        assert_eq!(proj.arity(), 1);
        assert_eq!(proj.field(0).unwrap().name, "b");
        assert!(both.project(&[5]).is_err());
    }

    #[test]
    fn with_qualifier_replaces() {
        let s = Schema::from_pairs(&[("x", DataType::Str)]);
        let q = s.with_qualifier("W");
        assert_eq!(q.field(0).unwrap().qualified_name(), "W.x");
    }

    #[test]
    fn display() {
        let s = rs_schema();
        assert_eq!(s.to_string(), "(R.a INTEGER, S.a INTEGER, S.b FLOAT)");
    }

    #[test]
    fn field_matches() {
        let f = Field::qualified("R", "a", DataType::Int);
        assert!(f.matches(None, "a"));
        assert!(f.matches(Some("R"), "a"));
        assert!(!f.matches(Some("S"), "a"));
        assert!(!f.matches(None, "b"));
        let bare = Field::new("a", DataType::Int);
        assert!(!bare.matches(Some("R"), "a"));
    }
}
