//! Wall-clock abstraction for the streaming runtime.
//!
//! The simulation pipeline runs entirely on virtual time derived from
//! tuple timestamps, but a *server* has to pace window sealing and
//! trace replay against a real clock. [`Clock`] is that boundary: the
//! production implementation ([`MonotonicClock`]) reads the OS
//! monotonic clock, while tests drive a [`VirtualClock`] by hand so a
//! multi-threaded run stays exactly reproducible — the same discipline
//! the experiments use for the simulated engine, extended to threads.
//!
//! Clock readings are [`Timestamp`]s (microseconds since the clock's
//! epoch), the same unit tuples carry, so "has window `w` closed?"
//! is a direct comparison between `clock.now()` and the window end.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::time::{Timestamp, VDuration};

/// A source of time the runtime can sleep against.
///
/// `sleep_until` may return spuriously early (like condition-variable
/// waits); callers that need the deadline must re-check `now()`.
pub trait Clock: Send + Sync {
    /// Microseconds since the clock's epoch.
    fn now(&self) -> Timestamp;

    /// Block the calling thread until `now() >= deadline` (best
    /// effort; may wake early).
    fn sleep_until(&self, deadline: Timestamp);

    /// Block for (roughly) `d` past the current reading.
    fn sleep(&self, d: VDuration) {
        let deadline = self.now() + d;
        self.sleep_until(deadline);
    }
}

/// The production clock: the OS monotonic clock, with epoch at
/// construction time.
#[derive(Debug)]
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        MonotonicClock {
            start: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn sleep_until(&self, deadline: Timestamp) {
        let now = self.now();
        if deadline > now {
            std::thread::sleep(Duration::from_micros((deadline - now).micros()));
        }
    }
}

/// A hand-driven clock for deterministic multi-threaded tests.
///
/// Time only moves when a test calls [`VirtualClock::advance`] or
/// [`VirtualClock::set`]; threads blocked in `sleep_until` are woken
/// on every change. `sleep_until` a time the clock never reaches
/// would block forever, so tests should advance past every deadline
/// they create (or rely on the runtime's polling paths, which never
/// block on the clock alone).
#[derive(Debug, Default)]
pub struct VirtualClock {
    micros: Mutex<u64>,
    changed: Condvar,
}

impl VirtualClock {
    /// A clock frozen at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move the clock forward by `d` and wake sleepers.
    pub fn advance(&self, d: VDuration) {
        let mut t = self.micros.lock().expect("clock lock");
        *t += d.micros();
        self.changed.notify_all();
    }

    /// Jump the clock to `t` (no-op if `t` is in the past — virtual
    /// time never goes backwards) and wake sleepers.
    pub fn set(&self, t: Timestamp) {
        let mut cur = self.micros.lock().expect("clock lock");
        if t.micros() > *cur {
            *cur = t.micros();
        }
        self.changed.notify_all();
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_micros(*self.micros.lock().expect("clock lock"))
    }

    fn sleep_until(&self, deadline: Timestamp) {
        let mut t = self.micros.lock().expect("clock lock");
        while *t < deadline.micros() {
            t = self.changed.wait(t).expect("clock lock");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn monotonic_clock_moves_forward() {
        let c = MonotonicClock::new();
        let a = c.now();
        c.sleep(VDuration::from_micros(200));
        let b = c.now();
        assert!(b >= a + VDuration::from_micros(200), "{a} .. {b}");
    }

    #[test]
    fn virtual_clock_only_moves_when_driven() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Timestamp::ZERO);
        c.advance(VDuration::from_millis(5));
        assert_eq!(c.now(), Timestamp::from_micros(5_000));
        c.set(Timestamp::from_secs(1));
        assert_eq!(c.now(), Timestamp::from_secs(1));
        // Setting backwards is a no-op.
        c.set(Timestamp::ZERO);
        assert_eq!(c.now(), Timestamp::from_secs(1));
    }

    #[test]
    fn virtual_sleep_wakes_on_advance() {
        let c = Arc::new(VirtualClock::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || {
            c2.sleep_until(Timestamp::from_secs(2));
            c2.now()
        });
        // Give the sleeper a moment to block, then drive the clock in
        // two steps; only the second crosses the deadline.
        std::thread::sleep(Duration::from_millis(10));
        c.advance(VDuration::from_secs(1));
        std::thread::sleep(Duration::from_millis(10));
        c.advance(VDuration::from_secs(1));
        let woke_at = h.join().expect("sleeper");
        assert_eq!(woke_at, Timestamp::from_secs(2));
    }

    #[test]
    fn sleep_until_past_deadline_returns_immediately() {
        let c = VirtualClock::new();
        c.set(Timestamp::from_secs(5));
        c.sleep_until(Timestamp::from_secs(1));
        assert_eq!(c.now(), Timestamp::from_secs(5));
    }
}
