//! Rows and timestamped tuples.

use std::fmt;

use crate::time::Timestamp;
use crate::value::Value;

/// A row of values with no timestamp — the unit of the relational
/// algebra in `dt-algebra` and of synopsis insertion in `dt-synopsis`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Construct from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    /// Build a row of integer values — the common case in the paper's
    /// experiments, where every attribute is an integer in `1..=100`.
    pub fn from_ints(ints: &[i64]) -> Self {
        Row(ints.iter().map(|&i| Value::Int(i)).collect())
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Value at a column index.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Concatenate two rows (the row of a cross product).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        self.concat_into(other, &mut v);
        Row(v)
    }

    /// Append both rows' values to `out` — the reuse variant of
    /// [`Row::concat`] for hot paths that build many concatenated rows
    /// into caller-owned buffers.
    pub fn concat_into(&self, other: &Row, out: &mut Vec<Value>) {
        out.extend_from_slice(&self.0);
        out.extend_from_slice(&other.0);
    }

    /// Project onto the given column indices.
    ///
    /// This sits on the engine's per-row hot path, where planners have
    /// already validated every index: out-of-range indices are a logic
    /// error and debug-assert. (Release builds still pad with
    /// `Value::Null` rather than panic; outer contexts that *want* the
    /// forgiving SQL behavior use [`Row::project_padded`].)
    pub fn project(&self, indices: &[usize]) -> Row {
        let mut v = Vec::with_capacity(indices.len());
        self.project_into(indices, &mut v);
        Row(v)
    }

    /// Append the projected values to `out` — the reuse variant of
    /// [`Row::project`] for hot paths that probe group keys against a
    /// scratch buffer before allocating. Same index contract as
    /// [`Row::project`].
    pub fn project_into(&self, indices: &[usize], out: &mut Vec<Value>) {
        for &i in indices {
            debug_assert!(
                i < self.0.len(),
                "projection index {i} out of range for arity {} (planner must validate)",
                self.0.len()
            );
            out.push(self.0.get(i).cloned().unwrap_or(Value::Null));
        }
    }

    /// Project onto the given column indices, padding out-of-range
    /// indices with `Value::Null` — SQL's forgiving projection of
    /// missing attributes in outer contexts. Prefer [`Row::project`]
    /// on engine paths where indices are planner-validated.
    pub fn project_padded(&self, indices: &[usize]) -> Row {
        Row(indices
            .iter()
            .map(|&i| self.0.get(i).cloned().unwrap_or(Value::Null))
            .collect())
    }

    /// Consume the row, yielding its values (a move, not a clone).
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }
}

impl std::borrow::Borrow<[Value]> for Row {
    /// Rows borrow as value slices so hash maps keyed by `Row` can be
    /// probed with a scratch `&[Value]` without allocating a key row.
    /// (The derived `Hash` hashes the inner `Vec<Value>`, which hashes
    /// identically to its slice, so the `Borrow` contract holds.)
    fn borrow(&self) -> &[Value] {
        &self.0
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row(v)
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

/// A row stamped with its virtual arrival time — the unit that flows
/// from sources through triage queues into the stream engine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    /// The payload.
    pub row: Row,
    /// Virtual arrival time at the system boundary.
    pub ts: Timestamp,
}

impl Tuple {
    /// Construct a tuple.
    pub fn new(row: Row, ts: Timestamp) -> Self {
        Tuple { row, ts }
    }

    /// Arity of the payload row.
    pub fn arity(&self) -> usize {
        self.row.arity()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.row, self.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ints_builds_int_values() {
        let r = Row::from_ints(&[1, 2, 3]);
        assert_eq!(r.arity(), 3);
        assert_eq!(r[1], Value::Int(2));
    }

    #[test]
    fn concat_preserves_order() {
        let a = Row::from_ints(&[1, 2]);
        let b = Row::from_ints(&[3]);
        assert_eq!(a.concat(&b), Row::from_ints(&[1, 2, 3]));
    }

    #[test]
    fn project_selects_and_pads() {
        let r = Row::from_ints(&[10, 20, 30]);
        assert_eq!(r.project(&[2, 0]), Row::from_ints(&[30, 10]));
        // Only the padded variant tolerates out-of-range indices;
        // `project` debug-asserts on them (planner-validated paths).
        assert_eq!(r.project_padded(&[9]), Row::new(vec![Value::Null]));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "projection index")]
    fn project_debug_asserts_out_of_range() {
        Row::from_ints(&[1]).project(&[9]);
    }

    #[test]
    fn rows_are_hashable_and_ordered() {
        use std::collections::HashMap;
        let mut m: HashMap<Row, u32> = HashMap::new();
        *m.entry(Row::from_ints(&[1])).or_insert(0) += 1;
        *m.entry(Row::from_ints(&[1])).or_insert(0) += 1;
        assert_eq!(m[&Row::from_ints(&[1])], 2);
        assert!(Row::from_ints(&[1, 2]) < Row::from_ints(&[1, 3]));
    }

    #[test]
    fn tuple_display() {
        let t = Tuple::new(Row::from_ints(&[7]), Timestamp::from_secs(1));
        assert_eq!(t.to_string(), "(7)@1.000000s");
        assert_eq!(t.arity(), 1);
    }

    #[test]
    fn row_display() {
        assert_eq!(Row::from_ints(&[1, 2]).to_string(), "(1, 2)");
    }
}
