//! Minimal JSON document model, parser, and writer.
//!
//! The build environment has no crates.io access, so the workspace
//! carries its own JSON support instead of `serde_json`. Two consumers
//! drive the feature set:
//!
//! * `dt-server` parses newline-delimited JSON tuple frames off the
//!   wire and emits run reports ([`Json::parse`] / [`Json::render`]).
//! * `dt-bench` / `dt-metrics` serialize experiment results for
//!   plotting ([`ToJson`]).
//!
//! The parser accepts standard JSON (RFC 8259): objects, arrays,
//! strings with escapes (including `\uXXXX`), numbers, booleans, and
//! null. Object key order is preserved (`Vec<(String, Json)>`), which
//! keeps rendering deterministic.

use crate::error::{DtError, DtResult};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`; integers up to 2^53
    /// round-trip exactly, which covers every count this workspace
    /// serializes).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document from `input`. Trailing non-whitespace
    /// is an error (one frame per line on the wire).
    pub fn parse(input: &str) -> DtResult<Json> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    /// Compact single-line rendering (the NDJSON wire format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation, for files meant to
    /// be read by humans (experiment reports).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&render_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                })
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                })
            }
        }
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer payload, if this is a number representing an integer
    /// exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Render a sequence with optional pretty indentation.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

/// Numbers render as integers when they are integers (counts, ids) and
/// via `f64`'s shortest round-trip formatting otherwise.
fn render_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional degradation.
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> DtError {
        DtError::parse_at(format!("{what} (JSON)"), self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> DtResult<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("unexpected token"))
        }
    }

    fn value(&mut self) -> DtResult<Json> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Json::Null),
            Some(b't') => self.eat("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> DtResult<Json> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> DtResult<Json> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key string"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> DtResult<String> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.eat("\\u")
                                    .map_err(|_| self.err("unpaired surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> DtResult<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> DtResult<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

/// Conversion into the [`Json`] document model — the workspace's
/// replacement for `serde::Serialize`. Implemented by hand on the few
/// result types that are written to disk or the wire.
pub trait ToJson {
    /// Build the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

/// Build a [`Json::Obj`] from `("key", value)` pairs; the workhorse
/// for hand-written `ToJson` impls.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(
            Json::parse("\"hi\\n\\u0041\"").unwrap(),
            Json::Str("hi\nA".into())
        );
    }

    #[test]
    fn parses_nested() {
        let doc = Json::parse(r#"{"s":"cpu","ts":123,"vals":[1,2.5,-3],"ok":true}"#).unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("cpu"));
        assert_eq!(doc.get("ts").and_then(Json::as_i64), Some(123));
        let vals = doc.get("vals").and_then(Json::as_arr).unwrap();
        assert_eq!(vals.len(), 3);
        assert_eq!(vals[1].as_f64(), Some(2.5));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn surrogate_pairs_round_trip() {
        let doc = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(doc, Json::Str("😀".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"\\ud800\"").is_err());
    }

    #[test]
    fn round_trips_render() {
        let src = r#"{"name":"w","count":7,"frac":0.25,"tags":["a","b"],"none":null}"#;
        let doc = Json::parse(src).unwrap();
        assert_eq!(doc.render(), src);
        let re = Json::parse(&doc.render_pretty()).unwrap();
        assert_eq!(re, doc);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn to_json_building_blocks() {
        let v = obj(vec![
            ("xs", vec![1u64, 2, 3].to_json()),
            ("label", "hi".to_json()),
            ("opt", None::<f64>.to_json()),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1,2,3],"label":"hi","opt":null}"#);
    }

    #[test]
    fn control_chars_escape() {
        let s = Json::Str("a\u{1}b".into());
        assert_eq!(s.render(), "\"a\\u0001b\"");
        assert_eq!(Json::parse(&s.render()).unwrap(), s);
    }
}
