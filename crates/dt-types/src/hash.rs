//! A fast, deterministic hasher for the engine's hot-path maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3 behind a per-instance
//! random seed) is built for HashDoS resistance, which none of our
//! internal maps need: keys are small integers, `Value`s, and group-key
//! rows produced by the engine itself, never attacker-controlled
//! network input hashed into a long-lived table. The multiply-rotate
//! scheme below (the same shape rustc uses internally) hashes an `i64`
//! in a couple of ALU ops instead of SipHash's rounds, which matters
//! when every joined row probes a group map and every join key probes
//! an index.
//!
//! Determinism is a feature here, not an accident: a fixed seed means
//! map *contents* are reproducible run-to-run, so nothing downstream
//! can smuggle per-process randomness into results (the experiment
//! driver's serial-vs-parallel bit-identity guarantee relies on no
//! such leaks).

use std::hash::{BuildHasher, Hasher};

/// Multiplier from the 64-bit variant of the Fx hash function
/// (`0x51…95` ≈ 2⁶⁴/φ, chosen for good bit diffusion under
/// `wrapping_mul`).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// Fx-style streaming hasher: each word folds in as
/// `hash = (hash <<< 5 ^ word) * K`.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Fold the tail length in so "ab" and "ab\0" differ.
            buf[7] = rem.len() as u8;
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i16(&mut self, n: i16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }

    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.add(n as u64);
    }
}

/// Zero-sized [`BuildHasher`] for [`FxHasher`] — every map built from
/// it hashes identically (fixed seed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// `HashMap` with the deterministic Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` with the deterministic Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(&42i64), hash_one(&42i64));
        assert_eq!(hash_one(&"abc"), hash_one(&"abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(&1i64), hash_one(&2i64));
        assert_ne!(hash_one(&"ab"), hash_one(&"ab\0"));
        assert_ne!(hash_one(&[1i64, 2]), hash_one(&[2i64, 1]));
    }

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<crate::Value, i32> = FxHashMap::default();
        m.insert(crate::Value::Int(7), 1);
        m.insert(crate::Value::Str("x".into()), 2);
        assert_eq!(m[&crate::Value::Int(7)], 1);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn row_and_slice_hash_identically() {
        use std::borrow::Borrow;
        let row = crate::Row::from_ints(&[3, 4]);
        let slice: &[crate::Value] = row.borrow();
        assert_eq!(hash_one(&row), hash_one(&slice));
    }
}
