//! Core data model for the Data Triage reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`Value`] — a dynamically typed SQL value with total ordering and
//!   hashing (floats are compared by bit pattern so rows can live in
//!   multiset maps).
//! * [`Row`] / [`Tuple`] — a row of values, and a row stamped with a
//!   virtual arrival [`Timestamp`].
//! * [`Schema`] / [`Field`] / [`DataType`] — stream schemas with
//!   qualified column resolution (`R.a`).
//! * [`Timestamp`] / [`VDuration`] — integer-microsecond virtual time.
//!   All experiments run on a virtual clock so they are exactly
//!   reproducible from a seed (see `DESIGN.md` §5).
//! * [`WindowSpec`] — per-stream time windows in the style of
//!   TelegraphCQ's `WINDOW R['1 second']` clause.
//! * [`Clock`] — the wall-clock boundary for the server runtime:
//!   [`MonotonicClock`] in production, [`VirtualClock`] in tests.
//! * [`ColumnBatch`] / [`Column`] — columnar window batches (one typed
//!   vector per field plus a validity mask) backing the vectorized
//!   execution path (see `DESIGN.md` §13).
//! * [`DtError`] — the workspace-wide error type.

#![deny(missing_docs)]

pub mod batch;
pub mod clock;
pub mod error;
pub mod hash;
pub mod json;
pub mod row;
pub mod schema;
pub mod time;
pub mod value;
pub mod window;

pub use batch::{Column, ColumnBatch};
pub use clock::{Clock, MonotonicClock, VirtualClock};
pub use error::{line_col_at, DtError, DtResult};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use json::{Json, ToJson};
pub use row::{Row, Tuple};
pub use schema::{DataType, Field, Schema};
pub use time::{Timestamp, VDuration};
pub use value::Value;
pub use window::{WindowId, WindowSpec};
