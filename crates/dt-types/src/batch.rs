//! Columnar window batches.
//!
//! A [`ColumnBatch`] stores a window's rows as one typed vector per
//! field — `i64`, `f64`, or dictionary-encoded string columns, each
//! with an optional validity mask — instead of a `Vec<Row>`. The
//! engine's vectorized kernels (filter → selection vector, join-key
//! hashing, synopsis bucket arithmetic) run over these contiguous
//! vectors; see `DESIGN.md` §13.
//!
//! The representation is *lossless*: [`ColumnBatch::value`] rebuilds
//! exactly the [`Value`] that was pushed (float bit patterns included),
//! so the row-oriented entry points can remain thin adapters with
//! bit-identical results.
//!
//! Typing is inferred per column from the data actually pushed:
//!
//! * a column starts untyped (all-NULL);
//! * the first non-NULL value fixes the type (`Int` / `Float` /
//!   `Str`);
//! * a later value of a different type degrades that column to a
//!   [`Column::is_mixed`] fallback holding verbatim [`Value`]s, which
//!   the vectorized kernels decline (they fall back to the row path).

use crate::hash::FxHashMap;
use crate::row::Row;
use crate::value::Value;

/// Typed storage behind one [`Column`].
#[derive(Debug, Clone)]
enum ColData {
    /// No non-NULL value seen yet; every row so far is NULL.
    AllNull,
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats, stored with their exact bit patterns.
    Float(Vec<f64>),
    /// Dictionary-encoded strings: `codes[i]` indexes `dict`.
    Str {
        dict: Vec<String>,
        index: FxHashMap<String, u32>,
        codes: Vec<u32>,
    },
    /// Type-mixed fallback: values stored verbatim.
    Mixed(Vec<Value>),
}

/// One column of a [`ColumnBatch`]: typed values plus an optional
/// validity mask (`validity[i] == false` marks row `i` NULL; a `None`
/// mask means no NULLs so far). Typed variants keep a placeholder
/// payload at NULL positions so the value vector stays index-aligned.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColData,
    validity: Option<Vec<bool>>,
}

impl Column {
    /// An empty, untyped column.
    fn new() -> Self {
        Column {
            data: ColData::AllNull,
            validity: None,
        }
    }

    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match &self.data {
            ColData::AllNull => self.validity.as_ref().map_or(0, Vec::len),
            ColData::Int(v) => v.len(),
            ColData::Float(v) => v.len(),
            ColData::Str { codes, .. } => codes.len(),
            ColData::Mixed(v) => v.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if every row so far is NULL (including the empty column).
    pub fn is_all_null(&self) -> bool {
        matches!(self.data, ColData::AllNull)
    }

    /// True if the column degraded to the verbatim-`Value` fallback.
    pub fn is_mixed(&self) -> bool {
        matches!(self.data, ColData::Mixed(_))
    }

    /// The typed `i64` vector and validity mask, when this column is
    /// integer-typed. `None` mask means every row is valid.
    pub fn ints(&self) -> Option<(&[i64], Option<&[bool]>)> {
        match &self.data {
            ColData::Int(v) => Some((v.as_slice(), self.validity.as_deref())),
            _ => None,
        }
    }

    /// The typed `f64` vector and validity mask, when this column is
    /// float-typed. `None` mask means every row is valid.
    pub fn floats(&self) -> Option<(&[f64], Option<&[bool]>)> {
        match &self.data {
            ColData::Float(v) => Some((v.as_slice(), self.validity.as_deref())),
            _ => None,
        }
    }

    /// True if row `i` holds a non-NULL value.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn is_valid(&self, i: usize) -> bool {
        assert!(i < self.len(), "row {i} out of range");
        self.validity.as_ref().is_none_or(|v| v[i])
    }

    /// Rebuild the exact [`Value`] stored at row `i` (float bits
    /// preserved; strings cloned out of the dictionary).
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn value(&self, i: usize) -> Value {
        if let Some(validity) = &self.validity {
            if !validity[i] {
                return Value::Null;
            }
        }
        match &self.data {
            ColData::AllNull => Value::Null,
            ColData::Int(v) => Value::Int(v[i]),
            ColData::Float(v) => Value::Float(v[i]),
            ColData::Str { dict, codes, .. } => Value::Str(dict[codes[i] as usize].clone()),
            ColData::Mixed(v) => v[i].clone(),
        }
    }

    /// Mark the current row valid/invalid, materializing the mask on
    /// the first NULL.
    fn push_validity(&mut self, len: usize, valid: bool) {
        match (&mut self.validity, valid) {
            (Some(mask), v) => mask.push(v),
            (None, true) => {}
            (None, false) => {
                let mut mask = vec![true; len];
                mask.push(false);
                self.validity = Some(mask);
            }
        }
    }

    /// Append `v` as row `len` (the column's current length).
    fn push(&mut self, v: Value, len: usize) {
        match (&mut self.data, v) {
            // NULL: extend the mask and keep a placeholder payload so
            // the typed vector stays index-aligned.
            (data, Value::Null) => {
                match data {
                    ColData::AllNull => {}
                    ColData::Int(vals) => vals.push(0),
                    ColData::Float(vals) => vals.push(0.0),
                    ColData::Str { codes, .. } => codes.push(0),
                    ColData::Mixed(vals) => {
                        // Mixed stores NULL verbatim; no mask needed.
                        vals.push(Value::Null);
                        return;
                    }
                }
                self.push_validity(len, false);
            }
            (ColData::Int(vals), Value::Int(i)) => {
                vals.push(i);
                self.push_validity(len, true);
            }
            (ColData::Float(vals), Value::Float(f)) => {
                vals.push(f);
                self.push_validity(len, true);
            }
            (ColData::Str { dict, index, codes }, Value::Str(s)) => {
                let code = match index.get(&s) {
                    Some(&c) => c,
                    None => {
                        let c = dict.len() as u32;
                        dict.push(s.clone());
                        index.insert(s, c);
                        c
                    }
                };
                codes.push(code);
                self.push_validity(len, true);
            }
            (ColData::Mixed(vals), v) => vals.push(v),
            // First non-NULL value: fix the column's type (all prior
            // rows are NULL placeholders).
            (data @ ColData::AllNull, v) => {
                *data = match v {
                    Value::Int(i) => {
                        let mut vals = vec![0i64; len];
                        vals.push(i);
                        ColData::Int(vals)
                    }
                    Value::Float(f) => {
                        let mut vals = vec![0.0f64; len];
                        vals.push(f);
                        ColData::Float(vals)
                    }
                    Value::Str(s) => {
                        let mut codes = vec![0u32; len];
                        codes.push(0);
                        let mut index = FxHashMap::default();
                        index.insert(s.clone(), 0);
                        ColData::Str {
                            dict: vec![s],
                            index,
                            codes,
                        }
                    }
                    // Bool (and anything else untyped) goes straight
                    // to the verbatim fallback.
                    other => {
                        let mut vals = vec![Value::Null; len];
                        vals.push(other);
                        self.validity = None;
                        ColData::Mixed(vals)
                    }
                };
                if !matches!(self.data, ColData::Mixed(_)) {
                    self.push_validity(len, true);
                }
            }
            // Type clash: degrade the whole column to the verbatim
            // fallback, rebuilding prior rows exactly.
            (_, v) => {
                let mut vals: Vec<Value> = (0..len).map(|i| self.value(i)).collect();
                vals.push(v);
                self.data = ColData::Mixed(vals);
                self.validity = None;
            }
        }
    }
}

/// A window's rows stored column-wise: `arity` [`Column`]s of equal
/// length. Rows shorter than `arity` are NULL-padded on push; extra
/// trailing values are ignored (mirroring [`Row::project_padded`]'s
/// treatment of missing columns).
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    len: usize,
    columns: Vec<Column>,
}

impl ColumnBatch {
    /// An empty batch with `arity` columns.
    pub fn new(arity: usize) -> Self {
        ColumnBatch {
            len: 0,
            columns: (0..arity).map(|_| Column::new()).collect(),
        }
    }

    /// Build a batch of the given `arity` from rows (cloning values).
    pub fn from_rows(arity: usize, rows: &[Row]) -> Self {
        let mut batch = ColumnBatch::new(arity);
        for row in rows {
            batch.push_row(row);
        }
        batch
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column at index `c`, if `c < arity`.
    pub fn column(&self, c: usize) -> Option<&Column> {
        self.columns.get(c)
    }

    /// Append one row, cloning its values.
    pub fn push_row(&mut self, row: &Row) {
        for (c, col) in self.columns.iter_mut().enumerate() {
            let v = row.get(c).cloned().unwrap_or(Value::Null);
            col.push(v, self.len);
        }
        self.len += 1;
    }

    /// Append one row, moving its values (avoids cloning strings).
    pub fn push_row_owned(&mut self, row: Row) {
        let mut values = row.into_values().into_iter();
        for col in self.columns.iter_mut() {
            let v = values.next().unwrap_or(Value::Null);
            col.push(v, self.len);
        }
        self.len += 1;
    }

    /// Rebuild the exact [`Value`] at (`row`, `col`); NULL when `col`
    /// is out of range (mirroring `Row::get` on a short row).
    ///
    /// # Panics
    /// Panics if `row >= self.len()`.
    pub fn value(&self, row: usize, col: usize) -> Value {
        match self.columns.get(col) {
            Some(c) => c.value(row),
            None => Value::Null,
        }
    }

    /// Rebuild row `row` as an owned [`Row`] of `arity` values.
    ///
    /// # Panics
    /// Panics if `row >= self.len()`.
    pub fn row(&self, row: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value(row)).collect())
    }

    /// Rebuild every row (the row-path adapter boundary).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: Vec<Value>) -> Row {
        Row::new(vals)
    }

    #[test]
    fn int_column_roundtrips() {
        let rows = vec![Row::from_ints(&[1, 2]), Row::from_ints(&[3, 4])];
        let b = ColumnBatch::from_rows(2, &rows);
        assert_eq!(b.len(), 2);
        assert_eq!(b.to_rows(), rows);
        let (ints, validity) = b.column(0).unwrap().ints().unwrap();
        assert_eq!(ints, &[1, 3]);
        assert!(validity.is_none());
    }

    #[test]
    fn nulls_set_validity_and_roundtrip() {
        let rows = vec![
            v(vec![Value::Null]),
            v(vec![Value::Int(7)]),
            v(vec![Value::Null]),
        ];
        let b = ColumnBatch::from_rows(1, &rows);
        assert_eq!(b.to_rows(), rows);
        let (ints, validity) = b.column(0).unwrap().ints().unwrap();
        assert_eq!(ints.len(), 3);
        assert_eq!(ints[1], 7);
        assert_eq!(validity.unwrap(), &[false, true, false]);
    }

    #[test]
    fn all_null_column_stays_untyped() {
        let rows = vec![v(vec![Value::Null]), v(vec![Value::Null])];
        let b = ColumnBatch::from_rows(1, &rows);
        assert!(b.column(0).unwrap().is_all_null());
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn float_bits_preserved() {
        let rows = vec![v(vec![Value::Float(-0.0)]), v(vec![Value::Float(f64::NAN)])];
        let b = ColumnBatch::from_rows(1, &rows);
        let (floats, _) = b.column(0).unwrap().floats().unwrap();
        assert_eq!(floats[0].to_bits(), (-0.0f64).to_bits());
        assert!(floats[1].is_nan());
    }

    #[test]
    fn string_dictionary_roundtrips() {
        let rows = vec![
            v(vec![Value::Str("a".into())]),
            v(vec![Value::Str("b".into())]),
            v(vec![Value::Str("a".into())]),
            v(vec![Value::Null]),
        ];
        let b = ColumnBatch::from_rows(1, &rows);
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn type_clash_degrades_to_mixed_exactly() {
        let rows = vec![
            v(vec![Value::Int(1)]),
            v(vec![Value::Null]),
            v(vec![Value::Float(2.5)]),
            v(vec![Value::Str("x".into())]),
        ];
        let b = ColumnBatch::from_rows(1, &rows);
        assert!(b.column(0).unwrap().is_mixed());
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn bool_goes_to_mixed() {
        let rows = vec![v(vec![Value::Bool(true)]), v(vec![Value::Bool(false)])];
        let b = ColumnBatch::from_rows(1, &rows);
        assert!(b.column(0).unwrap().is_mixed());
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn short_rows_null_pad_and_long_rows_truncate() {
        let rows = vec![Row::from_ints(&[1]), Row::from_ints(&[2, 3, 4])];
        let b = ColumnBatch::from_rows(2, &rows);
        assert_eq!(
            b.to_rows(),
            vec![
                v(vec![Value::Int(1), Value::Null]),
                v(vec![Value::Int(2), Value::Int(3)]),
            ]
        );
    }

    #[test]
    fn push_row_owned_matches_push_row() {
        let rows = vec![
            v(vec![Value::Str("s".into()), Value::Int(1)]),
            v(vec![Value::Null, Value::Float(0.5)]),
        ];
        let mut a = ColumnBatch::new(2);
        let mut b = ColumnBatch::new(2);
        for r in &rows {
            a.push_row(r);
            b.push_row_owned(r.clone());
        }
        assert_eq!(a.to_rows(), b.to_rows());
        assert_eq!(a.to_rows(), rows);
    }

    #[test]
    fn empty_batch_has_arity() {
        let b = ColumnBatch::new(3);
        assert_eq!(b.arity(), 3);
        assert!(b.is_empty());
        assert!(b.to_rows().is_empty());
    }
}
