//! The workspace-wide error type.

use std::fmt;

/// Convenience alias used across all `dt-*` crates.
pub type DtResult<T> = Result<T, DtError>;

/// Errors raised anywhere in the Data Triage workspace.
///
/// One shared enum keeps cross-crate plumbing simple: the parser, the
/// planner, the rewriter, the engine, and the synopsis layer all speak
/// the same error language, and callers can match on the stage that
/// failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtError {
    /// Lexer/parser failure, with a position in the query text.
    ///
    /// The narrow field types are deliberate: `DtResult` rides the
    /// per-tuple hot path (synopsis inserts, window routing), so this
    /// — the widest variant — must not grow the enum past one cache
    /// half-line. `u32`/`u16` comfortably cover any statement a human
    /// or a client sends; out-of-range coordinates saturate.
    Parse {
        /// What went wrong, in parser terms.
        message: String,
        /// Byte offset into the query text where the failure was found.
        position: u32,
        /// 1-based line of the failure (0 when unknown).
        line: u16,
        /// 1-based column of the failure (0 when unknown).
        column: u16,
    },
    /// Semantic analysis / logical planning failure.
    Plan(String),
    /// Schema mismatch (arity, unknown column, type error).
    Schema(String),
    /// Query rewrite failure.
    Rewrite(String),
    /// Runtime failure inside the stream engine.
    Engine(String),
    /// Failure in a synopsis operation (dimension mismatch, etc.).
    Synopsis(String),
    /// Invalid configuration of an experiment or component.
    Config(String),
    /// An I/O operation exceeded its deadline (socket reads, client
    /// requests). Distinguished from [`DtError::Engine`] so callers
    /// can retry timeouts without retrying genuine failures.
    Timeout(String),
}

/// The 1-based (line, column) of byte offset `position` in `source`.
/// Columns count bytes, which matches how editors address the ASCII
/// SQL dialect; an out-of-range offset clamps to the end of the text.
pub fn line_col_at(source: &str, position: usize) -> (u32, u32) {
    let upto = position.min(source.len());
    let mut line = 1u32;
    let mut col = 1u32;
    for b in source.as_bytes()[..upto].iter() {
        if *b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

impl DtError {
    /// Shorthand constructor for parse errors at a byte offset, with
    /// the line/column left unknown (fill them with
    /// [`DtError::located_in`] once the source text is in hand).
    pub fn parse_at(message: impl Into<String>, position: usize) -> Self {
        DtError::Parse {
            message: message.into(),
            position: position.min(u32::MAX as usize) as u32,
            line: 0,
            column: 0,
        }
    }

    /// For a [`DtError::Parse`] whose line/column are unknown, derive
    /// them from `source` (the query text the byte offset indexes).
    /// Every other error — and one already located — passes through
    /// unchanged.
    pub fn located_in(self, source: &str) -> Self {
        match self {
            DtError::Parse {
                message,
                position,
                line: 0,
                column: 0,
            } => {
                let (line, column) = line_col_at(source, position as usize);
                DtError::Parse {
                    message,
                    position,
                    line: line.min(u16::MAX as u32) as u16,
                    column: column.min(u16::MAX as u32) as u16,
                }
            }
            other => other,
        }
    }

    /// Shorthand constructor for planning errors.
    pub fn plan(msg: impl Into<String>) -> Self {
        DtError::Plan(msg.into())
    }

    /// Shorthand constructor for schema errors.
    pub fn schema(msg: impl Into<String>) -> Self {
        DtError::Schema(msg.into())
    }

    /// Shorthand constructor for rewrite errors.
    pub fn rewrite(msg: impl Into<String>) -> Self {
        DtError::Rewrite(msg.into())
    }

    /// Shorthand constructor for engine errors.
    pub fn engine(msg: impl Into<String>) -> Self {
        DtError::Engine(msg.into())
    }

    /// Shorthand constructor for synopsis errors.
    pub fn synopsis(msg: impl Into<String>) -> Self {
        DtError::Synopsis(msg.into())
    }

    /// Shorthand constructor for configuration errors.
    pub fn config(msg: impl Into<String>) -> Self {
        DtError::Config(msg.into())
    }

    /// Shorthand constructor for timeout errors.
    pub fn timeout(msg: impl Into<String>) -> Self {
        DtError::Timeout(msg.into())
    }

    /// True for [`DtError::Timeout`] — the retryable class.
    pub fn is_timeout(&self) -> bool {
        matches!(self, DtError::Timeout(_))
    }
}

impl fmt::Display for DtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtError::Parse {
                message,
                position,
                line,
                column,
            } => {
                if *line > 0 {
                    write!(f, "parse error at line {line}, column {column}: {message}")
                } else {
                    write!(f, "parse error at byte {position}: {message}")
                }
            }
            DtError::Plan(m) => write!(f, "planning error: {m}"),
            DtError::Schema(m) => write!(f, "schema error: {m}"),
            DtError::Rewrite(m) => write!(f, "rewrite error: {m}"),
            DtError::Engine(m) => write!(f, "engine error: {m}"),
            DtError::Synopsis(m) => write!(f, "synopsis error: {m}"),
            DtError::Config(m) => write!(f, "configuration error: {m}"),
            DtError::Timeout(m) => write!(f, "timed out: {m}"),
        }
    }
}

impl std::error::Error for DtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_message() {
        let e = DtError::parse_at("unexpected token", 12);
        assert_eq!(e.to_string(), "parse error at byte 12: unexpected token");
        let located = e.located_in("SELECT a FROM\nR WHERE ?");
        assert_eq!(
            located.to_string(),
            "parse error at line 1, column 13: unexpected token"
        );
        // Locating is idempotent: known coordinates pass through.
        assert_eq!(located.clone().located_in("x"), located);
        assert_eq!(
            DtError::plan("no such stream").to_string(),
            "planning error: no such stream"
        );
        assert_eq!(
            DtError::schema("bad arity").to_string(),
            "schema error: bad arity"
        );
        assert_eq!(DtError::engine("boom").to_string(), "engine error: boom");
        assert_eq!(
            DtError::synopsis("dim mismatch").to_string(),
            "synopsis error: dim mismatch"
        );
        assert_eq!(
            DtError::config("bad rate").to_string(),
            "configuration error: bad rate"
        );
        assert_eq!(
            DtError::rewrite("no joins").to_string(),
            "rewrite error: no joins"
        );
        let t = DtError::timeout("stats read after 5s");
        assert_eq!(t.to_string(), "timed out: stats read after 5s");
        assert!(t.is_timeout());
        assert!(!DtError::engine("boom").is_timeout());
    }

    #[test]
    fn line_col_counts_lines_and_clamps() {
        let src = "SELECT *\nFROM R\nWHERE x";
        assert_eq!(line_col_at(src, 0), (1, 1));
        assert_eq!(line_col_at(src, 9), (2, 1));
        assert_eq!(line_col_at(src, 14), (2, 6));
        assert_eq!(line_col_at(src, 16), (3, 1));
        assert_eq!(line_col_at(src, 999), (3, 8));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&DtError::plan("x"));
    }
}
