//! The workspace-wide error type.

use std::fmt;

/// Convenience alias used across all `dt-*` crates.
pub type DtResult<T> = Result<T, DtError>;

/// Errors raised anywhere in the Data Triage workspace.
///
/// One shared enum keeps cross-crate plumbing simple: the parser, the
/// planner, the rewriter, the engine, and the synopsis layer all speak
/// the same error language, and callers can match on the stage that
/// failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtError {
    /// Lexer/parser failure, with a position in the query text.
    Parse {
        /// What went wrong, in parser terms.
        message: String,
        /// Byte offset into the query text where the failure was found.
        position: usize,
    },
    /// Semantic analysis / logical planning failure.
    Plan(String),
    /// Schema mismatch (arity, unknown column, type error).
    Schema(String),
    /// Query rewrite failure.
    Rewrite(String),
    /// Runtime failure inside the stream engine.
    Engine(String),
    /// Failure in a synopsis operation (dimension mismatch, etc.).
    Synopsis(String),
    /// Invalid configuration of an experiment or component.
    Config(String),
    /// An I/O operation exceeded its deadline (socket reads, client
    /// requests). Distinguished from [`DtError::Engine`] so callers
    /// can retry timeouts without retrying genuine failures.
    Timeout(String),
}

impl DtError {
    /// Shorthand constructor for planning errors.
    pub fn plan(msg: impl Into<String>) -> Self {
        DtError::Plan(msg.into())
    }

    /// Shorthand constructor for schema errors.
    pub fn schema(msg: impl Into<String>) -> Self {
        DtError::Schema(msg.into())
    }

    /// Shorthand constructor for rewrite errors.
    pub fn rewrite(msg: impl Into<String>) -> Self {
        DtError::Rewrite(msg.into())
    }

    /// Shorthand constructor for engine errors.
    pub fn engine(msg: impl Into<String>) -> Self {
        DtError::Engine(msg.into())
    }

    /// Shorthand constructor for synopsis errors.
    pub fn synopsis(msg: impl Into<String>) -> Self {
        DtError::Synopsis(msg.into())
    }

    /// Shorthand constructor for configuration errors.
    pub fn config(msg: impl Into<String>) -> Self {
        DtError::Config(msg.into())
    }

    /// Shorthand constructor for timeout errors.
    pub fn timeout(msg: impl Into<String>) -> Self {
        DtError::Timeout(msg.into())
    }

    /// True for [`DtError::Timeout`] — the retryable class.
    pub fn is_timeout(&self) -> bool {
        matches!(self, DtError::Timeout(_))
    }
}

impl fmt::Display for DtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            DtError::Plan(m) => write!(f, "planning error: {m}"),
            DtError::Schema(m) => write!(f, "schema error: {m}"),
            DtError::Rewrite(m) => write!(f, "rewrite error: {m}"),
            DtError::Engine(m) => write!(f, "engine error: {m}"),
            DtError::Synopsis(m) => write!(f, "synopsis error: {m}"),
            DtError::Config(m) => write!(f, "configuration error: {m}"),
            DtError::Timeout(m) => write!(f, "timed out: {m}"),
        }
    }
}

impl std::error::Error for DtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_message() {
        let e = DtError::Parse {
            message: "unexpected token".into(),
            position: 12,
        };
        assert_eq!(e.to_string(), "parse error at byte 12: unexpected token");
        assert_eq!(
            DtError::plan("no such stream").to_string(),
            "planning error: no such stream"
        );
        assert_eq!(
            DtError::schema("bad arity").to_string(),
            "schema error: bad arity"
        );
        assert_eq!(DtError::engine("boom").to_string(), "engine error: boom");
        assert_eq!(
            DtError::synopsis("dim mismatch").to_string(),
            "synopsis error: dim mismatch"
        );
        assert_eq!(
            DtError::config("bad rate").to_string(),
            "configuration error: bad rate"
        );
        assert_eq!(
            DtError::rewrite("no joins").to_string(),
            "rewrite error: no joins"
        );
        let t = DtError::timeout("stats read after 5s");
        assert_eq!(t.to_string(), "timed out: stats read after 5s");
        assert!(t.is_timeout());
        assert!(!DtError::engine("boom").is_timeout());
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&DtError::plan("x"));
    }
}
