//! Dynamically typed SQL values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single SQL value.
///
/// `Value` implements *total* equality, ordering, and hashing — floats
/// are compared by their IEEE-754 bit pattern (with all NaNs collapsed
/// to one canonical NaN) so that rows containing floats can be used as
/// keys in the multiset maps that back [`crate::Row`]-based relations.
///
/// Cross-type comparisons between `Int` and `Float` compare numerically
/// (so `Int(2) == Float(2.0)` is **false** for `Eq`/`Hash` purposes but
/// `Value::numeric_cmp` treats them as equal); use
/// [`Value::numeric_cmp`] when evaluating SQL predicates.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Canonicalize NaN so all NaNs hash and compare identically.
    fn canonical_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            // +0.0 and -0.0 compare equal; hash them identically too.
            0.0f64.to_bits()
        } else {
            f.to_bits()
        }
    }

    /// Returns the value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string contents if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL-style comparison used by predicate evaluation: `Int` and
    /// `Float` compare numerically; NULL compares less than everything
    /// (callers implementing three-valued logic should special-case
    /// NULL before calling this).
    ///
    /// Returns `None` for incomparable type pairs (e.g. `Int` vs
    /// `Str`), which predicate evaluation treats as "false".
    pub fn numeric_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, Null) => Some(Ordering::Equal),
            (Null, _) => Some(Ordering::Less),
            (_, Null) => Some(Ordering::Greater),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// A short name for the value's runtime type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
        }
    }

    /// Discriminant rank used to give `Value` a total order across types.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => Self::canonical_bits(*a) == Self::canonical_bits(*b),
            (Str(a), Str(b)) => a == b,
            (Bool(a), Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            Value::Float(f) => Self::canonical_bits(*f).hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: first by type rank, then within type (floats by a
    /// total order over their *canonical* bit patterns, so the order
    /// agrees with `Eq`: ±0.0 compare equal and all NaNs collapse to
    /// one value, placed last).
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => f64::from_bits(Self::canonical_bits(*a))
                .total_cmp(&f64::from_bits(Self::canonical_bits(*b))),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_equality_and_hash() {
        assert_eq!(Value::Int(5), Value::Int(5));
        assert_ne!(Value::Int(5), Value::Int(6));
        assert_eq!(hash_of(&Value::Int(5)), hash_of(&Value::Int(5)));
    }

    #[test]
    fn float_nan_collapses() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(-f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn float_signed_zero_collapses() {
        let a = Value::Float(0.0);
        let b = Value::Float(-0.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn int_float_not_structurally_equal() {
        assert_ne!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn numeric_cmp_crosses_types() {
        assert_eq!(
            Value::Int(2).numeric_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).numeric_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Int(1).numeric_cmp(&Value::Str("x".into())), None);
    }

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(1), Value::Null, Value::Str("a".into())];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
    }

    #[test]
    fn total_order_is_consistent() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-1),
            Value::Int(7),
            Value::Float(0.5),
            Value::Str("a".into()),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                match i.cmp(&j) {
                    Ordering::Less => assert_eq!(a.cmp(b), Ordering::Less, "{a} < {b}"),
                    Ordering::Equal => assert_eq!(a.cmp(b), Ordering::Equal),
                    Ordering::Greater => assert_eq!(a.cmp(b), Ordering::Greater),
                }
            }
        }
    }

    #[test]
    fn display_roundtrips_basic() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Str("hi".into()).to_string(), "'hi'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_i64(), Some(4));
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Float(1.25).as_f64(), Some(1.25));
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Str("s".into()).as_i64(), None);
    }
}
