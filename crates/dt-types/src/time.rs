//! Virtual time.
//!
//! Every experiment in this workspace runs on a *virtual clock*: an
//! integer count of microseconds since the start of the run. Using
//! virtual rather than wall-clock time makes every experiment exactly
//! reproducible from a random seed, while preserving the quantity the
//! paper actually varies — the ratio between data arrival rate and the
//! engine's service rate.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Microseconds per second, the base resolution of virtual time.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// A point in virtual time (microseconds since the start of the run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VDuration(pub u64);

impl Timestamp {
    /// The origin of virtual time.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Timestamp(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds (saturating at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        Timestamp((s.max(0.0) * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Timestamp(us)
    }

    /// The timestamp in microseconds.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// The timestamp in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Saturating subtraction of another timestamp, yielding a duration.
    pub fn saturating_sub(self, other: Timestamp) -> VDuration {
        VDuration(self.0.saturating_sub(other.0))
    }

    /// The later of two timestamps.
    pub fn max(self, other: Timestamp) -> Timestamp {
        Timestamp(self.0.max(other.0))
    }

    /// The earlier of two timestamps.
    pub fn min(self, other: Timestamp) -> Timestamp {
        Timestamp(self.0.min(other.0))
    }
}

impl VDuration {
    /// The zero-length duration.
    pub const ZERO: VDuration = VDuration(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        VDuration(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds (saturating at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        VDuration((s.max(0.0) * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        VDuration(ms * 1_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        VDuration(us)
    }

    /// The duration in microseconds.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True if the duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<VDuration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: VDuration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<VDuration> for Timestamp {
    fn add_assign(&mut self, rhs: VDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = VDuration;
    /// Panics on underflow in debug builds; use
    /// [`Timestamp::saturating_sub`] when ordering is not guaranteed.
    fn sub(self, rhs: Timestamp) -> VDuration {
        VDuration(self.0 - rhs.0)
    }
}

impl Add for VDuration {
    type Output = VDuration;
    fn add(self, rhs: VDuration) -> VDuration {
        VDuration(self.0 + rhs.0)
    }
}

impl AddAssign for VDuration {
    fn add_assign(&mut self, rhs: VDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for VDuration {
    type Output = VDuration;
    fn sub(self, rhs: VDuration) -> VDuration {
        VDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for VDuration {
    type Output = VDuration;
    fn mul(self, rhs: u64) -> VDuration {
        VDuration(self.0 * rhs)
    }
}

impl Mul<f64> for VDuration {
    type Output = VDuration;
    fn mul(self, rhs: f64) -> VDuration {
        VDuration((self.0 as f64 * rhs.max(0.0)).round() as u64)
    }
}

impl Div<u64> for VDuration {
    type Output = VDuration;
    fn div(self, rhs: u64) -> VDuration {
        VDuration(self.0 / rhs)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for VDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(Timestamp::from_secs(2), Timestamp::from_micros(2_000_000));
        assert_eq!(VDuration::from_secs(1), VDuration::from_millis(1_000));
        assert_eq!(VDuration::from_millis(1), VDuration::from_micros(1_000));
    }

    #[test]
    fn fractional_seconds_round() {
        assert_eq!(
            VDuration::from_secs_f64(0.5),
            VDuration::from_micros(500_000)
        );
        assert_eq!(
            Timestamp::from_secs_f64(1.25),
            Timestamp::from_micros(1_250_000)
        );
        // Negative saturates at zero rather than wrapping.
        assert_eq!(VDuration::from_secs_f64(-3.0), VDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(1) + VDuration::from_millis(500);
        assert_eq!(t, Timestamp::from_micros(1_500_000));
        assert_eq!(t - Timestamp::from_secs(1), VDuration::from_millis(500));
        assert_eq!(
            Timestamp::from_secs(1).saturating_sub(Timestamp::from_secs(2)),
            VDuration::ZERO
        );
        assert_eq!(VDuration::from_secs(2) / 4, VDuration::from_millis(500));
        assert_eq!(VDuration::from_millis(10) * 3, VDuration::from_millis(30));
        assert_eq!(VDuration::from_secs(1) * 0.25, VDuration::from_millis(250));
    }

    #[test]
    fn as_secs_roundtrip() {
        let d = VDuration::from_secs_f64(1.234567);
        assert!((d.as_secs_f64() - 1.234567).abs() < 1e-9);
    }

    #[test]
    fn ordering() {
        assert!(Timestamp::from_secs(1) < Timestamp::from_secs(2));
        assert!(VDuration::from_millis(1) < VDuration::from_millis(2));
        assert_eq!(
            Timestamp::from_secs(1).max(Timestamp::from_secs(2)),
            Timestamp::from_secs(2)
        );
        assert_eq!(
            Timestamp::from_secs(1).min(Timestamp::from_secs(2)),
            Timestamp::from_secs(1)
        );
    }

    #[test]
    fn display() {
        assert_eq!(Timestamp::from_secs(1).to_string(), "1.000000s");
        assert_eq!(VDuration::from_millis(250).to_string(), "0.250000s");
    }
}
