//! Property tests for the core value types: the total order is a
//! genuine order, hashing is consistent with equality, and row
//! operations compose.

use dt_types::{Row, Value};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::Str),
    ]
}

fn hash_of(v: &impl Hash) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Eq ⇒ same hash (the HashMap contract).
    #[test]
    fn eq_implies_same_hash(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    /// The total order is reflexive, antisymmetric, and transitive.
    #[test]
    fn total_order_laws(a in arb_value(), b in arb_value(), c in arb_value()) {
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }

    /// Ord's Equal agrees with Eq (NaN canonicalization included).
    #[test]
    fn ord_equal_iff_eq(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.cmp(&b) == Ordering::Equal, a == b);
    }

    /// numeric_cmp is antisymmetric where defined.
    #[test]
    fn numeric_cmp_antisymmetric(a in arb_value(), b in arb_value()) {
        if let (Some(x), Some(y)) = (a.numeric_cmp(&b), b.numeric_cmp(&a)) {
            prop_assert_eq!(x, y.reverse());
        }
    }

    /// Row concat/project compose: projecting the concatenation onto
    /// the left/right index ranges recovers the originals.
    #[test]
    fn concat_project_roundtrip(
        a in prop::collection::vec(arb_value(), 0..5),
        b in prop::collection::vec(arb_value(), 0..5),
    ) {
        let ra = Row::new(a.clone());
        let rb = Row::new(b.clone());
        let cat = ra.concat(&rb);
        prop_assert_eq!(cat.arity(), a.len() + b.len());
        let left: Vec<usize> = (0..a.len()).collect();
        let right: Vec<usize> = (a.len()..a.len() + b.len()).collect();
        prop_assert_eq!(cat.project(&left), ra);
        prop_assert_eq!(cat.project(&right), rb);
    }

    /// Rows inherit a lawful order from values (lexicographic).
    #[test]
    fn row_order_is_lexicographic(
        a in prop::collection::vec(arb_value(), 1..4),
        b in prop::collection::vec(arb_value(), 1..4),
    ) {
        let ra = Row::new(a.clone());
        let rb = Row::new(b.clone());
        let expected = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.cmp(y))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or_else(|| a.len().cmp(&b.len()));
        prop_assert_eq!(ra.cmp(&rb), expected);
    }
}
