//! Tokenizer for the TelegraphCQ SQL dialect.

use dt_types::{DtError, DtResult};

/// A token with its byte position in the source (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub position: usize,
}

/// Token kinds. Keywords are case-insensitive and lexed as `Keyword`
/// with an upper-cased spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `SELECT`, `FROM`, `COUNT`, … (upper-cased).
    Keyword(String),
    /// A non-keyword identifier (original case preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped).
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "GROUP", "BY", "HAVING", "WINDOW", "AS", "COUNT",
    "SUM", "AVG", "MIN", "MAX",
];

/// A hand-written single-pass lexer.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over the query text.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize the whole input (including a trailing `Eof`).
    pub fn tokenize(mut self) -> DtResult<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t.kind == TokenKind::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn error(&self, msg: impl Into<String>) -> DtError {
        DtError::parse_at(msg, self.pos)
    }

    fn next_token(&mut self) -> DtResult<Token> {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.pos += 1;
        }
        let start = self.pos;
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                position: start,
            });
        };
        let kind = match c {
            b',' => {
                self.pos += 1;
                TokenKind::Comma
            }
            b'.' => {
                self.pos += 1;
                TokenKind::Dot
            }
            b'(' => {
                self.pos += 1;
                TokenKind::LParen
            }
            b')' => {
                self.pos += 1;
                TokenKind::RParen
            }
            b'[' => {
                self.pos += 1;
                TokenKind::LBracket
            }
            b']' => {
                self.pos += 1;
                TokenKind::RBracket
            }
            b'*' => {
                self.pos += 1;
                TokenKind::Star
            }
            b';' => {
                self.pos += 1;
                TokenKind::Semicolon
            }
            b'=' => {
                self.pos += 1;
                TokenKind::Eq
            }
            b'!' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Neq
                } else {
                    return Err(self.error("expected '=' after '!'"));
                }
            }
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => {
                        self.pos += 1;
                        TokenKind::Le
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        TokenKind::Neq
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'\'' => {
                self.pos += 1;
                let content_start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'\'' {
                        break;
                    }
                    self.pos += 1;
                }
                if self.peek() != Some(b'\'') {
                    return Err(self.error("unterminated string literal"));
                }
                let s = self.src[content_start..self.pos].to_string();
                self.pos += 1; // closing quote
                TokenKind::Str(s)
            }
            c if c.is_ascii_digit() || c == b'-' => {
                self.pos += 1;
                let mut is_float = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        self.pos += 1;
                    } else if c == b'.'
                        && !is_float
                        && self
                            .bytes
                            .get(self.pos + 1)
                            .is_some_and(|d| d.is_ascii_digit())
                    {
                        is_float = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = &self.src[start..self.pos];
                if text == "-" {
                    return Err(self.error("dangling '-'"));
                }
                if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| self.error(format!("bad float literal '{text}'")))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| self.error(format!("bad integer literal '{text}'")))?,
                    )
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                self.pos += 1;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                    self.pos += 1;
                }
                let text = &self.src[start..self.pos];
                let upper = text.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Ident(text.to_string())
                }
            }
            other => {
                return Err(self.error(format!("unexpected character '{}'", other as char)));
            }
        };
        Ok(Token {
            kind,
            position: start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_the_paper_query() {
        let ks = kinds(
            "SELECT a, COUNT(*) as count FROM R,S,T \
             WHERE R.a = S.b AND S.c = T.d GROUP BY a \
             WINDOW R['1 second'];",
        );
        use TokenKind::*;
        assert_eq!(ks[0], Keyword("SELECT".into()));
        assert_eq!(ks[1], Ident("a".into()));
        assert_eq!(ks[2], Comma);
        assert_eq!(ks[3], Keyword("COUNT".into()));
        assert_eq!(ks[4], LParen);
        assert_eq!(ks[5], Star);
        assert_eq!(ks[6], RParen);
        assert_eq!(ks[7], Keyword("AS".into()));
        // `count` is not a reserved word position here; it lexes as the
        // COUNT keyword but the parser accepts keywords as aliases.
        assert_eq!(ks[8], Keyword("COUNT".into()));
        assert!(ks.contains(&Keyword("WINDOW".into())));
        assert!(ks.contains(&Str("1 second".into())));
        assert_eq!(*ks.last().unwrap(), Eof);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(kinds("select")[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(kinds("SeLeCt")[0], TokenKind::Keyword("SELECT".into()));
    }

    #[test]
    fn identifiers_keep_case() {
        assert_eq!(kinds("MyStream")[0], TokenKind::Ident("MyStream".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("-7")[0], TokenKind::Int(-7));
        assert_eq!(kinds("3.5")[0], TokenKind::Float(3.5));
        assert_eq!(kinds("-0.25")[0], TokenKind::Float(-0.25));
        // A dot not followed by a digit is a separate token (qualified
        // names parse as Ident Dot Ident).
        assert_eq!(
            kinds("R.a"),
            vec![
                TokenKind::Ident("R".into()),
                TokenKind::Dot,
                TokenKind::Ident("a".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![Eq, Neq, Neq, Lt, Le, Gt, Ge, Eof]
        );
    }

    #[test]
    fn string_literals() {
        assert_eq!(kinds("'1 second'")[0], TokenKind::Str("1 second".into()));
    }

    #[test]
    fn errors_carry_position() {
        let err = Lexer::new("SELECT @").tokenize().unwrap_err();
        match err {
            DtError::Parse { position, .. } => assert_eq!(position, 7),
            other => panic!("unexpected error {other}"),
        }
        assert!(Lexer::new("'oops").tokenize().is_err());
        assert!(Lexer::new("! x").tokenize().is_err());
        assert!(Lexer::new("- x").tokenize().is_err());
    }
}
