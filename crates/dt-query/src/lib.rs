//! The continuous-query language frontend.
//!
//! Parses the TelegraphCQ SQL dialect used throughout the paper —
//! e.g. the experiment query of Fig. 7:
//!
//! ```sql
//! SELECT a, COUNT(*) as count
//! FROM R, S, T
//! WHERE R.a = S.b AND S.c = T.d
//! GROUP BY a
//! WINDOW R['1 second'], S['1 second'], T['1 second'];
//! ```
//!
//! and lowers it against a [`Catalog`] of stream schemas into a
//! [`QueryPlan`]: a join-ordered select-project-join-aggregate plan
//! with per-stream window specifications. The plan is consumed by the
//! exact stream engine (`dt-engine`) and by the shadow-query rewriter
//! (`dt-rewrite`).
//!
//! Supported surface:
//! * `SELECT [DISTINCT] <cols and aggregates> [AS alias]`
//!   with `COUNT(*)`, `COUNT(col)`, `SUM`, `AVG`, `MIN`, `MAX`;
//! * `FROM` lists with optional aliases (`FROM R AS x, S y`);
//! * conjunctive `WHERE` with `=`, `<>`, `<`, `<=`, `>`, `>=` between
//!   column references and integer/float/string literals;
//! * `GROUP BY` on column references;
//! * per-stream `WINDOW s['<n> <unit>']` clauses (seconds /
//!   milliseconds / minutes).

pub mod ast;
pub mod explain;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;

pub use ast::{
    Aggregate, CmpOp, ColumnRef, HavingClause, Operand, Predicate, SelectItem, SelectStatement,
    TableRef,
};
pub use explain::explain;
pub use lexer::{Lexer, Token, TokenKind};
pub use optimizer::{estimate_cost, optimize_join_order, StreamStats};
pub use parser::parse_select;
pub use plan::{
    parse_interval, AggSpec, Catalog, CompiledHaving, CompiledPredicate, JoinGraph, OutputColumn,
    Planner, PredOperand, QueryPlan, StreamBinding,
};
