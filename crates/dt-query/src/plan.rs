//! Logical planning: lowering a parsed [`SelectStatement`] against a
//! [`Catalog`] of stream schemas into an executable [`QueryPlan`].

use dt_types::{DtError, DtResult, Row, Schema, VDuration, Value, WindowSpec};

use crate::ast::{Aggregate, CmpOp, ColumnRef, Operand, SelectItem, SelectStatement};

/// The set of known streams and their schemas.
///
/// Streams keep their registration order: a catalog of a handful of
/// streams is looked up rarely (planning time only), and the stable
/// order is what lets a server derive one deterministic physical
/// stream table from the catalog alone — independent of which queries
/// happen to be registered when it boots.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    streams: Vec<(String, Schema)>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register (or replace) a stream.
    pub fn add_stream(&mut self, name: impl Into<String>, schema: Schema) {
        let name = name.into();
        match self.streams.iter_mut().find(|(n, _)| *n == name) {
            Some((_, s)) => *s = schema,
            None => self.streams.push((name, schema)),
        }
    }

    /// Look up a stream's schema.
    pub fn schema(&self, name: &str) -> Option<&Schema> {
        self.streams.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Every registered stream, in registration order.
    pub fn streams(&self) -> &[(String, Schema)] {
        &self.streams
    }
}

/// One stream's binding in the FROM list.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBinding {
    /// The name column qualifiers resolve against (alias or stream
    /// name).
    pub alias: String,
    /// Catalog stream name.
    pub stream: String,
    /// The stream's schema, re-qualified with `alias`.
    pub schema: Schema,
    /// The stream's window.
    pub window: WindowSpec,
    /// Column offset of this stream inside the combined row.
    pub offset: usize,
}

/// The left-deep join structure: `steps[i]` joins stream `i+1` onto
/// the join of streams `0..=i`; pairs are `(combined-row column,
/// stream i+1 local column)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JoinGraph {
    /// One entry per join step (`streams.len() - 1` total).
    pub steps: Vec<Vec<(usize, usize)>>,
}

/// One side of a compiled predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum PredOperand {
    /// Combined-row column index.
    Col(usize),
    /// Literal value.
    Lit(Value),
}

/// A WHERE conjunct compiled to combined-row column indices.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPredicate {
    /// Left operand.
    pub left: PredOperand,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: PredOperand,
}

impl CompiledPredicate {
    /// Evaluate on a combined row (SQL semantics: comparisons
    /// involving NULL or incomparable types are false).
    pub fn eval(&self, row: &Row) -> bool {
        let resolve = |o: &PredOperand| -> Option<Value> {
            match o {
                PredOperand::Col(i) => row.get(*i).cloned(),
                PredOperand::Lit(v) => Some(v.clone()),
            }
        };
        let (Some(l), Some(r)) = (resolve(&self.left), resolve(&self.right)) else {
            return false;
        };
        if l.is_null() || r.is_null() {
            return false;
        }
        match l.numeric_cmp(&r) {
            Some(ord) => self.op.matches(ord),
            None => false,
        }
    }

    /// If this predicate constrains a single column against an integer
    /// literal, return `(column, op, literal)` — the form the shadow
    /// plan can push into a synopsis range selection.
    pub fn as_column_vs_int(&self) -> Option<(usize, CmpOp, i64)> {
        match (&self.left, &self.right) {
            (PredOperand::Col(c), PredOperand::Lit(Value::Int(v))) => Some((*c, self.op, *v)),
            (PredOperand::Lit(Value::Int(v)), PredOperand::Col(c)) => {
                Some((*c, self.op.flipped(), *v))
            }
            _ => None,
        }
    }
}

/// One aggregate of the SELECT list, compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggSpec {
    /// Which aggregate.
    pub func: Aggregate,
    /// Combined-row argument column (`None` only for `COUNT(*)`).
    pub arg: Option<usize>,
    /// Output column name.
    pub name: String,
}

/// A compiled HAVING conjunct: compare the `agg_index`-th aggregate's
/// final (merged) value against a literal.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledHaving {
    /// Index into [`QueryPlan::aggregates`] (possibly a hidden
    /// aggregate appended for HAVING alone).
    pub agg_index: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand literal.
    pub value: f64,
}

impl CompiledHaving {
    /// Evaluate against a group's final aggregate values (in
    /// [`QueryPlan::aggregates`] order). NaN values never pass.
    pub fn accepts(&self, vals: &[f64]) -> bool {
        let Some(v) = vals.get(self.agg_index) else {
            return false;
        };
        match v.partial_cmp(&self.value) {
            Some(ord) => self.op.matches(ord),
            None => false,
        }
    }
}

/// One output column of the query, in SELECT order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputColumn {
    /// A grouping column: combined-row index + output name.
    Column {
        /// Combined-row index.
        index: usize,
        /// Output name.
        name: String,
    },
    /// The `agg_index`-th entry of [`QueryPlan::aggregates`].
    Aggregate {
        /// Index into the aggregate list.
        agg_index: usize,
    },
}

/// A fully resolved continuous query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// FROM-order stream bindings (this is also the join order, as in
    /// paper §4.3).
    pub streams: Vec<StreamBinding>,
    /// Left-deep equijoin structure extracted from WHERE.
    pub join_graph: JoinGraph,
    /// Remaining WHERE conjuncts, evaluated on the combined row.
    pub residual: Vec<CompiledPredicate>,
    /// GROUP BY columns as combined-row indices.
    pub group_by: Vec<usize>,
    /// Aggregates of the SELECT list, plus hidden aggregates appended
    /// for HAVING clauses that reference an aggregate not selected.
    pub aggregates: Vec<AggSpec>,
    /// Compiled HAVING conjuncts; applied to *final* (merged) group
    /// values at result emission.
    pub having: Vec<CompiledHaving>,
    /// SELECT-order outputs.
    pub outputs: Vec<OutputColumn>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Schema of the combined (joined) row.
    pub combined_schema: Schema,
}

impl QueryPlan {
    /// Does the query compute any aggregates?
    pub fn is_aggregating(&self) -> bool {
        !self.aggregates.is_empty()
    }

    /// Does a group with these final aggregate values pass every
    /// HAVING conjunct?
    pub fn having_accepts(&self, vals: &[f64]) -> bool {
        self.having.iter().all(|h| h.accepts(vals))
    }

    /// The stream (by position) that owns combined-row column `col`,
    /// with the column's local index inside that stream.
    pub fn locate_column(&self, col: usize) -> Option<(usize, usize)> {
        for (i, s) in self.streams.iter().enumerate() {
            if col >= s.offset && col < s.offset + s.schema.arity() {
                return Some((i, col - s.offset));
            }
        }
        None
    }
}

/// Parses TelegraphCQ interval strings like `1 second`,
/// `250 milliseconds`, `0.5 seconds`, `2 minutes`.
pub fn parse_interval(text: &str) -> DtResult<VDuration> {
    let mut parts = text.split_whitespace();
    let num: f64 = parts
        .next()
        .ok_or_else(|| DtError::plan(format!("empty interval '{text}'")))?
        .parse()
        .map_err(|_| DtError::plan(format!("bad interval number in '{text}'")))?;
    if num < 0.0 {
        return Err(DtError::plan(format!("negative interval '{text}'")));
    }
    let unit = parts.next().unwrap_or("seconds").to_ascii_lowercase();
    if parts.next().is_some() {
        return Err(DtError::plan(format!("trailing text in interval '{text}'")));
    }
    let seconds = match unit.as_str() {
        "second" | "seconds" | "sec" | "secs" | "s" => num,
        "millisecond" | "milliseconds" | "ms" => num / 1_000.0,
        "microsecond" | "microseconds" | "us" => num / 1_000_000.0,
        "minute" | "minutes" | "min" | "mins" => num * 60.0,
        other => return Err(DtError::plan(format!("unknown interval unit '{other}'"))),
    };
    let d = VDuration::from_secs_f64(seconds);
    if d.is_zero() {
        return Err(DtError::plan(format!("interval '{text}' rounds to zero")));
    }
    Ok(d)
}

/// The planner.
pub struct Planner<'a> {
    catalog: &'a Catalog,
}

impl<'a> Planner<'a> {
    /// A planner over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Planner { catalog }
    }

    /// Lower a statement to a plan.
    pub fn plan(&self, stmt: &SelectStatement) -> DtResult<QueryPlan> {
        if stmt.from.is_empty() {
            return Err(DtError::plan("FROM list is empty"));
        }
        // Bind streams.
        let mut streams = Vec::with_capacity(stmt.from.len());
        let mut offset = 0;
        let default_window = WindowSpec::seconds(1).expect("1s window");
        for tref in &stmt.from {
            let schema = self
                .catalog
                .schema(&tref.stream)
                .ok_or_else(|| DtError::plan(format!("unknown stream '{}'", tref.stream)))?
                .with_qualifier(tref.binding_name());
            let arity = schema.arity();
            streams.push(StreamBinding {
                alias: tref.binding_name().to_string(),
                stream: tref.stream.clone(),
                schema,
                window: default_window,
                offset,
            });
            offset += arity;
        }
        // Duplicate binding names are ambiguous.
        for i in 0..streams.len() {
            for j in i + 1..streams.len() {
                if streams[i].alias == streams[j].alias {
                    return Err(DtError::plan(format!(
                        "duplicate stream binding '{}'",
                        streams[i].alias
                    )));
                }
            }
        }
        // Apply WINDOW clauses.
        for w in &stmt.windows {
            let width = parse_interval(&w.interval)?;
            let spec = match &w.slide {
                Some(slide) => WindowSpec::hopping(width, parse_interval(slide)?)?,
                None => WindowSpec::new(width)?,
            };
            let Some(binding) = streams.iter_mut().find(|s| s.alias == w.stream) else {
                return Err(DtError::plan(format!(
                    "WINDOW clause names unknown stream '{}'",
                    w.stream
                )));
            };
            binding.window = spec;
        }

        // Combined schema.
        let mut combined_schema = Schema::empty();
        for s in &streams {
            combined_schema = combined_schema.concat(&s.schema);
        }

        let resolve = |c: &ColumnRef| -> DtResult<usize> {
            combined_schema.resolve(c.qualifier.as_deref(), &c.name)
        };
        let stream_of = |col: usize| -> usize {
            streams
                .iter()
                .rposition(|s| col >= s.offset)
                .expect("column inside some stream")
        };

        // Split predicates into join steps and residuals.
        let mut join_graph = JoinGraph {
            steps: vec![Vec::new(); streams.len() - 1],
        };
        let mut residual = Vec::new();
        for p in &stmt.predicates {
            match (&p.left, &p.right) {
                (Operand::Column(lc), Operand::Column(rc)) if p.op == CmpOp::Eq => {
                    let li = resolve(lc)?;
                    let ri = resolve(rc)?;
                    let ls = stream_of(li);
                    let rs = stream_of(ri);
                    if ls == rs {
                        residual.push(CompiledPredicate {
                            left: PredOperand::Col(li),
                            op: p.op,
                            right: PredOperand::Col(ri),
                        });
                    } else {
                        // Join step owned by the later stream.
                        let (early, late, late_stream) =
                            if ls < rs { (li, ri, rs) } else { (ri, li, ls) };
                        let local = late - streams[late_stream].offset;
                        join_graph.steps[late_stream - 1].push((early, local));
                    }
                }
                _ => {
                    let compile = |o: &Operand| -> DtResult<PredOperand> {
                        Ok(match o {
                            Operand::Column(c) => PredOperand::Col(resolve(c)?),
                            Operand::Literal(v) => PredOperand::Lit(v.clone()),
                        })
                    };
                    residual.push(CompiledPredicate {
                        left: compile(&p.left)?,
                        op: p.op,
                        right: compile(&p.right)?,
                    });
                }
            }
        }

        // GROUP BY columns.
        let mut group_by = Vec::new();
        for c in &stmt.group_by {
            group_by.push(resolve(c)?);
        }

        // SELECT list.
        let mut aggregates = Vec::new();
        let mut outputs = Vec::new();
        let has_aggregate = stmt
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { .. }));
        let grouping = has_aggregate || !group_by.is_empty();
        for item in &stmt.items {
            match item {
                SelectItem::Star => {
                    if grouping {
                        return Err(DtError::plan(
                            "SELECT * cannot be combined with GROUP BY or aggregates",
                        ));
                    }
                    for (i, f) in combined_schema.fields().iter().enumerate() {
                        outputs.push(OutputColumn::Column {
                            index: i,
                            name: f.qualified_name(),
                        });
                    }
                }
                SelectItem::Column { column, alias } => {
                    let idx = resolve(column)?;
                    if grouping && !group_by.contains(&idx) {
                        return Err(DtError::plan(format!(
                            "column {column} must appear in GROUP BY"
                        )));
                    }
                    outputs.push(OutputColumn::Column {
                        index: idx,
                        name: alias.clone().unwrap_or_else(|| column.to_string()),
                    });
                }
                SelectItem::Aggregate { func, arg, alias } => {
                    let arg_idx = match arg {
                        Some(c) => Some(resolve(c)?),
                        None => None,
                    };
                    let name = alias.clone().unwrap_or_else(|| match arg {
                        Some(c) => format!("{func}({c})"),
                        None => format!("{func}(*)"),
                    });
                    outputs.push(OutputColumn::Aggregate {
                        agg_index: aggregates.len(),
                    });
                    aggregates.push(AggSpec {
                        func: *func,
                        arg: arg_idx,
                        name,
                    });
                }
            }
        }

        // HAVING conjuncts: bind each to a SELECT aggregate, appending
        // a hidden aggregate when the clause references one that is
        // not selected.
        let mut having = Vec::with_capacity(stmt.having.len());
        if !stmt.having.is_empty() && aggregates.is_empty() && group_by.is_empty() {
            return Err(DtError::plan("HAVING requires GROUP BY or aggregates"));
        }
        for h in &stmt.having {
            let arg_idx = match &h.arg {
                Some(c) => Some(resolve(c)?),
                None => None,
            };
            let agg_index = match aggregates
                .iter()
                .position(|a| a.func == h.func && a.arg == arg_idx)
            {
                Some(i) => i,
                None => {
                    aggregates.push(AggSpec {
                        func: h.func,
                        arg: arg_idx,
                        name: format!("__having_{}", aggregates.len()),
                    });
                    aggregates.len() - 1
                }
            };
            having.push(CompiledHaving {
                agg_index,
                op: h.op,
                value: h.value,
            });
        }

        Ok(QueryPlan {
            streams,
            join_graph,
            residual,
            group_by,
            aggregates,
            having,
            outputs,
            distinct: stmt.distinct,
            combined_schema,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use dt_types::DataType;

    fn paper_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        c.add_stream(
            "S",
            Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
        );
        c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
        c
    }

    fn plan(sql: &str) -> DtResult<QueryPlan> {
        let cat = paper_catalog();
        let stmt = parse_select(sql)?;
        Planner::new(&cat).plan(&stmt)
    }

    const PAPER_QUERY: &str = "SELECT a, COUNT(*) as count FROM R,S,T \
        WHERE R.a = S.b AND S.c = T.d GROUP BY a \
        WINDOW R['1 second'], S['1 second'], T['1 second'];";

    #[test]
    fn plans_the_paper_query() {
        let p = plan(PAPER_QUERY).unwrap();
        assert_eq!(p.streams.len(), 3);
        assert_eq!(p.streams[1].offset, 1);
        assert_eq!(p.streams[2].offset, 3);
        // R.a = S.b joins stream 1 on (global 0, local 0);
        // S.c = T.d joins stream 2 on (global 2, local 0).
        assert_eq!(p.join_graph.steps, vec![vec![(0, 0)], vec![(2, 0)]]);
        assert!(p.residual.is_empty());
        assert_eq!(p.group_by, vec![0]);
        assert_eq!(p.aggregates.len(), 1);
        assert_eq!(p.aggregates[0].name, "count");
        assert_eq!(p.aggregates[0].func, Aggregate::Count);
        assert_eq!(p.aggregates[0].arg, None);
        assert_eq!(p.combined_schema.arity(), 4);
        assert_eq!(p.streams[0].window.width(), VDuration::from_secs(1));
        assert_eq!(p.outputs.len(), 2);
    }

    #[test]
    fn reversed_join_predicate_normalizes() {
        let p = plan("SELECT * FROM R, S WHERE S.b = R.a").unwrap();
        assert_eq!(p.join_graph.steps, vec![vec![(0, 0)]]);
    }

    #[test]
    fn literal_predicates_are_residual() {
        let p = plan("SELECT a FROM R WHERE R.a > 5").unwrap();
        assert_eq!(p.residual.len(), 1);
        assert_eq!(p.residual[0].as_column_vs_int(), Some((0, CmpOp::Gt, 5)));
        let p = plan("SELECT a FROM R WHERE 5 < R.a").unwrap();
        assert_eq!(p.residual[0].as_column_vs_int(), Some((0, CmpOp::Gt, 5)));
    }

    #[test]
    fn same_stream_equality_is_residual() {
        let p = plan("SELECT * FROM S WHERE S.b = S.c").unwrap();
        assert!(p.join_graph.steps.is_empty());
        assert_eq!(p.residual.len(), 1);
    }

    #[test]
    fn cross_join_has_empty_step() {
        let p = plan("SELECT * FROM R, T").unwrap();
        assert_eq!(p.join_graph.steps, vec![vec![]]);
    }

    #[test]
    fn aliases_resolve() {
        let p = plan("SELECT x.a FROM R AS x, R y WHERE x.a = y.a").unwrap();
        assert_eq!(p.join_graph.steps, vec![vec![(0, 0)]]);
        assert_eq!(p.streams[0].alias, "x");
    }

    #[test]
    fn duplicate_binding_rejected() {
        assert!(plan("SELECT * FROM R, R").is_err());
        assert!(plan("SELECT * FROM R x, S x WHERE x.a = x.b").is_err());
    }

    #[test]
    fn unknown_stream_and_column_rejected() {
        assert!(plan("SELECT * FROM Nope").is_err());
        assert!(plan("SELECT z FROM R").is_err());
        assert!(plan("SELECT a FROM R WINDOW Q['1 second']").is_err());
    }

    #[test]
    fn bare_column_must_be_unambiguous() {
        // `a` is unique across R,S,T; `b` likewise. But joining R with
        // itself under two aliases makes `a` ambiguous.
        assert!(plan("SELECT a FROM R x, R y WHERE x.a = y.a").is_err());
    }

    #[test]
    fn ungrouped_column_with_aggregate_rejected() {
        assert!(plan("SELECT a, COUNT(*) FROM R").is_err());
        assert!(plan("SELECT b, COUNT(*) FROM S GROUP BY c").is_err());
    }

    #[test]
    fn star_with_group_by_rejected() {
        assert!(plan("SELECT * FROM R GROUP BY a").is_err());
    }

    #[test]
    fn select_star_expands() {
        let p = plan("SELECT * FROM R, S WHERE R.a = S.b").unwrap();
        assert_eq!(p.outputs.len(), 3);
        match &p.outputs[2] {
            OutputColumn::Column { name, index } => {
                assert_eq!(name, "S.c");
                assert_eq!(*index, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn windows_parse_units() {
        assert_eq!(parse_interval("1 second").unwrap(), VDuration::from_secs(1));
        assert_eq!(
            parse_interval("250 milliseconds").unwrap(),
            VDuration::from_millis(250)
        );
        assert_eq!(
            parse_interval("0.5 seconds").unwrap(),
            VDuration::from_millis(500)
        );
        assert_eq!(
            parse_interval("2 minutes").unwrap(),
            VDuration::from_secs(120)
        );
        assert_eq!(
            parse_interval("100 us").unwrap(),
            VDuration::from_micros(100)
        );
        assert!(parse_interval("").is_err());
        assert!(parse_interval("x seconds").is_err());
        assert!(parse_interval("1 fortnight").is_err());
        assert!(parse_interval("1 second extra").is_err());
        assert!(parse_interval("0 seconds").is_err());
        assert!(parse_interval("-1 seconds").is_err());
    }

    #[test]
    fn locate_column_maps_back() {
        let p = plan(PAPER_QUERY).unwrap();
        assert_eq!(p.locate_column(0), Some((0, 0)));
        assert_eq!(p.locate_column(2), Some((1, 1)));
        assert_eq!(p.locate_column(3), Some((2, 0)));
        assert_eq!(p.locate_column(9), None);
    }

    #[test]
    fn predicate_eval_semantics() {
        let p = CompiledPredicate {
            left: PredOperand::Col(0),
            op: CmpOp::Gt,
            right: PredOperand::Lit(Value::Int(5)),
        };
        assert!(p.eval(&Row::from_ints(&[6])));
        assert!(!p.eval(&Row::from_ints(&[5])));
        // NULL comparisons are false.
        assert!(!p.eval(&Row::new(vec![Value::Null])));
        // Incomparable types are false.
        assert!(!p.eval(&Row::new(vec![Value::Str("x".into())])));
        // Out-of-range column is false, not a panic.
        let p2 = CompiledPredicate {
            left: PredOperand::Col(9),
            op: CmpOp::Eq,
            right: PredOperand::Lit(Value::Int(1)),
        };
        assert!(!p2.eval(&Row::from_ints(&[1])));
    }
}
