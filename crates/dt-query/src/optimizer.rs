//! Join-order optimization.
//!
//! The paper chooses its join order by FROM position (§4.3) and flags
//! order selection over synopses as an open problem (§5.2, citing
//! Deshpande & Hellerstein's work on correlation-aware synopsis
//! optimization). This module supplies the classical answer for the
//! exact plan — and, because the shadow plan mirrors the exact plan's
//! join order, an optimized [`QueryPlan`] improves both paths.
//!
//! The optimizer enumerates left-deep stream permutations (queries
//! here join a handful of streams, so exhaustive enumeration is
//! cheap), estimates each order's cost as the sum of intermediate
//! cardinalities under the classic `1/max(d₁, d₂)` equijoin
//! selectivity model, and rebuilds the plan — join graph, combined
//! schema, residual predicates, GROUP BY, aggregates, outputs — for
//! the winning order. Results are unchanged by construction; an
//! equivalence property test in `dt-engine` pins that.

use dt_types::{DtError, DtResult, Schema};

use crate::plan::{
    CompiledPredicate, JoinGraph, OutputColumn, PredOperand, QueryPlan, StreamBinding,
};

/// Per-stream statistics driving cost estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Expected rows per window.
    pub cardinality: f64,
    /// Distinct values per column (same arity as the stream schema).
    pub distinct: Vec<f64>,
}

impl StreamStats {
    /// Uniform defaults: `rows` rows, every column with `distinct`
    /// distinct values.
    pub fn uniform(arity: usize, rows: f64, distinct: f64) -> Self {
        StreamStats {
            cardinality: rows,
            distinct: vec![distinct.max(1.0); arity],
        }
    }
}

/// One undirected equijoin edge between two streams' columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    stream_a: usize,
    col_a: usize,
    stream_b: usize,
    col_b: usize,
}

/// Estimated cost (sum of intermediate result cardinalities) of the
/// plan's current join order.
pub fn estimate_cost(plan: &QueryPlan, stats: &[StreamStats]) -> DtResult<f64> {
    let edges = extract_edges(plan)?;
    let order: Vec<usize> = (0..plan.streams.len()).collect();
    validate_stats(plan, stats)?;
    Ok(order_cost(&order, &edges, stats))
}

/// Reorder the plan's joins to (an) optimal left-deep order under the
/// given statistics. Plans with more than 8 streams are returned
/// unchanged (enumeration would be too expensive; a DP optimizer is
/// beyond this reproduction's needs).
pub fn optimize_join_order(plan: &QueryPlan, stats: &[StreamStats]) -> DtResult<QueryPlan> {
    validate_stats(plan, stats)?;
    let n = plan.streams.len();
    if n <= 1 || n > 8 {
        return Ok(plan.clone());
    }
    let edges = extract_edges(plan)?;
    let mut best: Vec<usize> = (0..n).collect();
    let mut best_cost = order_cost(&best, &edges, stats);
    let mut order: Vec<usize> = (0..n).collect();
    permute(&mut order, 0, &mut |candidate| {
        let cost = order_cost(candidate, &edges, stats);
        if cost < best_cost {
            best_cost = cost;
            best = candidate.to_vec();
        }
    });
    rebuild(plan, &best, &edges)
}

fn validate_stats(plan: &QueryPlan, stats: &[StreamStats]) -> DtResult<()> {
    if stats.len() != plan.streams.len() {
        return Err(DtError::plan(format!(
            "expected {} stream stats, got {}",
            plan.streams.len(),
            stats.len()
        )));
    }
    for (s, st) in plan.streams.iter().zip(stats) {
        if st.distinct.len() != s.schema.arity() {
            return Err(DtError::plan(format!(
                "stats for stream '{}' have {} columns, schema has {}",
                s.alias,
                st.distinct.len(),
                s.schema.arity()
            )));
        }
    }
    Ok(())
}

/// Recover the undirected equijoin edge list from the plan's
/// left-deep join graph.
fn extract_edges(plan: &QueryPlan) -> DtResult<Vec<Edge>> {
    let mut edges = Vec::new();
    for (j, conds) in plan.join_graph.steps.iter().enumerate() {
        for &(global, local) in conds {
            let (stream_a, col_a) = plan
                .locate_column(global)
                .ok_or_else(|| DtError::plan(format!("dangling join column {global}")))?;
            edges.push(Edge {
                stream_a,
                col_a,
                stream_b: j + 1,
                col_b: local,
            });
        }
    }
    Ok(edges)
}

/// Classic System-R style cost: accumulate left-deep, intermediate
/// cardinality = |acc| · |next| · Π 1/max(d_left, d_right) over the
/// edges connecting `next` to the accumulated prefix; cost = sum of
/// intermediates (the final result size is identical across orders
/// and included uniformly).
fn order_cost(order: &[usize], edges: &[Edge], stats: &[StreamStats]) -> f64 {
    let mut card = stats[order[0]].cardinality;
    let mut cost = 0.0;
    for (pos, &next) in order.iter().enumerate().skip(1) {
        let prefix = &order[..pos];
        let mut selectivity = 1.0;
        for e in edges {
            let connects = (e.stream_b == next && prefix.contains(&e.stream_a))
                || (e.stream_a == next && prefix.contains(&e.stream_b));
            if connects {
                let (da, db) = (
                    stats[e.stream_a].distinct[e.col_a],
                    stats[e.stream_b].distinct[e.col_b],
                );
                selectivity /= da.max(db).max(1.0);
            }
        }
        card = card * stats[next].cardinality * selectivity;
        cost += card;
    }
    cost
}

/// Heap-style permutation enumeration (calls `f` on every order).
fn permute(arr: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == arr.len() {
        f(arr);
        return;
    }
    for i in k..arr.len() {
        arr.swap(k, i);
        permute(arr, k + 1, f);
        arr.swap(k, i);
    }
}

/// Rebuild the plan for a new stream order, remapping every
/// combined-row column index.
fn rebuild(plan: &QueryPlan, order: &[usize], edges: &[Edge]) -> DtResult<QueryPlan> {
    // New bindings with recomputed offsets.
    let mut streams: Vec<StreamBinding> = Vec::with_capacity(order.len());
    let mut offset = 0;
    for &old in order {
        let mut b = plan.streams[old].clone();
        b.offset = offset;
        offset += b.schema.arity();
        streams.push(b);
    }
    // position of each old stream in the new order.
    let mut new_pos = vec![0usize; order.len()];
    for (pos, &old) in order.iter().enumerate() {
        new_pos[old] = pos;
    }
    // Old combined index → new combined index.
    let remap = |old_combined: usize| -> DtResult<usize> {
        let (old_stream, local) = plan
            .locate_column(old_combined)
            .ok_or_else(|| DtError::plan(format!("dangling column {old_combined}")))?;
        Ok(streams[new_pos[old_stream]].offset + local)
    };

    // Join graph: every edge attaches to the later stream's step.
    let mut steps: Vec<Vec<(usize, usize)>> = vec![Vec::new(); order.len().saturating_sub(1)];
    for e in edges {
        let (pa, pb) = (new_pos[e.stream_a], new_pos[e.stream_b]);
        let (early, late) = if pa < pb {
            ((e.stream_a, e.col_a), (e.stream_b, e.col_b))
        } else {
            ((e.stream_b, e.col_b), (e.stream_a, e.col_a))
        };
        let global = streams[new_pos[early.0]].offset + early.1;
        let late_pos = new_pos[late.0];
        if late_pos == 0 {
            return Err(DtError::plan("join edge within a single stream"));
        }
        steps[late_pos - 1].push((global, late.1));
    }

    let mut combined_schema = Schema::empty();
    for s in &streams {
        combined_schema = combined_schema.concat(&s.schema);
    }

    let remap_operand = |o: &PredOperand| -> DtResult<PredOperand> {
        Ok(match o {
            PredOperand::Col(i) => PredOperand::Col(remap(*i)?),
            PredOperand::Lit(v) => PredOperand::Lit(v.clone()),
        })
    };
    let residual = plan
        .residual
        .iter()
        .map(|p| {
            Ok(CompiledPredicate {
                left: remap_operand(&p.left)?,
                op: p.op,
                right: remap_operand(&p.right)?,
            })
        })
        .collect::<DtResult<Vec<_>>>()?;
    let group_by = plan
        .group_by
        .iter()
        .map(|&i| remap(i))
        .collect::<DtResult<Vec<_>>>()?;
    let aggregates = plan
        .aggregates
        .iter()
        .map(|a| {
            Ok(crate::plan::AggSpec {
                func: a.func,
                arg: a.arg.map(remap).transpose()?,
                name: a.name.clone(),
            })
        })
        .collect::<DtResult<Vec<_>>>()?;
    let outputs = plan
        .outputs
        .iter()
        .map(|o| {
            Ok(match o {
                OutputColumn::Column { index, name } => OutputColumn::Column {
                    index: remap(*index)?,
                    name: name.clone(),
                },
                OutputColumn::Aggregate { agg_index } => OutputColumn::Aggregate {
                    agg_index: *agg_index,
                },
            })
        })
        .collect::<DtResult<Vec<_>>>()?;

    Ok(QueryPlan {
        streams,
        join_graph: JoinGraph { steps },
        residual,
        group_by,
        aggregates,
        having: plan.having.clone(),
        outputs,
        distinct: plan.distinct,
        combined_schema,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use crate::plan::{Catalog, Planner};
    use dt_types::{DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        c.add_stream(
            "S",
            Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
        );
        c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
        c
    }

    fn paper_plan() -> QueryPlan {
        Planner::new(&catalog())
            .plan(
                &parse_select(
                    "SELECT a, COUNT(*) as n FROM R,S,T \
                     WHERE R.a = S.b AND S.c = T.d GROUP BY a",
                )
                .unwrap(),
            )
            .unwrap()
    }

    #[test]
    fn stats_validation() {
        let p = paper_plan();
        assert!(estimate_cost(&p, &[]).is_err());
        let bad = vec![
            StreamStats::uniform(2, 10.0, 5.0), // wrong arity for R
            StreamStats::uniform(2, 10.0, 5.0),
            StreamStats::uniform(1, 10.0, 5.0),
        ];
        assert!(estimate_cost(&p, &bad).is_err());
    }

    #[test]
    fn cost_prefers_small_streams_first() {
        let p = paper_plan();
        // R is huge; S and T are small: joining S ⋈ T first is cheaper.
        let stats = vec![
            StreamStats::uniform(1, 10_000.0, 100.0), // R
            StreamStats::uniform(2, 10.0, 10.0),      // S
            StreamStats::uniform(1, 10.0, 10.0),      // T
        ];
        let optimized = optimize_join_order(&p, &stats).unwrap();
        // The first stream in the optimized order is not R.
        assert_ne!(optimized.streams[0].stream, "R");
        let before = estimate_cost(&p, &stats).unwrap();
        // Cost under the optimized order, measured with stats permuted
        // to the new stream positions.
        let permuted: Vec<StreamStats> = optimized
            .streams
            .iter()
            .map(|b| match b.stream.as_str() {
                "R" => stats[0].clone(),
                "S" => stats[1].clone(),
                _ => stats[2].clone(),
            })
            .collect();
        let after = estimate_cost(&optimized, &permuted).unwrap();
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn rebuilt_plan_is_well_formed() {
        let p = paper_plan();
        let stats = vec![
            StreamStats::uniform(1, 10_000.0, 100.0),
            StreamStats::uniform(2, 10.0, 10.0),
            StreamStats::uniform(1, 10.0, 10.0),
        ];
        let o = optimize_join_order(&p, &stats).unwrap();
        // Same streams, contiguous offsets, full join connectivity.
        assert_eq!(o.streams.len(), 3);
        let mut expected_offset = 0;
        for s in &o.streams {
            assert_eq!(s.offset, expected_offset);
            expected_offset += s.schema.arity();
        }
        assert_eq!(o.combined_schema.arity(), 4);
        assert_eq!(o.join_graph.steps.len(), 2);
        let total_conds: usize = o.join_graph.steps.iter().map(Vec::len).sum();
        assert_eq!(total_conds, 2);
        // Each step's left column index lies before the step's stream.
        for (j, conds) in o.join_graph.steps.iter().enumerate() {
            for &(g, l) in conds {
                assert!(g < o.streams[j + 1].offset, "left col after stream");
                assert!(l < o.streams[j + 1].schema.arity());
            }
        }
        // Group-by column still names R.a.
        assert_eq!(
            o.combined_schema
                .field(o.group_by[0])
                .unwrap()
                .qualified_name(),
            "R.a"
        );
    }

    #[test]
    fn balanced_stats_keep_original_order() {
        let p = paper_plan();
        let stats = vec![
            StreamStats::uniform(1, 100.0, 50.0),
            StreamStats::uniform(2, 100.0, 50.0),
            StreamStats::uniform(1, 100.0, 50.0),
        ];
        let o = optimize_join_order(&p, &stats).unwrap();
        // All orders tie; strict improvement is required to move off
        // the original, so FROM order survives (determinism).
        let names: Vec<&str> = o.streams.iter().map(|s| s.stream.as_str()).collect();
        assert_eq!(names, vec!["R", "S", "T"]);
    }

    #[test]
    fn single_stream_is_identity() {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        let p = Planner::new(&c)
            .plan(&parse_select("SELECT a, COUNT(*) FROM R GROUP BY a").unwrap())
            .unwrap();
        let o = optimize_join_order(&p, &[StreamStats::uniform(1, 5.0, 5.0)]).unwrap();
        assert_eq!(o, p);
    }

    #[test]
    fn residuals_and_outputs_remap() {
        let p = Planner::new(&catalog())
            .plan(
                &parse_select(
                    "SELECT S.c FROM R, S, T \
                     WHERE R.a = S.b AND S.c = T.d AND S.c > 5",
                )
                .unwrap(),
            )
            .unwrap();
        let stats = vec![
            StreamStats::uniform(1, 10_000.0, 100.0),
            StreamStats::uniform(2, 10.0, 10.0),
            StreamStats::uniform(1, 10.0, 10.0),
        ];
        let o = optimize_join_order(&p, &stats).unwrap();
        // The residual predicate still references S.c.
        let PredOperand::Col(c) = o.residual[0].left else {
            panic!("expected column operand");
        };
        assert_eq!(o.combined_schema.field(c).unwrap().qualified_name(), "S.c");
        // The output column too.
        let OutputColumn::Column { index, .. } = &o.outputs[0] else {
            panic!("expected column output");
        };
        assert_eq!(
            o.combined_schema.field(*index).unwrap().qualified_name(),
            "S.c"
        );
    }
}
