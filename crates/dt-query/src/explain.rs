//! `EXPLAIN`-style plan rendering.
//!
//! Renders a [`QueryPlan`] as an indented operator tree, the way a
//! database's `EXPLAIN` does — used by `dtsim --explain` and handy in
//! test failure messages.

use std::fmt::Write;

use crate::ast::Aggregate;
use crate::plan::{OutputColumn, PredOperand, QueryPlan};

/// Render the plan as a multi-line operator tree.
pub fn explain(plan: &QueryPlan) -> String {
    let mut out = String::new();
    let mut indent = 0usize;
    let line = |out: &mut String, indent: usize, text: String| {
        let _ = writeln!(out, "{}{}", "  ".repeat(indent), text);
    };

    // Top: projection / aggregation.
    if plan.is_aggregating() || !plan.group_by.is_empty() {
        let aggs: Vec<String> = plan
            .aggregates
            .iter()
            .map(|a| {
                let func = match a.func {
                    Aggregate::Count => "COUNT",
                    Aggregate::Sum => "SUM",
                    Aggregate::Avg => "AVG",
                    Aggregate::Min => "MIN",
                    Aggregate::Max => "MAX",
                };
                let arg = match a.arg {
                    Some(i) => col_name(plan, i),
                    None => "*".to_string(),
                };
                format!("{func}({arg}) AS {}", a.name)
            })
            .collect();
        let keys: Vec<String> = plan.group_by.iter().map(|&i| col_name(plan, i)).collect();
        line(
            &mut out,
            indent,
            format!(
                "Aggregate [{}] GROUP BY [{}]",
                aggs.join(", "),
                keys.join(", ")
            ),
        );
        indent += 1;
        if !plan.having.is_empty() {
            let conds: Vec<String> = plan
                .having
                .iter()
                .map(|h| format!("{} {} {}", plan.aggregates[h.agg_index].name, h.op, h.value))
                .collect();
            line(
                &mut out,
                indent,
                format!("Having [{}]", conds.join(" AND ")),
            );
            indent += 1;
        }
    } else {
        let cols: Vec<String> = plan
            .outputs
            .iter()
            .filter_map(|o| match o {
                OutputColumn::Column { name, .. } => Some(name.clone()),
                OutputColumn::Aggregate { .. } => None,
            })
            .collect();
        let distinct = if plan.distinct { "Distinct " } else { "" };
        line(
            &mut out,
            indent,
            format!("{distinct}Project [{}]", cols.join(", ")),
        );
        indent += 1;
    }

    // Residual filter.
    if !plan.residual.is_empty() {
        let conds: Vec<String> = plan
            .residual
            .iter()
            .map(|p| {
                let side = |o: &PredOperand| match o {
                    PredOperand::Col(i) => col_name(plan, *i),
                    PredOperand::Lit(v) => v.to_string(),
                };
                format!("{} {} {}", side(&p.left), p.op, side(&p.right))
            })
            .collect();
        line(
            &mut out,
            indent,
            format!("Filter [{}]", conds.join(" AND ")),
        );
        indent += 1;
    }

    // Join tree (left-deep), innermost last.
    for j in (1..plan.streams.len()).rev() {
        let conds = &plan.join_graph.steps[j - 1];
        let desc = if conds.is_empty() {
            "CrossJoin".to_string()
        } else {
            let pairs: Vec<String> = conds
                .iter()
                .map(|&(g, l)| {
                    format!(
                        "{} = {}",
                        col_name(plan, g),
                        col_name(plan, plan.streams[j].offset + l)
                    )
                })
                .collect();
            format!("HashJoin [{}]", pairs.join(" AND "))
        };
        line(&mut out, indent, desc);
        indent += 1;
        line(&mut out, indent, scan_line(plan, j));
    }
    line(&mut out, indent, scan_line(plan, 0));
    out
}

fn scan_line(plan: &QueryPlan, stream: usize) -> String {
    let b = &plan.streams[stream];
    let alias = if b.alias == b.stream {
        String::new()
    } else {
        format!(" AS {}", b.alias)
    };
    let w = b.window;
    let window = if w.is_tumbling() {
        format!("window {}", w.width())
    } else {
        format!("window {} slide {}", w.width(), w.slide())
    };
    format!("StreamScan {}{} [{}]", b.stream, alias, window)
}

fn col_name(plan: &QueryPlan, combined: usize) -> String {
    plan.combined_schema
        .field(combined)
        .map(|f| f.qualified_name())
        .unwrap_or_else(|| format!("#{combined}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use crate::plan::{Catalog, Planner};
    use dt_types::{DataType, Schema};

    fn plan(sql: &str) -> QueryPlan {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        c.add_stream(
            "S",
            Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
        );
        c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
        Planner::new(&c).plan(&parse_select(sql).unwrap()).unwrap()
    }

    #[test]
    fn explains_the_paper_query() {
        let text = explain(&plan(
            "SELECT a, COUNT(*) as count FROM R,S,T \
             WHERE R.a = S.b AND S.c = T.d GROUP BY a \
             WINDOW R['1 second'], S['1 second'], T['1 second']",
        ));
        assert_eq!(
            text,
            "Aggregate [COUNT(*) AS count] GROUP BY [R.a]\n\
             \x20\x20HashJoin [S.c = T.d]\n\
             \x20\x20\x20\x20StreamScan T [window 1.000000s]\n\
             \x20\x20\x20\x20HashJoin [R.a = S.b]\n\
             \x20\x20\x20\x20\x20\x20StreamScan S [window 1.000000s]\n\
             \x20\x20\x20\x20\x20\x20StreamScan R [window 1.000000s]\n"
        );
    }

    #[test]
    fn explains_filters_having_and_hopping() {
        let text = explain(&plan(
            "SELECT b, COUNT(*) FROM S WHERE S.c > 5 GROUP BY b \
             HAVING COUNT(*) >= 2 WINDOW S['2 seconds', '1 second']",
        ));
        assert!(text.contains("Having [COUNT(*) >= 2]"), "{text}");
        assert!(text.contains("Filter [S.c > 5]"), "{text}");
        assert!(text.contains("window 2.000000s slide 1.000000s"), "{text}");
    }

    #[test]
    fn explains_distinct_projection_and_alias() {
        let text = explain(&plan("SELECT DISTINCT x.a FROM R x, T WHERE x.a = T.d"));
        assert!(text.starts_with("Distinct Project [x.a]"), "{text}");
        assert!(text.contains("StreamScan R AS x"), "{text}");
    }

    #[test]
    fn explains_cross_join() {
        let text = explain(&plan("SELECT * FROM R, T"));
        assert!(text.contains("CrossJoin"), "{text}");
    }
}
