//! Abstract syntax for the continuous-query dialect.

use std::fmt;

use dt_types::Value;

/// An (optionally qualified) column reference, e.g. `R.a` or `a`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Stream name or alias.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl ColumnRef {
    /// Bare column.
    pub fn bare(name: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Qualified column.
    pub fn qualified(q: impl Into<String>, name: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: Some(q.into()),
            name: name.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// `COUNT(*)` or `COUNT(col)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)`.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Aggregate::Count => "COUNT",
            Aggregate::Sum => "SUM",
            Aggregate::Avg => "AVG",
            Aggregate::Min => "MIN",
            Aggregate::Max => "MAX",
        };
        write!(f, "{s}")
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// A plain column, optionally aliased.
    Column {
        /// The column.
        column: ColumnRef,
        /// `AS alias`.
        alias: Option<String>,
    },
    /// An aggregate call, optionally aliased. `arg == None` means
    /// `COUNT(*)`.
    Aggregate {
        /// Which aggregate.
        func: Aggregate,
        /// Argument column; `None` only for `COUNT(*)`.
        arg: Option<ColumnRef>,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A FROM-list entry: a stream with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Stream name in the catalog.
    pub stream: String,
    /// Alias (`FROM R AS x` / `FROM R x`); defaults to the stream name.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this stream answers to in column qualifiers.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.stream)
    }
}

/// Comparison operators in WHERE predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate against an [`std::cmp::Ordering`].
    pub fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Neq => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A column reference.
    Column(ColumnRef),
    /// A literal value.
    Literal(Value),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Column(c) => write!(f, "{c}"),
            Operand::Literal(v) => write!(f, "{v}"),
        }
    }
}

/// A single conjunct of the WHERE clause: `left op right`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Left operand.
    pub left: Operand,
    /// Comparison.
    pub op: CmpOp,
    /// Right operand.
    pub right: Operand,
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// A per-stream window clause: `WINDOW R['1 second']` (tumbling) or
/// `WINDOW R['4 seconds', '1 second']` (hopping: width, slide).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowClause {
    /// Stream alias the clause applies to.
    pub stream: String,
    /// The width interval text, e.g. `1 second`.
    pub interval: String,
    /// Optional slide interval text; `None` = tumbling.
    pub slide: Option<String>,
}

/// One HAVING conjunct: an aggregate compared to a numeric literal,
/// e.g. `HAVING COUNT(*) > 5`.
#[derive(Debug, Clone, PartialEq)]
pub struct HavingClause {
    /// The aggregate on the left.
    pub func: Aggregate,
    /// Aggregate argument (`None` for `COUNT(*)`).
    pub arg: Option<ColumnRef>,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand literal.
    pub value: f64,
}

impl fmt::Display for HavingClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            Some(c) => write!(f, "{}({c}) {} {}", self.func, self.op, self.value),
            None => write!(f, "{}(*) {} {}", self.func, self.op, self.value),
        }
    }
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// SELECT-list items in order.
    pub items: Vec<SelectItem>,
    /// FROM-list streams in order (this order is also the join order,
    /// as in paper §4.3).
    pub from: Vec<TableRef>,
    /// WHERE conjuncts.
    pub predicates: Vec<Predicate>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// HAVING conjuncts.
    pub having: Vec<HavingClause>,
    /// WINDOW clauses.
    pub windows: Vec<WindowClause>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn cmp_op_matches() {
        assert!(CmpOp::Eq.matches(Ordering::Equal));
        assert!(!CmpOp::Eq.matches(Ordering::Less));
        assert!(CmpOp::Neq.matches(Ordering::Greater));
        assert!(CmpOp::Lt.matches(Ordering::Less));
        assert!(CmpOp::Le.matches(Ordering::Equal));
        assert!(CmpOp::Gt.matches(Ordering::Greater));
        assert!(CmpOp::Ge.matches(Ordering::Equal));
        assert!(!CmpOp::Ge.matches(Ordering::Less));
    }

    #[test]
    fn cmp_op_flip() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flipped(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
        assert_eq!(CmpOp::Neq.flipped(), CmpOp::Neq);
    }

    #[test]
    fn display_forms() {
        let p = Predicate {
            left: Operand::Column(ColumnRef::qualified("R", "a")),
            op: CmpOp::Le,
            right: Operand::Literal(Value::Int(5)),
        };
        assert_eq!(p.to_string(), "R.a <= 5");
        assert_eq!(ColumnRef::bare("x").to_string(), "x");
        assert_eq!(Aggregate::Count.to_string(), "COUNT");
    }

    #[test]
    fn table_ref_binding() {
        let t = TableRef {
            stream: "R".into(),
            alias: None,
        };
        assert_eq!(t.binding_name(), "R");
        let t = TableRef {
            stream: "R".into(),
            alias: Some("x".into()),
        };
        assert_eq!(t.binding_name(), "x");
    }
}
