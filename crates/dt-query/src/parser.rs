//! Recursive-descent parser for the continuous-query dialect.

use dt_types::{DtError, DtResult, Value};

use crate::ast::{
    Aggregate, CmpOp, ColumnRef, HavingClause, Operand, Predicate, SelectItem, SelectStatement,
    TableRef, WindowClause,
};
use crate::lexer::{Lexer, Token, TokenKind};

/// Parse a single `SELECT` statement (optionally `;`-terminated).
///
/// ```
/// use dt_query::parse_select;
///
/// let stmt = parse_select(
///     "SELECT a, COUNT(*) as count FROM R,S,T \
///      WHERE R.a = S.b AND S.c = T.d GROUP BY a \
///      WINDOW R['1 second'], S['1 second'], T['1 second']",
/// )?;
/// assert_eq!(stmt.from.len(), 3);
/// assert_eq!(stmt.predicates.len(), 2);
/// assert_eq!(stmt.windows[0].interval, "1 second");
/// # Ok::<(), dt_types::DtError>(())
/// ```
pub fn parse_select(src: &str) -> DtResult<SelectStatement> {
    // Lexer and parser errors carry byte offsets; stamp the 1-based
    // line/column here, the one place the source text is in hand, so
    // wire-returned compile errors point at the offending token.
    let located = |e: DtError| e.located_in(src);
    let tokens = Lexer::new(src).tokenize().map_err(located)?;
    let mut p = Parser { tokens, idx: 0 };
    let parse = |p: &mut Parser| -> DtResult<SelectStatement> {
        let stmt = p.select_statement()?;
        p.eat_if(&TokenKind::Semicolon);
        p.expect_eof()?;
        Ok(stmt)
    };
    parse(&mut p).map_err(located)
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.idx].kind
    }

    fn position(&self) -> usize {
        self.tokens[self.idx].position
    }

    fn advance(&mut self) -> TokenKind {
        let k = self.tokens[self.idx].kind.clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        k
    }

    fn error(&self, msg: impl Into<String>) -> DtError {
        DtError::parse_at(msg, self.position())
    }

    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if k == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> DtResult<()> {
        if self.eat_if(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> DtResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> DtResult<()> {
        if self.peek() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(self.error(format!("trailing input: {:?}", self.peek())))
        }
    }

    /// An identifier; keywords are accepted where the grammar is
    /// unambiguous (e.g. `AS count`).
    fn name(&mut self, what: &str) -> DtResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            TokenKind::Keyword(k) => {
                self.advance();
                Ok(k.to_ascii_lowercase())
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn column_ref(&mut self) -> DtResult<ColumnRef> {
        let first = self.name("column name")?;
        if self.eat_if(&TokenKind::Dot) {
            let second = self.name("column name after '.'")?;
            Ok(ColumnRef::qualified(first, second))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }

    fn select_statement(&mut self) -> DtResult<SelectStatement> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let items = self.select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.table_list()?;
        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            predicates.push(self.predicate()?);
            while self.eat_keyword("AND") {
                predicates.push(self.predicate()?);
            }
        }
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.column_ref()?);
            while self.eat_if(&TokenKind::Comma) {
                group_by.push(self.column_ref()?);
            }
        }
        let mut having = Vec::new();
        if self.eat_keyword("HAVING") {
            having.push(self.having_clause()?);
            while self.eat_keyword("AND") {
                having.push(self.having_clause()?);
            }
        }
        let mut windows = Vec::new();
        // Both `WINDOW R['1 s']` after GROUP BY (Fig. 7 places it after
        // a semicolon in the paper's listing; we accept it as a clause).
        if self.eat_keyword("WINDOW") {
            windows.push(self.window_clause()?);
            while self.eat_if(&TokenKind::Comma) {
                windows.push(self.window_clause()?);
            }
        }
        Ok(SelectStatement {
            distinct,
            items,
            from,
            predicates,
            group_by,
            having,
            windows,
        })
    }

    fn having_clause(&mut self) -> DtResult<HavingClause> {
        let func = match self.advance() {
            TokenKind::Keyword(k) => match k.as_str() {
                "COUNT" => Aggregate::Count,
                "SUM" => Aggregate::Sum,
                "AVG" => Aggregate::Avg,
                "MIN" => Aggregate::Min,
                "MAX" => Aggregate::Max,
                other => {
                    return Err(self.error(format!("expected aggregate in HAVING, found {other}")))
                }
            },
            other => {
                return Err(self.error(format!("expected aggregate in HAVING, found {other:?}")))
            }
        };
        self.expect(&TokenKind::LParen, "'('")?;
        let arg = if self.eat_if(&TokenKind::Star) {
            if func != Aggregate::Count {
                return Err(self.error(format!("{func}(*) is not valid")));
            }
            None
        } else {
            Some(self.column_ref()?)
        };
        self.expect(&TokenKind::RParen, "')'")?;
        let op = match self.advance() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Neq => CmpOp::Neq,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => {
                return Err(self.error(format!("expected comparison in HAVING, found {other:?}")))
            }
        };
        let value = match self.advance() {
            TokenKind::Int(i) => i as f64,
            TokenKind::Float(f) => f,
            other => {
                return Err(self.error(format!(
                    "expected numeric literal in HAVING, found {other:?}"
                )))
            }
        };
        Ok(HavingClause {
            func,
            arg,
            op,
            value,
        })
    }

    fn select_list(&mut self) -> DtResult<Vec<SelectItem>> {
        let mut items = vec![self.select_item()?];
        while self.eat_if(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> DtResult<SelectItem> {
        if self.eat_if(&TokenKind::Star) {
            return Ok(SelectItem::Star);
        }
        // Aggregate?
        let agg = match self.peek() {
            TokenKind::Keyword(k) => match k.as_str() {
                "COUNT" => Some(Aggregate::Count),
                "SUM" => Some(Aggregate::Sum),
                "AVG" => Some(Aggregate::Avg),
                "MIN" => Some(Aggregate::Min),
                "MAX" => Some(Aggregate::Max),
                _ => None,
            },
            _ => None,
        };
        if let Some(func) = agg {
            // Only treat as an aggregate if followed by '(' — `count`
            // can also be a column alias or name.
            if self.tokens.get(self.idx + 1).map(|t| &t.kind) == Some(&TokenKind::LParen) {
                self.advance(); // keyword
                self.advance(); // (
                let arg = if self.eat_if(&TokenKind::Star) {
                    if func != Aggregate::Count {
                        return Err(self.error(format!("{func}(*) is not valid")));
                    }
                    None
                } else {
                    Some(self.column_ref()?)
                };
                self.expect(&TokenKind::RParen, "')'")?;
                let alias = self.alias()?;
                return Ok(SelectItem::Aggregate { func, arg, alias });
            }
        }
        let column = self.column_ref()?;
        let alias = self.alias()?;
        Ok(SelectItem::Column { column, alias })
    }

    fn alias(&mut self) -> DtResult<Option<String>> {
        if self.eat_keyword("AS") {
            Ok(Some(self.name("alias")?))
        } else {
            Ok(None)
        }
    }

    fn table_list(&mut self) -> DtResult<Vec<TableRef>> {
        let mut out = vec![self.table_ref()?];
        while self.eat_if(&TokenKind::Comma) {
            out.push(self.table_ref()?);
        }
        Ok(out)
    }

    fn table_ref(&mut self) -> DtResult<TableRef> {
        let stream = self.name("stream name")?;
        // `R AS x`, `R x`, or bare `R`.
        let alias = if self.eat_keyword("AS") {
            Some(self.name("alias")?)
        } else if let TokenKind::Ident(s) = self.peek().clone() {
            self.advance();
            Some(s)
        } else {
            None
        };
        Ok(TableRef { stream, alias })
    }

    fn predicate(&mut self) -> DtResult<Predicate> {
        let left = self.operand()?;
        let op = match self.advance() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Neq => CmpOp::Neq,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => {
                return Err(self.error(format!("expected comparison operator, found {other:?}")))
            }
        };
        let right = self.operand()?;
        Ok(Predicate { left, op, right })
    }

    fn operand(&mut self) -> DtResult<Operand> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.advance();
                Ok(Operand::Literal(Value::Int(i)))
            }
            TokenKind::Float(f) => {
                self.advance();
                Ok(Operand::Literal(Value::Float(f)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Operand::Literal(Value::Str(s)))
            }
            TokenKind::Ident(_) | TokenKind::Keyword(_) => Ok(Operand::Column(self.column_ref()?)),
            other => Err(self.error(format!("expected operand, found {other:?}"))),
        }
    }

    fn window_clause(&mut self) -> DtResult<WindowClause> {
        let stream = self.name("stream name")?;
        self.expect(&TokenKind::LBracket, "'['")?;
        let interval = match self.advance() {
            TokenKind::Str(s) => s,
            other => return Err(self.error(format!("expected interval string, found {other:?}"))),
        };
        // Optional second interval: the hop (slide) of a hopping
        // window.
        let slide = if self.eat_if(&TokenKind::Comma) {
            match self.advance() {
                TokenKind::Str(s) => Some(s),
                other => {
                    return Err(
                        self.error(format!("expected slide interval string, found {other:?}"))
                    )
                }
            }
        } else {
            None
        };
        self.expect(&TokenKind::RBracket, "']'")?;
        Ok(WindowClause {
            stream,
            interval,
            slide,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_query() {
        let q = parse_select(
            "SELECT a, COUNT(*) as count FROM R,S,T \
             WHERE R.a = S.b AND S.c = T.d GROUP BY a \
             WINDOW R['1 second'], S['1 second'], T['1 second'];",
        )
        .unwrap();
        assert!(!q.distinct);
        assert_eq!(q.items.len(), 2);
        assert_eq!(
            q.items[0],
            SelectItem::Column {
                column: ColumnRef::bare("a"),
                alias: None
            }
        );
        assert_eq!(
            q.items[1],
            SelectItem::Aggregate {
                func: Aggregate::Count,
                arg: None,
                alias: Some("count".into())
            }
        );
        assert_eq!(q.from.len(), 3);
        assert_eq!(q.from[1].stream, "S");
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.predicates[0].to_string(), "R.a = S.b");
        assert_eq!(q.group_by, vec![ColumnRef::bare("a")]);
        assert_eq!(q.windows.len(), 3);
        assert_eq!(q.windows[2].stream, "T");
        assert_eq!(q.windows[2].interval, "1 second");
    }

    #[test]
    fn parses_distinct() {
        let q = parse_select("SELECT DISTINCT a FROM R").unwrap();
        assert!(q.distinct);
    }

    #[test]
    fn parses_star() {
        let q = parse_select("SELECT * FROM R, S WHERE R.a = S.b").unwrap();
        assert_eq!(q.items, vec![SelectItem::Star]);
        assert!(q.windows.is_empty());
    }

    #[test]
    fn parses_aliases() {
        let q = parse_select("SELECT x.a FROM R AS x, S y WHERE x.a = y.b").unwrap();
        assert_eq!(q.from[0].binding_name(), "x");
        assert_eq!(q.from[1].binding_name(), "y");
    }

    #[test]
    fn parses_all_aggregates() {
        let q = parse_select("SELECT COUNT(a), SUM(b), AVG(c), MIN(d), MAX(e) FROM R GROUP BY f")
            .unwrap();
        let funcs: Vec<Aggregate> = q
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Aggregate { func, .. } => *func,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(
            funcs,
            vec![
                Aggregate::Count,
                Aggregate::Sum,
                Aggregate::Avg,
                Aggregate::Min,
                Aggregate::Max
            ]
        );
    }

    #[test]
    fn parses_literal_predicates() {
        let q = parse_select("SELECT a FROM R WHERE a > 5 AND b <= 2.5 AND c = 'x'").unwrap();
        assert_eq!(q.predicates.len(), 3);
        assert_eq!(q.predicates[0].to_string(), "a > 5");
        assert_eq!(q.predicates[2].to_string(), "c = 'x'");
    }

    #[test]
    fn count_star_only() {
        assert!(parse_select("SELECT SUM(*) FROM R").is_err());
    }

    #[test]
    fn a_column_may_be_named_like_a_keyword() {
        // `count` as a plain column reference.
        let q = parse_select("SELECT count FROM R").unwrap();
        assert_eq!(
            q.items[0],
            SelectItem::Column {
                column: ColumnRef::bare("count"),
                alias: None
            }
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_select("SELEKT a FROM R").is_err());
        assert!(parse_select("SELECT a").is_err());
        assert!(parse_select("SELECT a FROM R WHERE").is_err());
        assert!(parse_select("SELECT a FROM R GROUP a").is_err());
        assert!(parse_select("SELECT a FROM R WINDOW R[5]").is_err());
        assert!(parse_select("SELECT a FROM R extra garbage here").is_err());
        assert!(parse_select("SELECT a FROM R WHERE a ** 3").is_err());
    }

    #[test]
    fn errors_carry_line_and_column() {
        // The failure is on line 2: the parser wants an operand after
        // the dangling comparison.
        let err = parse_select("SELECT a\nFROM R WHERE a >").unwrap_err();
        match &err {
            DtError::Parse { line, column, .. } => {
                assert_eq!(*line, 2, "{err}");
                assert!(*column > 1, "{err}");
            }
            other => panic!("{other}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("line 2, column"), "{msg}");
        // Lexer-level failures are located too.
        let msg = parse_select("SELECT a FROM R WHERE a ? 1")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("line 1, column 25"), "{msg}");
    }

    #[test]
    fn trailing_semicolon_optional() {
        assert!(parse_select("SELECT a FROM R").is_ok());
        assert!(parse_select("SELECT a FROM R;").is_ok());
    }
}
