//! Property tests for the query frontend: generated valid queries
//! parse and plan; display forms re-parse to the same AST; arbitrary
//! input never panics the lexer or parser.

use dt_query::{parse_select, Catalog, Planner};
use dt_types::{DataType, Schema};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    c.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    c
}

/// Generate a valid query over the R/S/T catalog.
fn arb_query() -> impl Strategy<Value = String> {
    let agg = prop_oneof![
        Just("COUNT(*)".to_string()),
        Just("SUM(S.c)".to_string()),
        Just("AVG(S.c)".to_string()),
        Just("MIN(S.c)".to_string()),
        Just("MAX(S.c)".to_string()),
    ];
    let pred = prop_oneof![
        Just("S.c > 5".to_string()),
        Just("S.c <= 50".to_string()),
        Just("S.b <> 3".to_string()),
        Just("S.c = 10".to_string()),
    ];
    // 0 = no WINDOW clause, otherwise an interval applied to exactly
    // the streams in the FROM list.
    let window = prop_oneof![
        Just(None),
        Just(Some("1 second")),
        Just(Some("250 milliseconds")),
    ];
    (agg, prop::option::of(pred), window, any::<bool>()).prop_map(
        |(agg, pred, interval, three_way)| {
            let (from, join, streams): (_, _, &[&str]) = if three_way {
                ("R,S,T", "R.a = S.b AND S.c = T.d", &["R", "S", "T"])
            } else {
                ("R,S", "R.a = S.b", &["R", "S"])
            };
            let where_clause = match pred {
                Some(p) => format!("WHERE {join} AND {p}"),
                None => format!("WHERE {join}"),
            };
            let window = match interval {
                None => String::new(),
                Some(iv) => {
                    let clauses: Vec<String> =
                        streams.iter().map(|s| format!("{s}['{iv}']")).collect();
                    format!(" WINDOW {}", clauses.join(", "))
                }
            };
            format!("SELECT a, {agg} as x FROM {from} {where_clause} GROUP BY a{window}")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every generated query parses, plans, and produces a consistent
    /// plan shape.
    #[test]
    fn generated_queries_parse_and_plan(sql in arb_query()) {
        let stmt = parse_select(&sql).unwrap();
        let plan = Planner::new(&catalog()).plan(&stmt).unwrap();
        prop_assert!(plan.streams.len() >= 2);
        prop_assert_eq!(plan.join_graph.steps.len(), plan.streams.len() - 1);
        prop_assert_eq!(plan.group_by.len(), 1);
        prop_assert_eq!(plan.aggregates.len(), 1);
        // Every join step of these queries has exactly one condition.
        for step in &plan.join_graph.steps {
            prop_assert_eq!(step.len(), 1);
        }
        // Combined schema covers all stream columns.
        let arity: usize = plan.streams.iter().map(|s| s.schema.arity()).sum();
        prop_assert_eq!(plan.combined_schema.arity(), arity);
    }

    /// The lexer and parser never panic on arbitrary input — they
    /// return structured errors.
    #[test]
    fn arbitrary_input_never_panics(input in "\\PC{0,120}") {
        let _ = parse_select(&input);
    }

    /// Arbitrary ASCII-ish garbage around a keyword skeleton never
    /// panics either (exercises deeper parser states than pure noise).
    #[test]
    fn structured_garbage_never_panics(
        a in "[a-zA-Z0-9_,.*()<>=' ]{0,40}",
        b in "[a-zA-Z0-9_,.*()<>=' ]{0,40}",
    ) {
        let _ = parse_select(&format!("SELECT {a} FROM {b}"));
    }

    /// Whitespace and case are irrelevant.
    #[test]
    fn whitespace_and_case_insensitivity(extra_ws in 1usize..5) {
        let ws = " ".repeat(extra_ws);
        let sql = format!(
            "select{ws}a,{ws}count(*){ws}from{ws}R,S{ws}where{ws}R.a{ws}={ws}S.b{ws}group{ws}by{ws}a"
        );
        let stmt = parse_select(&sql).unwrap();
        let canonical = parse_select(
            "SELECT a, COUNT(*) FROM R,S WHERE R.a = S.b GROUP BY a",
        ).unwrap();
        prop_assert_eq!(stmt, canonical);
    }
}
