//! The virtual-clock cost model.
//!
//! The paper ran on real hardware (a 1.4 GHz Pentium 3) and varied the
//! *data rate* until the engine could not keep up. We replace the
//! hardware with an explicit service-time model: processing one tuple
//! through the standard-case datapath occupies the engine for
//! [`CostModel::service_time`] of virtual time, and folding one tuple
//! into a synopsis costs [`CostModel::synopsis_insert_time`]. The
//! paper's observation that synopsis maintenance is "dwarfed by the
//! cost of standard-case query processing" (its Fig. 6 discussion)
//! translates to `synopsis_insert_time ≪ service_time`, which is the
//! default here.

use dt_types::{DtError, DtResult, VDuration};

/// Per-tuple costs of the simulated engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Virtual time the engine spends fully processing one tuple.
    pub service_time: VDuration,
    /// Virtual time to fold one tuple into a synopsis.
    pub synopsis_insert_time: VDuration,
}

impl Default for CostModel {
    /// The paper's default regime — 1000 tuples/s engine capacity
    /// (1 ms service time), synopsis insertion at 1/50 of that.
    /// Equivalent to `CostModel::from_capacity(1000.0)`, but
    /// infallible so configuration types can derive defaults without
    /// panicking.
    fn default() -> Self {
        CostModel {
            service_time: VDuration::from_millis(1),
            synopsis_insert_time: VDuration::from_micros(20),
        }
    }
}

impl CostModel {
    /// A model from the engine's sustainable throughput in
    /// tuples/second; synopsis insertion defaults to 1/50 of the
    /// per-tuple cost (the paper's "minimal overhead" regime).
    pub fn from_capacity(tuples_per_sec: f64) -> DtResult<Self> {
        if !(tuples_per_sec.is_finite() && tuples_per_sec > 0.0) {
            return Err(DtError::config(format!(
                "engine capacity must be positive, got {tuples_per_sec}"
            )));
        }
        let service = VDuration::from_secs_f64(1.0 / tuples_per_sec);
        if service.is_zero() {
            return Err(DtError::config(format!(
                "engine capacity {tuples_per_sec} tuples/s exceeds the virtual clock resolution"
            )));
        }
        Ok(CostModel {
            service_time: service,
            synopsis_insert_time: VDuration::from_micros((service.micros() / 50).max(1)),
        })
    }

    /// The sustainable throughput implied by `service_time`.
    pub fn capacity_tuples_per_sec(&self) -> f64 {
        1.0 / self.service_time.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_capacity() {
        assert_eq!(
            CostModel::default(),
            CostModel::from_capacity(1000.0).unwrap()
        );
    }

    #[test]
    fn capacity_roundtrips() {
        let m = CostModel::from_capacity(1000.0).unwrap();
        assert_eq!(m.service_time, VDuration::from_millis(1));
        assert!((m.capacity_tuples_per_sec() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn synopsis_insert_is_much_cheaper() {
        let m = CostModel::from_capacity(500.0).unwrap();
        assert!(m.synopsis_insert_time.micros() * 10 < m.service_time.micros());
        assert!(!m.synopsis_insert_time.is_zero());
    }

    #[test]
    fn invalid_capacity_rejected() {
        assert!(CostModel::from_capacity(0.0).is_err());
        assert!(CostModel::from_capacity(-5.0).is_err());
        assert!(CostModel::from_capacity(f64::NAN).is_err());
        assert!(CostModel::from_capacity(f64::INFINITY).is_err());
        // Faster than the virtual clock resolution can't be represented
        // (the sub-microsecond service time rounds to zero).
        assert!(CostModel::from_capacity(3e6).is_err());
    }
}
