//! Exact per-window query execution.

use dt_query::QueryPlan;
use dt_types::{DtError, DtResult, FxHashMap, FxHashSet, Row, Value};

use crate::aggregate::AggState;

/// One finished aggregate value plus the number of rows that
/// contributed to it — the extra count is what lets the merge stage
/// combine an exact `AVG` with an estimated one by re-weighting
/// (merged = (value·n + est_sum) / (n + est_count)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggValue {
    /// The aggregate's value (NaN for AVG/MIN/MAX of an empty group).
    pub value: f64,
    /// Rows that contributed (non-NULL arguments; all rows for
    /// `COUNT(*)`).
    pub n: u64,
}

/// The exact result of one window.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowOutput {
    /// Non-aggregating query: output rows (post-projection).
    Rows(Vec<Row>),
    /// Aggregating query: group key (values of the plan's GROUP BY
    /// columns, in order) → aggregate values (in
    /// [`QueryPlan::aggregates`] order).
    Groups(FxHashMap<Row, Vec<AggValue>>),
}

impl WindowOutput {
    /// Number of output rows / groups.
    pub fn len(&self) -> usize {
        match self {
            WindowOutput::Rows(r) => r.len(),
            WindowOutput::Groups(g) => g.len(),
        }
    }

    /// True if the window produced nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The groups map, if aggregating.
    pub fn groups(&self) -> Option<&FxHashMap<Row, Vec<AggValue>>> {
        match self {
            WindowOutput::Groups(g) => Some(g),
            WindowOutput::Rows(_) => None,
        }
    }
}

/// Execute the plan exactly over one window's worth of rows per
/// stream (`inputs[i]` holds stream `i`'s rows, FROM order).
///
/// Routes through the vectorized columnar executor
/// ([`crate::batch_exec::execute_window_cols`]) when every row matches
/// its stream's declared arity — the conversion is one column-build
/// pass and the result is bit-identical to the row path. Mis-shaped
/// rows (never produced by the triage pipeline, which validates arity
/// at ingest) take the row path unchanged.
pub fn execute_window(plan: &QueryPlan, inputs: &[Vec<Row>]) -> DtResult<WindowOutput> {
    if inputs.len() == plan.streams.len()
        && inputs.iter().zip(&plan.streams).all(|(rows, b)| {
            let arity = b.schema.arity();
            rows.iter().all(|r| r.arity() == arity)
        })
    {
        let batches: Vec<dt_types::ColumnBatch> = inputs
            .iter()
            .zip(&plan.streams)
            .map(|(rows, b)| dt_types::ColumnBatch::from_rows(b.schema.arity(), rows))
            .collect();
        let refs: Vec<&dt_types::ColumnBatch> = batches.iter().collect();
        return crate::batch_exec::execute_window_cols(plan, &refs);
    }
    let refs: Vec<&[Row]> = inputs.iter().map(Vec::as_slice).collect();
    execute_window_ref(plan, &refs)
}

/// Borrowing variant of [`execute_window`]: callers that hold each
/// stream's rows elsewhere (shared-stream pipelines, self-joins
/// reading one buffer from several FROM positions) pass slices and
/// skip the per-window row clones entirely.
pub fn execute_window_ref(plan: &QueryPlan, inputs: &[&[Row]]) -> DtResult<WindowOutput> {
    let by_ref: Vec<Vec<&Row>> = inputs.iter().map(|s| s.iter().collect()).collect();
    execute_window_rows(plan, &by_ref)
}

/// Fully borrowed variant: each stream's window is a list of row
/// *references*, so callers that already hold rows scattered elsewhere
/// (e.g. the offline ideal evaluator bucketing one arrival sequence
/// into many windows) never copy a row to execute over it.
pub fn execute_window_rows(plan: &QueryPlan, inputs: &[Vec<&Row>]) -> DtResult<WindowOutput> {
    if inputs.len() != plan.streams.len() {
        return Err(DtError::engine(format!(
            "expected {} window inputs, got {}",
            plan.streams.len(),
            inputs.len()
        )));
    }
    if plan.is_aggregating() || !plan.group_by.is_empty() {
        // Grouped aggregation, fed by the streaming join — the final
        // join step's output rows are never materialized. The group
        // key is probed with a scratch buffer first (rows borrow as
        // `[Value]`), so the common case — the group already exists —
        // allocates nothing per result row.
        let mut groups: FxHashMap<Row, Vec<AggState>> = FxHashMap::default();
        let mut key_scratch: Vec<Value> = Vec::with_capacity(plan.group_by.len());
        stream_results(plan, inputs, |row| {
            key_scratch.clear();
            row.project_into(&plan.group_by, &mut key_scratch);
            let states = match groups.get_mut(key_scratch.as_slice()) {
                Some(states) => states,
                None => groups
                    .entry(Row::new(std::mem::take(&mut key_scratch)))
                    .or_insert_with(|| plan.aggregates.iter().map(AggState::new).collect()),
            };
            for s in states {
                s.update(row);
            }
        });
        // Global aggregate over an empty window still yields one group.
        if groups.is_empty() && plan.group_by.is_empty() {
            groups.insert(
                Row::new(vec![]),
                plan.aggregates.iter().map(AggState::new).collect(),
            );
        }
        let finished = groups
            .into_iter()
            .map(|(k, states)| {
                (
                    k,
                    states
                        .iter()
                        .map(|s| AggValue {
                            value: s.finish(),
                            n: s.contributors(),
                        })
                        .collect(),
                )
            })
            .collect();
        Ok(WindowOutput::Groups(finished))
    } else {
        // Plain projection.
        let project: Vec<usize> = plan
            .outputs
            .iter()
            .map(|o| match o {
                dt_query::OutputColumn::Column { index, .. } => *index,
                dt_query::OutputColumn::Aggregate { .. } => {
                    unreachable!("aggregate output in non-aggregating plan")
                }
            })
            .collect();
        let mut rows: Vec<Row> = Vec::new();
        stream_results(plan, inputs, |row| rows.push(row.project(&project)));
        if plan.distinct {
            let mut seen = FxHashSet::default();
            rows.retain(|r| seen.insert(r.clone()));
        }
        Ok(WindowOutput::Rows(rows))
    }
}

/// Run the plan's join tree over the window inputs and feed every
/// residual-surviving result row to `f`, **without materializing any
/// join output** — not even intermediate steps.
///
/// The left-deep join chain runs as one pipelined multi-way hash
/// join: each non-driver input gets a hash index keyed by its join
/// columns, then every driver (stream 0) row is pushed depth-first
/// through the probe chain with a single backtracking scratch row.
/// Joined rows exist only inside that scratch buffer, so a window
/// whose intermediate join blows up to N rows costs N probe visits,
/// not N `Row` allocations. `f` must copy out whatever it keeps —
/// the reference it receives is overwritten on the next call.
fn stream_results(plan: &QueryPlan, inputs: &[Vec<&Row>], mut f: impl FnMut(&Row)) {
    let residual_ok =
        |row: &Row| plan.residual.is_empty() || plan.residual.iter().all(|p| p.eval(row));
    let steps = &plan.join_graph.steps;
    if steps.is_empty() {
        // Single-stream plan: rows stream straight from the input.
        for &row in &inputs[0] {
            if residual_ok(row) {
                f(row);
            }
        }
        return;
    }
    let indexes: Vec<StepIndex> = steps
        .iter()
        .enumerate()
        .map(|(i, conds)| StepIndex::build(&inputs[i + 1], conds))
        .collect();
    let mut scratch = Row::new(Vec::new());
    for &row in &inputs[0] {
        scratch.0.clear();
        scratch.0.extend_from_slice(&row.0);
        probe_chain(&indexes, &mut scratch, &mut |row| {
            if residual_ok(row) {
                f(row);
            }
        });
    }
}

/// One join step's hash index over its right-hand input, keyed by the
/// step's right-side join columns. Probe keys come from the left
/// (accumulated) side. NULL keys are left out of every index: NULL
/// never joins.
enum StepIndex<'a> {
    /// No join condition: cross product with the full input.
    Cross(Vec<&'a Row>),
    /// Single-column equijoin — the overwhelmingly common shape.
    /// Rows are grouped by key into one contiguous `slots` vector
    /// (counting-sort placement, preserving input order within each
    /// key) and the map holds `(start, len)` ranges: two allocations
    /// for the whole index instead of one `Vec` per distinct key, and
    /// probes walk a contiguous run of matches.
    Single {
        left_col: usize,
        ranges: FxHashMap<&'a Value, (u32, u32)>,
        slots: Vec<&'a Row>,
    },
    /// Multi-column equijoin. Keys are owned values so probes from the
    /// short-lived scratch row can hash against them.
    Multi(Vec<usize>, FxHashMap<Vec<Value>, Vec<&'a Row>>),
}

impl<'a> StepIndex<'a> {
    fn build(input: &[&'a Row], conds: &[(usize, usize)]) -> Self {
        if conds.is_empty() {
            return StepIndex::Cross(input.to_vec());
        }
        if let [(lc, rc)] = *conds {
            // Pass 1: count rows per key.
            let mut ranges: FxHashMap<&Value, (u32, u32)> =
                FxHashMap::with_capacity_and_hasher(input.len(), Default::default());
            for &row in input {
                match row.get(rc) {
                    Some(v) if !v.is_null() => ranges.entry(v).or_insert((0, 0)).1 += 1,
                    _ => {}
                }
            }
            // Assign each key its slot range; reuse `.1` as the fill
            // cursor for pass 2.
            let mut off = 0u32;
            for e in ranges.values_mut() {
                e.0 = off;
                off += e.1;
                e.1 = 0;
            }
            let mut slots: Vec<&Row> = vec![&PLACEHOLDER_ROW; off as usize];
            for &row in input {
                match row.get(rc) {
                    Some(v) if !v.is_null() => {
                        let e = ranges.get_mut(v).expect("counted in pass 1");
                        slots[(e.0 + e.1) as usize] = row;
                        e.1 += 1;
                    }
                    _ => {}
                }
            }
            return StepIndex::Single {
                left_col: lc,
                ranges,
                slots,
            };
        }
        let left_cols: Vec<usize> = conds.iter().map(|&(l, _)| l).collect();
        let right_cols: Vec<usize> = conds.iter().map(|&(_, r)| r).collect();
        let mut map: FxHashMap<Vec<Value>, Vec<&Row>> = FxHashMap::default();
        'rows: for &row in input {
            let mut key = Vec::with_capacity(right_cols.len());
            for &c in &right_cols {
                match row.get(c) {
                    Some(v) if !v.is_null() => key.push(v.clone()),
                    _ => continue 'rows,
                }
            }
            map.entry(key).or_default().push(row);
        }
        StepIndex::Multi(left_cols, map)
    }
}

/// Slot placeholder for [`StepIndex::Single`]'s counting-sort build;
/// every slot is overwritten in pass 2 before any probe reads it.
static PLACEHOLDER_ROW: Row = Row(Vec::new());

/// Depth-first probe of the remaining join steps: `scratch` holds the
/// accumulated row for streams joined so far, each match appends the
/// right row's values, recurses, then truncates back. At the end of
/// the chain the completed row is emitted.
fn probe_chain(indexes: &[StepIndex], scratch: &mut Row, f: &mut dyn FnMut(&Row)) {
    let Some((index, rest)) = indexes.split_first() else {
        f(scratch);
        return;
    };
    let matches: &[&Row] = match index {
        StepIndex::Cross(rows) => rows,
        StepIndex::Single {
            left_col,
            ranges,
            slots,
        } => {
            let Some(v) = scratch.get(*left_col) else {
                return;
            };
            if v.is_null() {
                return;
            }
            match ranges.get(v) {
                Some(&(start, len)) => &slots[start as usize..(start + len) as usize],
                None => return,
            }
        }
        StepIndex::Multi(left_cols, map) => {
            let mut key: Vec<Value> = Vec::with_capacity(left_cols.len());
            for &c in left_cols {
                match scratch.get(c) {
                    Some(v) if !v.is_null() => key.push(v.clone()),
                    _ => return,
                }
            }
            match map.get(key.as_slice()) {
                Some(m) => m,
                None => return,
            }
        }
    };
    // `matches` borrows from the index, not from `scratch`, so the
    // scratch row is free to grow while we walk them.
    let depth = scratch.0.len();
    for row in matches {
        scratch.0.extend_from_slice(&row.0);
        probe_chain(rest, scratch, f);
        scratch.0.truncate(depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_query::{parse_select, Catalog, Planner};
    use dt_types::{DataType, Schema};

    fn paper_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        c.add_stream(
            "S",
            Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
        );
        c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
        c
    }

    fn plan(sql: &str) -> QueryPlan {
        Planner::new(&paper_catalog())
            .plan(&parse_select(sql).unwrap())
            .unwrap()
    }

    fn rows(data: &[&[i64]]) -> Vec<Row> {
        data.iter().map(|r| Row::from_ints(r)).collect()
    }

    /// Finished values of a group's aggregates.
    fn vals(aggs: &[AggValue]) -> Vec<f64> {
        aggs.iter().map(|a| a.value).collect()
    }

    #[test]
    fn paper_query_counts_per_group() {
        let p = plan(
            "SELECT a, COUNT(*) as count FROM R,S,T \
             WHERE R.a = S.b AND S.c = T.d GROUP BY a",
        );
        let out = execute_window(
            &p,
            &[
                rows(&[&[1], &[1], &[2]]),
                rows(&[&[1, 7], &[2, 7], &[2, 8]]),
                rows(&[&[7], &[7], &[8]]),
            ],
        )
        .unwrap();
        // Joins: a=1 rows (×2) join S(1,7) join T{7,7} => 2*1*2 = 4.
        //        a=2 row joins S(2,7)->T{7,7}=2 and S(2,8)->T{8}=1 => 3.
        let g = out.groups().unwrap();
        assert_eq!(vals(&g[&Row::from_ints(&[1])]), vec![4.0]);
        assert_eq!(vals(&g[&Row::from_ints(&[2])]), vec![3.0]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn empty_stream_empties_join() {
        let p = plan("SELECT a, COUNT(*) FROM R, S WHERE R.a = S.b GROUP BY a");
        let out = execute_window(&p, &[rows(&[&[1]]), vec![]]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn residual_predicates_filter() {
        let p = plan("SELECT a, COUNT(*) FROM R GROUP BY a");
        let p2 = plan("SELECT a, COUNT(*) FROM R WHERE R.a > 1 GROUP BY a");
        let input = rows(&[&[1], &[2], &[2]]);
        let all = execute_window(&p, std::slice::from_ref(&input)).unwrap();
        assert_eq!(all.groups().unwrap().len(), 2);
        let filtered = execute_window(&p2, &[input]).unwrap();
        let g = filtered.groups().unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(vals(&g[&Row::from_ints(&[2])]), vec![2.0]);
    }

    #[test]
    fn multiple_aggregates() {
        let p = plan("SELECT b, COUNT(*), SUM(c), AVG(c), MIN(c), MAX(c) FROM S GROUP BY b");
        let out = execute_window(&p, &[rows(&[&[1, 10], &[1, 20], &[2, 5]])]).unwrap();
        let g = out.groups().unwrap();
        assert_eq!(
            vals(&g[&Row::from_ints(&[1])]),
            vec![2.0, 30.0, 15.0, 10.0, 20.0]
        );
        assert_eq!(
            vals(&g[&Row::from_ints(&[2])]),
            vec![1.0, 5.0, 5.0, 5.0, 5.0]
        );
    }

    #[test]
    fn global_aggregate_over_empty_window() {
        let p = plan("SELECT COUNT(*) FROM R");
        let out = execute_window(&p, &[vec![]]).unwrap();
        let g = out.groups().unwrap();
        assert_eq!(vals(&g[&Row::new(vec![])]), vec![0.0]);
        assert_eq!(g[&Row::new(vec![])][0].n, 0);
    }

    #[test]
    fn non_aggregate_projects() {
        let p = plan("SELECT c FROM S WHERE S.b = 1");
        let out = execute_window(&p, &[rows(&[&[1, 10], &[2, 20], &[1, 30]])]).unwrap();
        match out {
            WindowOutput::Rows(mut r) => {
                r.sort();
                assert_eq!(r, rows(&[&[10], &[30]]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn distinct_deduplicates() {
        let p = plan("SELECT DISTINCT a FROM R");
        let out = execute_window(&p, &[rows(&[&[1], &[1], &[2]])]).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn cross_join() {
        let p = plan("SELECT * FROM R, T");
        let out = execute_window(&p, &[rows(&[&[1], &[2]]), rows(&[&[9]])]).unwrap();
        match out {
            WindowOutput::Rows(mut r) => {
                r.sort();
                assert_eq!(r, rows(&[&[1, 9], &[2, 9]]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_input_count_rejected() {
        let p = plan("SELECT a FROM R");
        assert!(execute_window(&p, &[]).is_err());
        assert!(execute_window(&p, &[vec![], vec![]]).is_err());
    }

    #[test]
    fn null_keys_never_join() {
        let p = plan("SELECT * FROM R, S WHERE R.a = S.b");
        let out = execute_window(
            &p,
            &[
                vec![Row::new(vec![Value::Null])],
                vec![Row::new(vec![Value::Null, Value::Int(1)])],
            ],
        )
        .unwrap();
        assert!(out.is_empty());
    }
}
