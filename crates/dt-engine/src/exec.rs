//! Exact per-window query execution.

use std::collections::HashMap;

use dt_query::QueryPlan;
use dt_types::{DtError, DtResult, Row, Value};

use crate::aggregate::AggState;

/// One finished aggregate value plus the number of rows that
/// contributed to it — the extra count is what lets the merge stage
/// combine an exact `AVG` with an estimated one by re-weighting
/// (merged = (value·n + est_sum) / (n + est_count)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggValue {
    /// The aggregate's value (NaN for AVG/MIN/MAX of an empty group).
    pub value: f64,
    /// Rows that contributed (non-NULL arguments; all rows for
    /// `COUNT(*)`).
    pub n: u64,
}

/// The exact result of one window.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowOutput {
    /// Non-aggregating query: output rows (post-projection).
    Rows(Vec<Row>),
    /// Aggregating query: group key (values of the plan's GROUP BY
    /// columns, in order) → aggregate values (in
    /// [`QueryPlan::aggregates`] order).
    Groups(HashMap<Row, Vec<AggValue>>),
}

impl WindowOutput {
    /// Number of output rows / groups.
    pub fn len(&self) -> usize {
        match self {
            WindowOutput::Rows(r) => r.len(),
            WindowOutput::Groups(g) => g.len(),
        }
    }

    /// True if the window produced nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The groups map, if aggregating.
    pub fn groups(&self) -> Option<&HashMap<Row, Vec<AggValue>>> {
        match self {
            WindowOutput::Groups(g) => Some(g),
            WindowOutput::Rows(_) => None,
        }
    }
}

/// Execute the plan exactly over one window's worth of rows per
/// stream (`inputs[i]` holds stream `i`'s rows, FROM order).
pub fn execute_window(plan: &QueryPlan, inputs: &[Vec<Row>]) -> DtResult<WindowOutput> {
    if inputs.len() != plan.streams.len() {
        return Err(DtError::engine(format!(
            "expected {} window inputs, got {}",
            plan.streams.len(),
            inputs.len()
        )));
    }
    // Left-deep hash joins.
    let mut acc: Vec<Row> = inputs[0].clone();
    for (step_idx, conds) in plan.join_graph.steps.iter().enumerate() {
        let right = &inputs[step_idx + 1];
        acc = hash_join(&acc, right, conds);
        if acc.is_empty() {
            break;
        }
    }
    // Residual predicates.
    if !plan.residual.is_empty() {
        acc.retain(|row| plan.residual.iter().all(|p| p.eval(row)));
    }

    if plan.is_aggregating() || !plan.group_by.is_empty() {
        // Grouped aggregation.
        let mut groups: HashMap<Row, Vec<AggState>> = HashMap::new();
        for row in &acc {
            let key = row.project(&plan.group_by);
            let states = groups
                .entry(key)
                .or_insert_with(|| plan.aggregates.iter().map(AggState::new).collect());
            for s in states {
                s.update(row);
            }
        }
        // Global aggregate over an empty window still yields one group.
        if groups.is_empty() && plan.group_by.is_empty() {
            groups.insert(
                Row::new(vec![]),
                plan.aggregates.iter().map(AggState::new).collect(),
            );
        }
        let finished = groups
            .into_iter()
            .map(|(k, states)| {
                (
                    k,
                    states
                        .iter()
                        .map(|s| AggValue {
                            value: s.finish(),
                            n: s.contributors(),
                        })
                        .collect(),
                )
            })
            .collect();
        Ok(WindowOutput::Groups(finished))
    } else {
        // Plain projection.
        let project: Vec<usize> = plan
            .outputs
            .iter()
            .map(|o| match o {
                dt_query::OutputColumn::Column { index, .. } => *index,
                dt_query::OutputColumn::Aggregate { .. } => {
                    unreachable!("aggregate output in non-aggregating plan")
                }
            })
            .collect();
        let mut rows: Vec<Row> = acc.iter().map(|r| r.project(&project)).collect();
        if plan.distinct {
            let mut seen = std::collections::HashSet::new();
            rows.retain(|r| seen.insert(r.clone()));
        }
        Ok(WindowOutput::Rows(rows))
    }
}

/// Hash join `left ⋈ right` on `(left combined column, right local
/// column)` pairs; empty `conds` is a cross product. NULL keys never
/// join.
fn hash_join(left: &[Row], right: &[Row], conds: &[(usize, usize)]) -> Vec<Row> {
    if conds.is_empty() {
        let mut out = Vec::with_capacity(left.len() * right.len());
        for l in left {
            for r in right {
                out.push(l.concat(r));
            }
        }
        return out;
    }
    let left_cols: Vec<usize> = conds.iter().map(|&(l, _)| l).collect();
    let right_cols: Vec<usize> = conds.iter().map(|&(_, r)| r).collect();
    let mut index: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
    for l in left {
        let key: Vec<Value> = left_cols
            .iter()
            .map(|&c| l.get(c).cloned().unwrap_or(Value::Null))
            .collect();
        if key.iter().any(Value::is_null) {
            continue;
        }
        index.entry(key).or_default().push(l);
    }
    let mut out = Vec::new();
    for r in right {
        let key: Vec<Value> = right_cols
            .iter()
            .map(|&c| r.get(c).cloned().unwrap_or(Value::Null))
            .collect();
        if key.iter().any(Value::is_null) {
            continue;
        }
        if let Some(matches) = index.get(&key) {
            for l in matches {
                out.push(l.concat(r));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_query::{parse_select, Catalog, Planner};
    use dt_types::{DataType, Schema};

    fn paper_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        c.add_stream(
            "S",
            Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
        );
        c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
        c
    }

    fn plan(sql: &str) -> QueryPlan {
        Planner::new(&paper_catalog())
            .plan(&parse_select(sql).unwrap())
            .unwrap()
    }

    fn rows(data: &[&[i64]]) -> Vec<Row> {
        data.iter().map(|r| Row::from_ints(r)).collect()
    }

    /// Finished values of a group's aggregates.
    fn vals(aggs: &[AggValue]) -> Vec<f64> {
        aggs.iter().map(|a| a.value).collect()
    }

    #[test]
    fn paper_query_counts_per_group() {
        let p = plan(
            "SELECT a, COUNT(*) as count FROM R,S,T \
             WHERE R.a = S.b AND S.c = T.d GROUP BY a",
        );
        let out = execute_window(
            &p,
            &[
                rows(&[&[1], &[1], &[2]]),
                rows(&[&[1, 7], &[2, 7], &[2, 8]]),
                rows(&[&[7], &[7], &[8]]),
            ],
        )
        .unwrap();
        // Joins: a=1 rows (×2) join S(1,7) join T{7,7} => 2*1*2 = 4.
        //        a=2 row joins S(2,7)->T{7,7}=2 and S(2,8)->T{8}=1 => 3.
        let g = out.groups().unwrap();
        assert_eq!(vals(&g[&Row::from_ints(&[1])]), vec![4.0]);
        assert_eq!(vals(&g[&Row::from_ints(&[2])]), vec![3.0]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn empty_stream_empties_join() {
        let p = plan("SELECT a, COUNT(*) FROM R, S WHERE R.a = S.b GROUP BY a");
        let out = execute_window(&p, &[rows(&[&[1]]), vec![]]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn residual_predicates_filter() {
        let p = plan("SELECT a, COUNT(*) FROM R GROUP BY a");
        let p2 = plan("SELECT a, COUNT(*) FROM R WHERE R.a > 1 GROUP BY a");
        let input = rows(&[&[1], &[2], &[2]]);
        let all = execute_window(&p, std::slice::from_ref(&input)).unwrap();
        assert_eq!(all.groups().unwrap().len(), 2);
        let filtered = execute_window(&p2, &[input]).unwrap();
        let g = filtered.groups().unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(vals(&g[&Row::from_ints(&[2])]), vec![2.0]);
    }

    #[test]
    fn multiple_aggregates() {
        let p = plan("SELECT b, COUNT(*), SUM(c), AVG(c), MIN(c), MAX(c) FROM S GROUP BY b");
        let out = execute_window(&p, &[rows(&[&[1, 10], &[1, 20], &[2, 5]])]).unwrap();
        let g = out.groups().unwrap();
        assert_eq!(vals(&g[&Row::from_ints(&[1])]), vec![2.0, 30.0, 15.0, 10.0, 20.0]);
        assert_eq!(vals(&g[&Row::from_ints(&[2])]), vec![1.0, 5.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn global_aggregate_over_empty_window() {
        let p = plan("SELECT COUNT(*) FROM R");
        let out = execute_window(&p, &[vec![]]).unwrap();
        let g = out.groups().unwrap();
        assert_eq!(vals(&g[&Row::new(vec![])]), vec![0.0]);
        assert_eq!(g[&Row::new(vec![])][0].n, 0);
    }

    #[test]
    fn non_aggregate_projects() {
        let p = plan("SELECT c FROM S WHERE S.b = 1");
        let out = execute_window(&p, &[rows(&[&[1, 10], &[2, 20], &[1, 30]])]).unwrap();
        match out {
            WindowOutput::Rows(mut r) => {
                r.sort();
                assert_eq!(r, rows(&[&[10], &[30]]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn distinct_deduplicates() {
        let p = plan("SELECT DISTINCT a FROM R");
        let out = execute_window(&p, &[rows(&[&[1], &[1], &[2]])]).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn cross_join() {
        let p = plan("SELECT * FROM R, T");
        let out = execute_window(&p, &[rows(&[&[1], &[2]]), rows(&[&[9]])]).unwrap();
        match out {
            WindowOutput::Rows(mut r) => {
                r.sort();
                assert_eq!(r, rows(&[&[1, 9], &[2, 9]]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_input_count_rejected() {
        let p = plan("SELECT a FROM R");
        assert!(execute_window(&p, &[]).is_err());
        assert!(execute_window(&p, &[vec![], vec![]]).is_err());
    }

    #[test]
    fn null_keys_never_join() {
        let p = plan("SELECT * FROM R, S WHERE R.a = S.b");
        let out = execute_window(
            &p,
            &[
                vec![Row::new(vec![Value::Null])],
                vec![Row::new(vec![Value::Null, Value::Int(1)])],
            ],
        )
        .unwrap();
        assert!(out.is_empty());
    }
}
