//! Vectorized window execution over columnar batches.
//!
//! [`execute_window_cols`] runs the same select-project-join-aggregate
//! plans as [`crate::exec::execute_window_rows`], but over
//! [`ColumnBatch`] inputs:
//!
//! * residual predicates that touch a single stream become a
//!   predicate-over-column pass producing a **selection vector** per
//!   stream (evaluated once per input row, not once per join result);
//! * join-step hash indexes key contiguous `i64` columns with FxHash
//!   (`i64` keys instead of `Value` keys, built over the filtered
//!   selection);
//! * aggregate updates read typed column slices directly.
//!
//! The executor is bit-identical to the row path by construction: it
//! enumerates join results in exactly the row path's driver order
//! (depth-first, input order within each key), applies predicates with
//! the same NULL/`numeric_cmp` semantics, and feeds group maps in the
//! same sequence — so hash-map capacity growth, iteration order, and
//! float accumulation order all match. Plan or column shapes the
//! vectorized kernels do not support (string or mixed-typed predicate
//! and join columns, float join keys) fall back to the row path on
//! reconstructed rows, which is trivially identical.

use std::cmp::Ordering;

use dt_query::{CmpOp, CompiledPredicate, OutputColumn, PredOperand, QueryPlan};
use dt_types::{ColumnBatch, DtError, DtResult, FxHashMap, FxHashSet, Row, Value};

use crate::aggregate::AggState;
use crate::exec::{execute_window_rows, AggValue, WindowOutput};

/// Execute the plan over one window's columnar batch per stream
/// (`inputs[i]` holds stream `i`'s batch, FROM order). Bit-identical
/// to [`crate::exec::execute_window_ref`] over the same rows.
pub fn execute_window_cols(plan: &QueryPlan, inputs: &[&ColumnBatch]) -> DtResult<WindowOutput> {
    if inputs.len() != plan.streams.len() {
        return Err(DtError::engine(format!(
            "expected {} window inputs, got {}",
            plan.streams.len(),
            inputs.len()
        )));
    }
    match try_execute(plan, inputs) {
        Some(out) => Ok(out),
        None => {
            // Row-path adapter for unsupported shapes: rebuild the
            // exact rows and run the reference executor.
            let rows: Vec<Vec<Row>> = inputs.iter().map(|b| b.to_rows()).collect();
            let by_ref: Vec<Vec<&Row>> = rows.iter().map(|r| r.iter().collect()).collect();
            execute_window_rows(plan, &by_ref)
        }
    }
}

/// A numeric value drawn from a column or literal during predicate
/// evaluation; mirrors the `Int`/`Float` arms of `Value::numeric_cmp`.
#[derive(Clone, Copy)]
enum NumVal {
    I(i64),
    F(f64),
}

impl NumVal {
    #[inline]
    fn as_f64(self) -> f64 {
        match self {
            NumVal::I(i) => i as f64,
            NumVal::F(f) => f,
        }
    }
}

/// Exactly `Value::numeric_cmp` restricted to the numeric arms.
#[inline]
fn num_cmp(l: NumVal, r: NumVal) -> Option<Ordering> {
    use NumVal::*;
    match (l, r) {
        (I(a), I(b)) => Some(a.cmp(&b)),
        (I(a), F(b)) => (a as f64).partial_cmp(&b),
        (F(a), I(b)) => a.partial_cmp(&(b as f64)),
        (F(a), F(b)) => a.partial_cmp(&b),
    }
}

/// A numeric column resolved to its typed slice(s).
#[derive(Clone, Copy)]
enum NumColKind<'a> {
    Int(&'a [i64], Option<&'a [bool]>),
    Float(&'a [f64], Option<&'a [bool]>),
    /// Every row NULL (untyped column).
    AllNull,
}

impl NumColKind<'_> {
    #[inline]
    fn get(self, i: u32) -> Option<NumVal> {
        let i = i as usize;
        match self {
            NumColKind::Int(v, m) => m.is_none_or(|m| m[i]).then(|| NumVal::I(v[i])),
            NumColKind::Float(v, m) => m.is_none_or(|m| m[i]).then(|| NumVal::F(v[i])),
            NumColKind::AllNull => None,
        }
    }
}

/// Resolve stream-local column `(stream, local)` to a numeric slice;
/// `None` means the column is string- or mixed-typed (fall back).
fn num_col<'a>(inputs: &[&'a ColumnBatch], stream: usize, local: usize) -> Option<NumColKind<'a>> {
    let col = inputs[stream].column(local)?;
    if let Some((v, m)) = col.ints() {
        Some(NumColKind::Int(v, m))
    } else if let Some((v, m)) = col.floats() {
        Some(NumColKind::Float(v, m))
    } else if col.is_all_null() {
        Some(NumColKind::AllNull)
    } else {
        None
    }
}

/// One compiled predicate operand.
enum COperand<'a> {
    Col { stream: usize, kind: NumColKind<'a> },
    Lit(NumVal),
}

impl COperand<'_> {
    #[inline]
    fn get(&self, row_of: &impl Fn(usize) -> u32) -> Option<NumVal> {
        match self {
            COperand::Lit(v) => Some(*v),
            COperand::Col { stream, kind } => kind.get(row_of(*stream)),
        }
    }
}

/// A residual predicate compiled against resolved numeric columns.
struct CPred<'a> {
    left: COperand<'a>,
    op: CmpOp,
    right: COperand<'a>,
}

impl CPred<'_> {
    /// `row_of(stream)` supplies the row index under evaluation for
    /// each stream. NULL operands fail the predicate, matching
    /// `CompiledPredicate::eval`.
    #[inline]
    fn eval(&self, row_of: impl Fn(usize) -> u32) -> bool {
        let (Some(l), Some(r)) = (self.left.get(&row_of), self.right.get(&row_of)) else {
            return false;
        };
        match num_cmp(l, r) {
            Some(ord) => self.op.matches(ord),
            None => false,
        }
    }
}

/// Classification of one residual predicate.
enum PredCompile<'a> {
    /// Constant true: drop it.
    True,
    /// Constant false: the query emits nothing.
    False,
    /// All columns on one stream: filter that stream's selection.
    Local(usize, CPred<'a>),
    /// Spans streams: evaluate per join result.
    Emit(CPred<'a>),
}

/// Compile one predicate; `None` means an operand column is not
/// numerically typed (fall back to the row path, which handles e.g.
/// string comparisons).
fn compile_pred<'a>(
    plan: &QueryPlan,
    inputs: &[&'a ColumnBatch],
    p: &CompiledPredicate,
) -> Option<PredCompile<'a>> {
    let is_col = |o: &PredOperand| matches!(o, PredOperand::Col(_));
    if !is_col(&p.left) && !is_col(&p.right) {
        // Literal-only: evaluate once with the reference evaluator.
        return Some(if p.eval(&Row::new(Vec::new())) {
            PredCompile::True
        } else {
            PredCompile::False
        });
    }
    let mut streams: Vec<usize> = Vec::new();
    // Outer `None` = fall back; inner `None` = operand can never be
    // numerically comparable (NULL / non-numeric literal / all-NULL or
    // out-of-range column), making the predicate constant-false.
    let mut operand = |o: &PredOperand| -> Option<Option<COperand<'a>>> {
        match o {
            PredOperand::Lit(Value::Int(i)) => Some(Some(COperand::Lit(NumVal::I(*i)))),
            PredOperand::Lit(Value::Float(f)) => Some(Some(COperand::Lit(NumVal::F(*f)))),
            PredOperand::Lit(_) => Some(None),
            PredOperand::Col(c) => match plan.locate_column(*c) {
                None => Some(None),
                Some((s, local)) => match num_col(inputs, s, local) {
                    Some(NumColKind::AllNull) => Some(None),
                    Some(kind) => {
                        streams.push(s);
                        Some(Some(COperand::Col { stream: s, kind }))
                    }
                    None => None,
                },
            },
        }
    };
    let l = operand(&p.left)?;
    let r = operand(&p.right)?;
    let (Some(left), Some(right)) = (l, r) else {
        return Some(PredCompile::False);
    };
    let pred = CPred {
        left,
        op: p.op,
        right,
    };
    streams.sort_unstable();
    streams.dedup();
    Some(match streams.as_slice() {
        [s] => PredCompile::Local(*s, pred),
        _ => PredCompile::Emit(pred),
    })
}

/// An `i64` join-key column (or an all-NULL column, which never
/// produces a key — NULL never joins).
#[derive(Clone, Copy)]
struct IntKeyCol<'a> {
    col: Option<(&'a [i64], Option<&'a [bool]>)>,
}

impl IntKeyCol<'_> {
    #[inline]
    fn get(&self, i: u32) -> Option<i64> {
        let (v, m) = self.col?;
        let i = i as usize;
        m.is_none_or(|m| m[i]).then(|| v[i])
    }
}

/// Resolve a join-key column; columnar joins require integer keys
/// (`None` → row-path fallback).
fn int_key_col<'a>(
    inputs: &[&'a ColumnBatch],
    stream: usize,
    local: usize,
) -> Option<IntKeyCol<'a>> {
    let col = inputs[stream].column(local)?;
    if let Some(vm) = col.ints() {
        Some(IntKeyCol { col: Some(vm) })
    } else if col.is_all_null() {
        Some(IntKeyCol { col: None })
    } else {
        None
    }
}

/// One compiled join step: the hash index over stream `d+1`'s filtered
/// selection, probed by key columns of already-joined streams.
enum CStep<'a> {
    /// No condition: cross product with the selection.
    Cross,
    /// Single-column equijoin: counting-sort `(start, len)` ranges
    /// over one contiguous slot vector, FxHash-keyed by `i64`.
    Single {
        left: (usize, IntKeyCol<'a>),
        ranges: FxHashMap<i64, (u32, u32)>,
        slots: Vec<u32>,
    },
    /// Multi-column equijoin.
    Multi {
        lefts: Vec<(usize, IntKeyCol<'a>)>,
        map: FxHashMap<Vec<i64>, Vec<u32>>,
    },
}

/// Build the step index for stream `right_stream` over its selection.
fn compile_step<'a>(
    plan: &QueryPlan,
    inputs: &[&'a ColumnBatch],
    sel: &[u32],
    right_stream: usize,
    conds: &[(usize, usize)],
) -> Option<CStep<'a>> {
    if conds.is_empty() {
        return Some(CStep::Cross);
    }
    if let [(lc, rc)] = *conds {
        let (ls, llocal) = plan.locate_column(lc)?;
        let left = (ls, int_key_col(inputs, ls, llocal)?);
        let right = int_key_col(inputs, right_stream, rc)?;
        // Counting-sort placement over the filtered selection: two
        // passes, input order preserved within each key.
        let mut ranges: FxHashMap<i64, (u32, u32)> =
            FxHashMap::with_capacity_and_hasher(sel.len(), Default::default());
        for &r in sel {
            if let Some(k) = right.get(r) {
                ranges.entry(k).or_insert((0, 0)).1 += 1;
            }
        }
        let mut off = 0u32;
        for e in ranges.values_mut() {
            e.0 = off;
            off += e.1;
            e.1 = 0;
        }
        let mut slots = vec![0u32; off as usize];
        for &r in sel {
            if let Some(k) = right.get(r) {
                let e = ranges.get_mut(&k).expect("counted in pass 1");
                slots[(e.0 + e.1) as usize] = r;
                e.1 += 1;
            }
        }
        return Some(CStep::Single {
            left,
            ranges,
            slots,
        });
    }
    let mut lefts = Vec::with_capacity(conds.len());
    let mut rights = Vec::with_capacity(conds.len());
    for &(lc, rc) in conds {
        let (ls, llocal) = plan.locate_column(lc)?;
        lefts.push((ls, int_key_col(inputs, ls, llocal)?));
        rights.push(int_key_col(inputs, right_stream, rc)?);
    }
    let mut map: FxHashMap<Vec<i64>, Vec<u32>> = FxHashMap::default();
    'rows: for &r in sel {
        let mut key = Vec::with_capacity(rights.len());
        for col in &rights {
            match col.get(r) {
                Some(k) => key.push(k),
                None => continue 'rows,
            }
        }
        map.entry(key).or_default().push(r);
    }
    Some(CStep::Multi { lefts, map })
}

/// Depth-first enumeration of join results in the row path's exact
/// order: `cur[s]` holds the row index chosen for stream `s`.
struct Driver<'a, F: FnMut(&[u32])> {
    steps: &'a [CStep<'a>],
    sels: &'a [Vec<u32>],
    cur: Vec<u32>,
    emit: F,
}

impl<F: FnMut(&[u32])> Driver<'_, F> {
    /// Streams `0..=d` are assigned in `cur`; join stream `d+1` next.
    fn walk(&mut self, d: usize) {
        // Copy the shared refs out of `self` so the index borrows are
        // independent of `self.cur`'s mutation below.
        let steps = self.steps;
        let sels = self.sels;
        if d == steps.len() {
            (self.emit)(&self.cur);
            return;
        }
        match &steps[d] {
            CStep::Cross => {
                for &r in &sels[d + 1] {
                    self.cur[d + 1] = r;
                    self.walk(d + 1);
                }
            }
            CStep::Single {
                left,
                ranges,
                slots,
            } => {
                let Some(k) = left.1.get(self.cur[left.0]) else {
                    return;
                };
                let Some(&(start, len)) = ranges.get(&k) else {
                    return;
                };
                for &r in &slots[start as usize..(start + len) as usize] {
                    self.cur[d + 1] = r;
                    self.walk(d + 1);
                }
            }
            CStep::Multi { lefts, map } => {
                let mut key: Vec<i64> = Vec::with_capacity(lefts.len());
                for (s, col) in lefts {
                    match col.get(self.cur[*s]) {
                        Some(k) => key.push(k),
                        None => return,
                    }
                }
                let Some(matches) = map.get(key.as_slice()) else {
                    return;
                };
                for &r in matches {
                    self.cur[d + 1] = r;
                    self.walk(d + 1);
                }
            }
        }
    }
}

/// Vectorized execution; `None` when the plan/column shapes require
/// the row-path fallback.
fn try_execute(plan: &QueryPlan, inputs: &[&ColumnBatch]) -> Option<WindowOutput> {
    let n_streams = plan.streams.len();
    // Classify residual predicates.
    let mut local: Vec<Vec<CPred>> = (0..n_streams).map(|_| Vec::new()).collect();
    let mut emit_preds: Vec<CPred> = Vec::new();
    let mut never = false;
    for p in &plan.residual {
        match compile_pred(plan, inputs, p)? {
            PredCompile::True => {}
            PredCompile::False => never = true,
            PredCompile::Local(s, pred) => local[s].push(pred),
            PredCompile::Emit(pred) => emit_preds.push(pred),
        }
    }
    // Selection vectors: one predicate-over-column pass per stream.
    let sels: Vec<Vec<u32>> = inputs
        .iter()
        .enumerate()
        .map(|(s, batch)| {
            let len = batch.len() as u32;
            if local[s].is_empty() {
                (0..len).collect()
            } else {
                (0..len)
                    .filter(|&r| local[s].iter().all(|p| p.eval(|_| r)))
                    .collect()
            }
        })
        .collect();
    // Join-step indexes over the filtered selections.
    let steps = &plan.join_graph.steps;
    let mut csteps: Vec<CStep> = Vec::with_capacity(steps.len());
    for (i, conds) in steps.iter().enumerate() {
        csteps.push(compile_step(plan, inputs, &sels[i + 1], i + 1, conds)?);
    }

    if plan.is_aggregating() || !plan.group_by.is_empty() {
        let mut group_cols: Vec<(usize, usize)> = Vec::with_capacity(plan.group_by.len());
        for &g in &plan.group_by {
            group_cols.push(plan.locate_column(g)?);
        }
        let fetches: Vec<AggFetch> = plan
            .aggregates
            .iter()
            .map(|a| match a.arg {
                None => AggFetch::ConstNone,
                Some(arg) => match plan.locate_column(arg) {
                    None => AggFetch::ConstNone,
                    Some((s, c)) => match num_col(inputs, s, c) {
                        Some(kind) => AggFetch::Num { stream: s, kind },
                        None => AggFetch::Generic {
                            stream: s,
                            local: c,
                        },
                    },
                },
            })
            .collect();
        // Single integer GROUP BY column — the paper-query shape and
        // the hot case: group on the raw `i64` key with no per-result
        // `Value` materialization or enum hashing. The Row-keyed
        // output map is rebuilt at the end; per-group update order
        // (and with it every accumulated bit) is unchanged.
        if let [(gs, gc)] = group_cols[..] {
            // Count-only refinement: with no emit predicates and only
            // argument-less aggregates (`COUNT(*)`), the last join
            // level's matches all land in the group chosen by the
            // outer streams (`gs` is not the last stream), so the
            // innermost enumeration collapses to adding the match
            // count. A group still only exists once it receives a
            // match (`m > 0`), exactly as in per-row emission.
            if emit_preds.is_empty()
                && n_streams >= 2
                && gs < n_streams - 1
                && plan.aggregates.iter().all(|a| a.arg.is_none())
            {
                if let Some(key_col) = int_key_col(inputs, gs, gc) {
                    let (last, head) = csteps.split_last().expect("n_streams >= 2");
                    let last_sel_len = sels[n_streams - 1].len() as u64;
                    let mut slots: FxHashMap<i64, u32> = FxHashMap::default();
                    let mut null_slot: Option<u32> = None;
                    let mut groups: Vec<(Option<i64>, u64)> = Vec::new();
                    run_driver(head, &sels, n_streams, never, |cur| {
                        let m = match last {
                            CStep::Cross => last_sel_len,
                            CStep::Single { left, ranges, .. } => left
                                .1
                                .get(cur[left.0])
                                .and_then(|k| ranges.get(&k))
                                .map_or(0, |&(_, len)| len as u64),
                            CStep::Multi { lefts, map } => {
                                let key: Option<Vec<i64>> =
                                    lefts.iter().map(|(s, col)| col.get(cur[*s])).collect();
                                key.and_then(|k| map.get(k.as_slice()))
                                    .map_or(0, |v| v.len() as u64)
                            }
                        };
                        if m == 0 {
                            return;
                        }
                        let slot = match key_col.get(cur[gs]) {
                            Some(k) => *slots.entry(k).or_insert_with(|| {
                                groups.push((Some(k), 0));
                                (groups.len() - 1) as u32
                            }),
                            None => *null_slot.get_or_insert_with(|| {
                                groups.push((None, 0));
                                (groups.len() - 1) as u32
                            }),
                        };
                        groups[slot as usize].1 += m;
                    });
                    let finished: FxHashMap<Row, Vec<AggValue>> = groups
                        .into_iter()
                        .map(|(k, c)| {
                            (
                                Row::new(vec![k.map(Value::Int).unwrap_or(Value::Null)]),
                                vec![
                                    AggValue {
                                        value: c as f64,
                                        n: c,
                                    };
                                    plan.aggregates.len()
                                ],
                            )
                        })
                        .collect();
                    return Some(WindowOutput::Groups(finished));
                }
            }
            if let Some(key_col) = int_key_col(inputs, gs, gc) {
                let mut slots: FxHashMap<i64, u32> = FxHashMap::default();
                let mut null_slot: Option<u32> = None;
                let mut arena: Vec<(Option<i64>, Vec<AggState>)> = Vec::new();
                run_driver(&csteps, &sels, n_streams, never, |cur| {
                    if !emit_preds.iter().all(|p| p.eval(|s| cur[s])) {
                        return;
                    }
                    let slot = match key_col.get(cur[gs]) {
                        Some(k) => *slots.entry(k).or_insert_with(|| {
                            arena.push((
                                Some(k),
                                plan.aggregates.iter().map(AggState::new).collect(),
                            ));
                            (arena.len() - 1) as u32
                        }),
                        None => *null_slot.get_or_insert_with(|| {
                            arena.push((None, plan.aggregates.iter().map(AggState::new).collect()));
                            (arena.len() - 1) as u32
                        }),
                    };
                    let states = &mut arena[slot as usize].1;
                    for (st, fetch) in states.iter_mut().zip(&fetches) {
                        st.update_value(fetch.get(cur, inputs));
                    }
                });
                let finished: FxHashMap<Row, Vec<AggValue>> = arena
                    .into_iter()
                    .map(|(k, states)| {
                        (
                            Row::new(vec![k.map(Value::Int).unwrap_or(Value::Null)]),
                            states
                                .iter()
                                .map(|s| AggValue {
                                    value: s.finish(),
                                    n: s.contributors(),
                                })
                                .collect(),
                        )
                    })
                    .collect();
                return Some(WindowOutput::Groups(finished));
            }
        }
        let mut groups: FxHashMap<Row, Vec<AggState>> = FxHashMap::default();
        let mut key_scratch: Vec<Value> = Vec::with_capacity(plan.group_by.len());
        run_driver(&csteps, &sels, n_streams, never, |cur| {
            if !emit_preds.iter().all(|p| p.eval(|s| cur[s])) {
                return;
            }
            key_scratch.clear();
            for &(s, c) in &group_cols {
                key_scratch.push(inputs[s].value(cur[s] as usize, c));
            }
            let states = match groups.get_mut(key_scratch.as_slice()) {
                Some(states) => states,
                None => groups
                    .entry(Row::new(std::mem::take(&mut key_scratch)))
                    .or_insert_with(|| plan.aggregates.iter().map(AggState::new).collect()),
            };
            for (st, fetch) in states.iter_mut().zip(&fetches) {
                st.update_value(fetch.get(cur, inputs));
            }
        });
        if groups.is_empty() && plan.group_by.is_empty() {
            groups.insert(
                Row::new(vec![]),
                plan.aggregates.iter().map(AggState::new).collect(),
            );
        }
        let finished = groups
            .into_iter()
            .map(|(k, states)| {
                (
                    k,
                    states
                        .iter()
                        .map(|s| AggValue {
                            value: s.finish(),
                            n: s.contributors(),
                        })
                        .collect(),
                )
            })
            .collect();
        Some(WindowOutput::Groups(finished))
    } else {
        let mut out_cols: Vec<(usize, usize)> = Vec::with_capacity(plan.outputs.len());
        for o in &plan.outputs {
            match o {
                OutputColumn::Column { index, .. } => out_cols.push(plan.locate_column(*index)?),
                OutputColumn::Aggregate { .. } => {
                    unreachable!("aggregate output in non-aggregating plan")
                }
            }
        }
        let mut rows: Vec<Row> = Vec::new();
        run_driver(&csteps, &sels, n_streams, never, |cur| {
            if !emit_preds.iter().all(|p| p.eval(|s| cur[s])) {
                return;
            }
            rows.push(Row::new(
                out_cols
                    .iter()
                    .map(|&(s, c)| inputs[s].value(cur[s] as usize, c))
                    .collect(),
            ));
        });
        if plan.distinct {
            let mut seen = FxHashSet::default();
            rows.retain(|r| seen.insert(r.clone()));
        }
        Some(WindowOutput::Rows(rows))
    }
}

/// How one aggregate's argument is read per join result.
enum AggFetch<'a> {
    /// `COUNT(*)` or an out-of-range argument: no numeric value (the
    /// [`AggState`] decides whether that still counts the row).
    ConstNone,
    /// Typed numeric column slice.
    Num { stream: usize, kind: NumColKind<'a> },
    /// Untyped column: rebuild the [`Value`] and convert, exactly as
    /// the row path does.
    Generic { stream: usize, local: usize },
}

impl AggFetch<'_> {
    #[inline]
    fn get(&self, cur: &[u32], inputs: &[&ColumnBatch]) -> Option<f64> {
        match self {
            AggFetch::ConstNone => None,
            AggFetch::Num { stream, kind } => kind.get(cur[*stream]).map(NumVal::as_f64),
            AggFetch::Generic { stream, local } => inputs[*stream]
                .value(cur[*stream] as usize, *local)
                .as_f64(),
        }
    }
}

/// Drive every selected stream-0 row through the probe chain.
fn run_driver(
    csteps: &[CStep],
    sels: &[Vec<u32>],
    n_streams: usize,
    never: bool,
    mut emit: impl FnMut(&[u32]),
) {
    if never {
        return;
    }
    if csteps.is_empty() {
        // Single-stream plan.
        let mut cur = [0u32];
        for &r in &sels[0] {
            cur[0] = r;
            emit(&cur);
        }
        return;
    }
    let mut driver = Driver {
        steps: csteps,
        sels,
        cur: vec![0u32; n_streams],
        emit: &mut emit,
    };
    for &r in &sels[0] {
        driver.cur[0] = r;
        driver.walk(0);
    }
}
