//! A miniature TelegraphCQ-style stream query engine.
//!
//! This crate is the *standard-case* query processor of the paper's
//! Figure 1: it consumes the tuples the triage queues deliver and
//! computes exact windowed results for a planned continuous query.
//! It deliberately models what the Data Triage evaluation needs — no
//! more:
//!
//! * **Exact window execution** ([`execute_window`]): left-deep hash
//!   joins per the plan's [`dt_query::JoinGraph`], residual predicate
//!   filtering, grouped aggregation (COUNT/SUM/AVG/MIN/MAX) or plain
//!   projection with optional DISTINCT.
//! * **Window buffering** ([`WindowBuffers`]): per-stream partitioning
//!   of delivered tuples into tumbling windows keyed by the tuples'
//!   own timestamps, with closable-window tracking.
//! * **A virtual-clock cost model** ([`CostModel`]): the engine's
//!   capacity is a per-tuple service time, the knob the experiments
//!   sweep against the arrival rate (DESIGN.md §3 documents this
//!   substitution for the paper's real Pentium 3 testbed).
//!
//! The load-shedding orchestration — triage queues, drop policies,
//! shadow-query evaluation, merging — lives one layer up in
//! `dt-triage`.

pub mod aggregate;
pub mod batch_exec;
pub mod cost;
pub mod exec;
pub mod incremental;
pub mod obs;
pub mod window;

pub use aggregate::{AggState, GroupArena};
pub use batch_exec::execute_window_cols;
pub use cost::CostModel;
pub use exec::{execute_window, execute_window_ref, execute_window_rows, AggValue, WindowOutput};
pub use incremental::IncrementalWindow;
pub use obs::ExecMetrics;
pub use window::WindowBuffers;
