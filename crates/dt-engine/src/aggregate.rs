//! Aggregate accumulators, and the mergeable per-shard GROUP BY
//! arena that lets a worker group aggregate a partitioned window in
//! parallel (DESIGN.md §15).

use dt_query::{AggSpec, Aggregate};
use dt_types::{DtError, DtResult, FxHashMap, Row, Value};

/// Incremental state for one aggregate over one group.
#[derive(Debug, Clone)]
pub struct AggState {
    func: Aggregate,
    arg: Option<usize>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl AggState {
    /// Fresh state for an aggregate spec.
    pub fn new(spec: &AggSpec) -> Self {
        AggState {
            func: spec.func,
            arg: spec.arg,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one combined row into the state.
    ///
    /// `COUNT(*)` counts every row; the other aggregates (and
    /// `COUNT(col)`) skip rows whose argument is NULL or non-numeric,
    /// following SQL semantics.
    pub fn update(&mut self, row: &Row) {
        let v = self
            .arg
            .and_then(|arg| row.get(arg).and_then(Value::as_f64));
        self.update_value(v);
    }

    /// Fold one already-fetched argument value — the columnar
    /// executor's entry point ([`crate::batch_exec`] reads arguments
    /// straight from typed column slices). `None` means the argument
    /// was NULL or non-numeric; `COUNT(*)` (no argument) counts the
    /// row regardless.
    #[inline]
    pub fn update_value(&mut self, v: Option<f64>) {
        if self.arg.is_none() {
            // COUNT(*).
            self.count += 1;
            return;
        }
        let Some(v) = v else {
            return;
        };
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of rows that contributed to this aggregate (all rows for
    /// `COUNT(*)`, non-NULL-argument rows otherwise). The merge stage
    /// uses this to re-weight `AVG` when combining with an estimate.
    pub fn contributors(&self) -> u64 {
        self.count
    }

    /// Absorb another accumulator for the *same* aggregate spec —
    /// the fan-in half of sharded GROUP BY (DESIGN.md §15): each
    /// shard folds its partition into a private state, and the seal
    /// merges the partials. All five aggregates are algebraic, so
    /// count/sum/min/max combine losslessly; `AVG` re-derives from
    /// the merged sum and count at [`AggState::finish`] time.
    ///
    /// Float addition is not associative, so `SUM`/`AVG` over
    /// non-integer inputs can differ from a single-threaded fold in
    /// the last ulp; merge order must therefore be deterministic
    /// (ascending shard id) for reproducible output.
    pub fn merge_from(&mut self, other: &AggState) {
        debug_assert_eq!(self.func, other.func);
        debug_assert_eq!(self.arg, other.arg);
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Finish into the aggregate's numeric value.
    ///
    /// Empty-input conventions: `COUNT` → 0; `SUM` → 0; `AVG`/`MIN`/
    /// `MAX` → NaN (callers treat NaN groups as absent — SQL would
    /// return NULL).
    pub fn finish(&self) -> f64 {
        match self.func {
            Aggregate::Count => self.count as f64,
            Aggregate::Sum => self.sum,
            Aggregate::Avg => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.sum / self.count as f64
                }
            }
            Aggregate::Min => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.min
                }
            }
            Aggregate::Max => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.max
                }
            }
        }
    }
}

/// A per-shard GROUP BY arena: each worker in a stream's group folds
/// its partition of a window into a private `GroupArena`, and the
/// seal merges the partials key-by-key ([`GroupArena::merge_from`])
/// before finishing — the fan-in half of sharded aggregation
/// (DESIGN.md §15).
///
/// Group states live in a dense vector (insertion-ordered, like the
/// columnar executor's arena) with a hash index from group key to
/// slot, so the per-row hot path is one hash probe and the merge is
/// a linear walk of the smaller side.
#[derive(Debug, Clone)]
pub struct GroupArena {
    specs: Vec<AggSpec>,
    slots: FxHashMap<Row, u32>,
    groups: Vec<(Row, Vec<AggState>)>,
}

impl GroupArena {
    /// An empty arena for the plan's aggregate list.
    pub fn new(specs: &[AggSpec]) -> Self {
        GroupArena {
            specs: specs.to_vec(),
            slots: FxHashMap::default(),
            groups: Vec::new(),
        }
    }

    /// Number of distinct groups seen so far.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no group has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Fold one row into its group's accumulators, creating the
    /// group on first sight. The whole row is passed; each aggregate
    /// fetches its own argument column.
    pub fn update(&mut self, key: Row, row: &Row) {
        let slot = match self.slots.get(&key) {
            Some(&s) => s,
            None => {
                let s = self.groups.len() as u32;
                let states = self.specs.iter().map(AggState::new).collect();
                self.groups.push((key.clone(), states));
                self.slots.insert(key, s);
                s
            }
        };
        for st in &mut self.groups[slot as usize].1 {
            st.update(row);
        }
    }

    /// Absorb another shard's partial arena. Groups present in both
    /// merge state-by-state ([`AggState::merge_from`]); groups only
    /// the other shard saw are appended. Errors if the two arenas
    /// were built for different aggregate lists.
    ///
    /// Callers must merge in ascending shard order: merging is
    /// commutative for count/min/max but float `SUM`/`AVG` partials
    /// combine with order-dependent rounding, so a fixed order keeps
    /// sealed windows reproducible.
    pub fn merge_from(&mut self, other: &GroupArena) -> DtResult<()> {
        if self.specs != other.specs {
            return Err(DtError::engine(
                "cannot merge GROUP BY arenas built for different aggregate lists",
            ));
        }
        for (key, states) in &other.groups {
            match self.slots.get(key) {
                Some(&s) => {
                    for (mine, theirs) in self.groups[s as usize].1.iter_mut().zip(states) {
                        mine.merge_from(theirs);
                    }
                }
                None => {
                    let s = self.groups.len() as u32;
                    self.groups.push((key.clone(), states.clone()));
                    self.slots.insert(key.clone(), s);
                }
            }
        }
        Ok(())
    }

    /// Finish every group into `(key, finished values)` pairs, sorted
    /// by group key for deterministic output order.
    pub fn finish(mut self) -> Vec<(Row, Vec<f64>)> {
        self.groups.sort_by(|(a, _), (b, _)| a.cmp(b));
        self.groups
            .into_iter()
            .map(|(k, states)| (k, states.iter().map(AggState::finish).collect()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(func: Aggregate, arg: Option<usize>) -> AggSpec {
        AggSpec {
            func,
            arg,
            name: "x".into(),
        }
    }

    #[test]
    fn count_star_counts_everything() {
        let mut s = AggState::new(&spec(Aggregate::Count, None));
        s.update(&Row::from_ints(&[1]));
        s.update(&Row::new(vec![Value::Null]));
        assert_eq!(s.finish(), 2.0);
    }

    #[test]
    fn count_col_skips_null() {
        let mut s = AggState::new(&spec(Aggregate::Count, Some(0)));
        s.update(&Row::from_ints(&[1]));
        s.update(&Row::new(vec![Value::Null]));
        s.update(&Row::new(vec![Value::Str("x".into())]));
        assert_eq!(s.finish(), 1.0);
    }

    #[test]
    fn sum_avg_min_max() {
        let specs = [
            (Aggregate::Sum, 30.0),
            (Aggregate::Avg, 10.0),
            (Aggregate::Min, 5.0),
            (Aggregate::Max, 20.0),
        ];
        for (func, expected) in specs {
            let mut s = AggState::new(&spec(func, Some(0)));
            for v in [5i64, 5, 20] {
                s.update(&Row::from_ints(&[v]));
            }
            assert_eq!(s.finish(), expected, "{func:?}");
        }
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(AggState::new(&spec(Aggregate::Count, None)).finish(), 0.0);
        assert_eq!(AggState::new(&spec(Aggregate::Sum, Some(0))).finish(), 0.0);
        assert!(AggState::new(&spec(Aggregate::Avg, Some(0)))
            .finish()
            .is_nan());
        assert!(AggState::new(&spec(Aggregate::Min, Some(0)))
            .finish()
            .is_nan());
        assert!(AggState::new(&spec(Aggregate::Max, Some(0)))
            .finish()
            .is_nan());
    }

    #[test]
    fn merged_states_match_a_single_fold() {
        for func in [
            Aggregate::Count,
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::Min,
            Aggregate::Max,
        ] {
            let sp = spec(func, Some(0));
            let vals: Vec<i64> = (0..30).map(|i| (i * 7) % 13 - 3).collect();
            let mut whole = AggState::new(&sp);
            for &v in &vals {
                whole.update(&Row::from_ints(&[v]));
            }
            // Partition into three skewed shards and merge the partials.
            let mut parts: Vec<AggState> = (0..3).map(|_| AggState::new(&sp)).collect();
            for (i, &v) in vals.iter().enumerate() {
                let shard = if i < 20 { 0 } else { 1 + i % 2 };
                parts[shard].update(&Row::from_ints(&[v]));
            }
            let mut merged = AggState::new(&sp);
            for p in &parts {
                merged.merge_from(p);
            }
            assert_eq!(merged.finish(), whole.finish(), "{func:?}");
            assert_eq!(merged.contributors(), whole.contributors(), "{func:?}");
        }
    }

    #[test]
    fn sharded_arena_matches_global_aggregation() {
        let specs = vec![
            spec(Aggregate::Count, None),
            spec(Aggregate::Sum, Some(1)),
            spec(Aggregate::Min, Some(1)),
            spec(Aggregate::Max, Some(1)),
            spec(Aggregate::Avg, Some(1)),
        ];
        let rows: Vec<Row> = (0..200)
            .map(|i| Row::from_ints(&[i % 7, (i * 2_654_435_761) % 100 - 50]))
            .collect();

        let mut global = GroupArena::new(&specs);
        for r in &rows {
            global.update(Row::new(vec![r.0[0].clone()]), r);
        }

        // Partition by an unrelated hash of the row index (so group
        // keys straddle shards), fold per shard, merge in shard order.
        let mut shards: Vec<GroupArena> = (0..4).map(|_| GroupArena::new(&specs)).collect();
        for (i, r) in rows.iter().enumerate() {
            shards[(i * 11) % 4].update(Row::new(vec![r.0[0].clone()]), r);
        }
        let mut merged = GroupArena::new(&specs);
        for s in &shards {
            merged.merge_from(s).unwrap();
        }
        assert_eq!(merged.len(), global.len());
        assert_eq!(merged.finish(), global.finish());
    }

    #[test]
    fn arena_merge_rejects_mismatched_specs() {
        let a = GroupArena::new(&[spec(Aggregate::Count, None)]);
        let mut b = GroupArena::new(&[spec(Aggregate::Sum, Some(0))]);
        assert!(b.merge_from(&a).is_err());
    }

    #[test]
    fn floats_mix_with_ints() {
        let mut s = AggState::new(&spec(Aggregate::Sum, Some(0)));
        s.update(&Row::new(vec![Value::Float(1.5)]));
        s.update(&Row::from_ints(&[2]));
        assert_eq!(s.finish(), 3.5);
    }
}
