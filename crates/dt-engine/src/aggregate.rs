//! Aggregate accumulators.

use dt_query::{AggSpec, Aggregate};
use dt_types::{Row, Value};

/// Incremental state for one aggregate over one group.
#[derive(Debug, Clone)]
pub struct AggState {
    func: Aggregate,
    arg: Option<usize>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl AggState {
    /// Fresh state for an aggregate spec.
    pub fn new(spec: &AggSpec) -> Self {
        AggState {
            func: spec.func,
            arg: spec.arg,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one combined row into the state.
    ///
    /// `COUNT(*)` counts every row; the other aggregates (and
    /// `COUNT(col)`) skip rows whose argument is NULL or non-numeric,
    /// following SQL semantics.
    pub fn update(&mut self, row: &Row) {
        let v = self
            .arg
            .and_then(|arg| row.get(arg).and_then(Value::as_f64));
        self.update_value(v);
    }

    /// Fold one already-fetched argument value — the columnar
    /// executor's entry point ([`crate::batch_exec`] reads arguments
    /// straight from typed column slices). `None` means the argument
    /// was NULL or non-numeric; `COUNT(*)` (no argument) counts the
    /// row regardless.
    #[inline]
    pub fn update_value(&mut self, v: Option<f64>) {
        if self.arg.is_none() {
            // COUNT(*).
            self.count += 1;
            return;
        }
        let Some(v) = v else {
            return;
        };
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of rows that contributed to this aggregate (all rows for
    /// `COUNT(*)`, non-NULL-argument rows otherwise). The merge stage
    /// uses this to re-weight `AVG` when combining with an estimate.
    pub fn contributors(&self) -> u64 {
        self.count
    }

    /// Finish into the aggregate's numeric value.
    ///
    /// Empty-input conventions: `COUNT` → 0; `SUM` → 0; `AVG`/`MIN`/
    /// `MAX` → NaN (callers treat NaN groups as absent — SQL would
    /// return NULL).
    pub fn finish(&self) -> f64 {
        match self.func {
            Aggregate::Count => self.count as f64,
            Aggregate::Sum => self.sum,
            Aggregate::Avg => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.sum / self.count as f64
                }
            }
            Aggregate::Min => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.min
                }
            }
            Aggregate::Max => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.max
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(func: Aggregate, arg: Option<usize>) -> AggSpec {
        AggSpec {
            func,
            arg,
            name: "x".into(),
        }
    }

    #[test]
    fn count_star_counts_everything() {
        let mut s = AggState::new(&spec(Aggregate::Count, None));
        s.update(&Row::from_ints(&[1]));
        s.update(&Row::new(vec![Value::Null]));
        assert_eq!(s.finish(), 2.0);
    }

    #[test]
    fn count_col_skips_null() {
        let mut s = AggState::new(&spec(Aggregate::Count, Some(0)));
        s.update(&Row::from_ints(&[1]));
        s.update(&Row::new(vec![Value::Null]));
        s.update(&Row::new(vec![Value::Str("x".into())]));
        assert_eq!(s.finish(), 1.0);
    }

    #[test]
    fn sum_avg_min_max() {
        let specs = [
            (Aggregate::Sum, 30.0),
            (Aggregate::Avg, 10.0),
            (Aggregate::Min, 5.0),
            (Aggregate::Max, 20.0),
        ];
        for (func, expected) in specs {
            let mut s = AggState::new(&spec(func, Some(0)));
            for v in [5i64, 5, 20] {
                s.update(&Row::from_ints(&[v]));
            }
            assert_eq!(s.finish(), expected, "{func:?}");
        }
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(AggState::new(&spec(Aggregate::Count, None)).finish(), 0.0);
        assert_eq!(AggState::new(&spec(Aggregate::Sum, Some(0))).finish(), 0.0);
        assert!(AggState::new(&spec(Aggregate::Avg, Some(0)))
            .finish()
            .is_nan());
        assert!(AggState::new(&spec(Aggregate::Min, Some(0)))
            .finish()
            .is_nan());
        assert!(AggState::new(&spec(Aggregate::Max, Some(0)))
            .finish()
            .is_nan());
    }

    #[test]
    fn floats_mix_with_ints() {
        let mut s = AggState::new(&spec(Aggregate::Sum, Some(0)));
        s.update(&Row::new(vec![Value::Float(1.5)]));
        s.update(&Row::from_ints(&[2]));
        assert_eq!(s.finish(), 3.5);
    }
}
