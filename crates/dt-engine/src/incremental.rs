//! Incremental window execution: the streaming counterpart of
//! [`crate::execute_window`].
//!
//! The batch executor joins a window's inputs once, when the window
//! closes. A real stream engine — TelegraphCQ included — processes
//! each tuple *as it is delivered*, maintaining partial join state so
//! the window's result is ready the moment it closes. This module
//! implements that discipline with a symmetric multiway hash join:
//!
//! * every stream keeps a window-scoped row store;
//! * a newly delivered row produces its **delta**: the join of that
//!   one row against the *current* contents of all other streams
//!   (computed left-deep in plan order);
//! * delta rows flow through the residual predicates into incremental
//!   aggregate state (COUNT/SUM/AVG are additive and MIN/MAX are
//!   monotone under inserts, and windows only ever insert, so
//!   incremental maintenance is exact).
//!
//! The result is *identical* to the batch executor's — a property test
//! pins the two against each other on random inputs and delivery
//! orders. Note the classic cost asymmetry the paper's load-shedding
//! story relies on: the total work of symmetric maintenance grows with
//! the number of *join results*, which is exactly why an overloaded
//! engine cannot simply "catch up" and must shed.

use dt_types::{FxHashMap, FxHashSet};

use dt_query::QueryPlan;
use dt_types::{DtError, DtResult, Row, Value};

use crate::aggregate::AggState;
use crate::exec::{AggValue, WindowOutput};

/// Incremental execution state for one window of one query.
#[derive(Debug, Clone)]
pub struct IncrementalWindow {
    plan: QueryPlan,
    /// Per-stream row stores (arrival order preserved).
    stores: Vec<Vec<Row>>,
    /// Per-stream hash indexes on the columns that stream contributes
    /// to join steps: `indexes[s]` maps a key (values of the indexed
    /// columns) to row positions in `stores[s]`.
    indexes: Vec<FxHashMap<Vec<Value>, Vec<usize>>>,
    /// Which local columns each stream's index is keyed on (empty =
    /// stream is never probed by key, index unused).
    index_cols: Vec<Vec<usize>>,
    /// Aggregation state per group key.
    groups: FxHashMap<Row, Vec<AggState>>,
    /// Output rows for non-aggregating plans.
    rows: Vec<Row>,
    /// Delta rows processed (diagnostics).
    result_rows: u64,
}

impl IncrementalWindow {
    /// Fresh state for a plan.
    pub fn new(plan: QueryPlan) -> DtResult<Self> {
        let n = plan.streams.len();
        if n == 0 {
            return Err(DtError::engine("plan has no streams"));
        }
        // Determine, for each stream, the local columns later join
        // steps probe it on. Stream j (> 0) is probed on the local
        // columns of step j−1; stream columns referenced as the
        // *left* side of a step belong to earlier streams and are
        // probed through the delta path instead.
        let mut index_cols = vec![Vec::new(); n];
        for (j, conds) in plan.join_graph.steps.iter().enumerate() {
            let probe_stream = j + 1;
            for &(_, local) in conds {
                index_cols[probe_stream].push(local);
            }
        }
        Ok(IncrementalWindow {
            stores: vec![Vec::new(); n],
            indexes: vec![FxHashMap::default(); n],
            index_cols,
            groups: FxHashMap::default(),
            rows: Vec::new(),
            result_rows: 0,
            plan,
        })
    }

    /// The plan being maintained.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Join-result rows produced so far.
    pub fn result_rows(&self) -> u64 {
        self.result_rows
    }

    /// Deliver one row of `stream`, updating the partial result.
    pub fn insert(&mut self, stream: usize, row: Row) -> DtResult<()> {
        let n = self.plan.streams.len();
        if stream >= n {
            return Err(DtError::engine(format!("unknown stream {stream}")));
        }
        if row.arity() != self.plan.streams[stream].schema.arity() {
            return Err(DtError::engine(format!(
                "row arity {} does not match stream {} arity {}",
                row.arity(),
                stream,
                self.plan.streams[stream].schema.arity()
            )));
        }
        // Delta: combined rows that include the new row in position
        // `stream` and existing rows elsewhere. Build left-deep in
        // plan order; the new row participates only at its own
        // position (older rows fill the rest), so each join result is
        // produced exactly once across all inserts.
        let deltas = self.delta_join(stream, &row)?;
        // Index & store the new row *after* computing the delta so it
        // does not join with itself.
        let cols = &self.index_cols[stream];
        if !cols.is_empty() {
            let key: Vec<Value> = cols
                .iter()
                .map(|&c| row.get(c).cloned().unwrap_or(Value::Null))
                .collect();
            if !key.iter().any(Value::is_null) {
                self.indexes[stream]
                    .entry(key)
                    .or_default()
                    .push(self.stores[stream].len());
            }
        }
        self.stores[stream].push(row);

        // Fold the delta through residual predicates into the result.
        for combined in deltas {
            if !self.plan.residual.iter().all(|p| p.eval(&combined)) {
                continue;
            }
            self.result_rows += 1;
            if self.plan.is_aggregating() || !self.plan.group_by.is_empty() {
                let key = combined.project(&self.plan.group_by);
                let states = self
                    .groups
                    .entry(key)
                    .or_insert_with(|| self.plan.aggregates.iter().map(AggState::new).collect());
                for s in states {
                    s.update(&combined);
                }
            } else {
                let project: Vec<usize> = self
                    .plan
                    .outputs
                    .iter()
                    .filter_map(|o| match o {
                        dt_query::OutputColumn::Column { index, .. } => Some(*index),
                        dt_query::OutputColumn::Aggregate { .. } => None,
                    })
                    .collect();
                self.rows.push(combined.project(&project));
            }
        }
        Ok(())
    }

    /// Compute the combined rows contributed by `new_row` at position
    /// `stream`, joining against current contents of other streams.
    fn delta_join(&self, stream: usize, new_row: &Row) -> DtResult<Vec<Row>> {
        let n = self.plan.streams.len();
        // Left-deep accumulation: acc holds partial combined rows over
        // streams 0..=i.
        let mut acc: Vec<Row> = if stream == 0 {
            vec![new_row.clone()]
        } else {
            self.stores[0].clone()
        };
        for j in 1..n {
            if acc.is_empty() {
                return Ok(acc);
            }
            let conds = &self.plan.join_graph.steps[j - 1];
            if j == stream {
                // The new row is the only candidate on this side.
                acc = acc
                    .into_iter()
                    .filter_map(|l| {
                        if Self::matches(&l, new_row, conds) {
                            Some(l.concat(new_row))
                        } else {
                            None
                        }
                    })
                    .collect();
            } else if conds.is_empty() {
                // Cross join against the whole store.
                let mut next = Vec::with_capacity(acc.len() * self.stores[j].len());
                for l in &acc {
                    for r in &self.stores[j] {
                        next.push(l.concat(r));
                    }
                }
                acc = next;
            } else {
                // Hash probe into stream j's index.
                let mut next = Vec::new();
                for l in &acc {
                    let key: Vec<Value> = conds
                        .iter()
                        .map(|&(g, _)| l.get(g).cloned().unwrap_or(Value::Null))
                        .collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(positions) = self.indexes[j].get(&key) {
                        for &p in positions {
                            next.push(l.concat(&self.stores[j][p]));
                        }
                    }
                }
                acc = next;
            }
        }
        Ok(acc)
    }

    /// Does the combined left row join with `right` under the step's
    /// conditions (empty conditions = cross join: always)?
    fn matches(left: &Row, right: &Row, conds: &[(usize, usize)]) -> bool {
        conds
            .iter()
            .all(|&(g, l)| match (left.get(g), right.get(l)) {
                (Some(a), Some(b)) => !a.is_null() && !b.is_null() && a == b,
                _ => false,
            })
    }

    /// Finish the window into the same shape as
    /// [`crate::execute_window`].
    pub fn finish(self) -> WindowOutput {
        if self.plan.is_aggregating() || !self.plan.group_by.is_empty() {
            let mut groups: FxHashMap<Row, Vec<AggValue>> = self
                .groups
                .into_iter()
                .map(|(k, states)| {
                    (
                        k,
                        states
                            .iter()
                            .map(|s| AggValue {
                                value: s.finish(),
                                n: s.contributors(),
                            })
                            .collect(),
                    )
                })
                .collect();
            if groups.is_empty() && self.plan.group_by.is_empty() {
                let states: Vec<AggState> =
                    self.plan.aggregates.iter().map(AggState::new).collect();
                groups.insert(
                    Row::new(vec![]),
                    states
                        .iter()
                        .map(|s| AggValue {
                            value: s.finish(),
                            n: s.contributors(),
                        })
                        .collect(),
                );
            }
            WindowOutput::Groups(groups)
        } else {
            let mut rows = self.rows;
            if self.plan.distinct {
                let mut seen = FxHashSet::default();
                rows.retain(|r| seen.insert(r.clone()));
            }
            WindowOutput::Rows(rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_window;
    use dt_query::{parse_select, Catalog, Planner};
    use dt_types::{DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        c.add_stream(
            "S",
            Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
        );
        c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
        c
    }

    fn plan(sql: &str) -> QueryPlan {
        Planner::new(&catalog())
            .plan(&parse_select(sql).unwrap())
            .unwrap()
    }

    fn rows(data: &[&[i64]]) -> Vec<Row> {
        data.iter().map(|r| Row::from_ints(r)).collect()
    }

    /// Interleave per-stream inputs round-robin and feed incrementally.
    fn run_incremental(plan: &QueryPlan, inputs: &[Vec<Row>]) -> WindowOutput {
        let mut w = IncrementalWindow::new(plan.clone()).unwrap();
        let mut cursors = vec![0usize; inputs.len()];
        loop {
            let mut progressed = false;
            for (s, input) in inputs.iter().enumerate() {
                if cursors[s] < input.len() {
                    w.insert(s, input[cursors[s]].clone()).unwrap();
                    cursors[s] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        w.finish()
    }

    fn assert_same(a: &WindowOutput, b: &WindowOutput) {
        match (a, b) {
            (WindowOutput::Groups(x), WindowOutput::Groups(y)) => {
                assert_eq!(x.len(), y.len());
                for (k, v) in x {
                    let w = &y[k];
                    assert_eq!(v.len(), w.len());
                    for (av, bv) in v.iter().zip(w) {
                        assert_eq!(av.n, bv.n, "group {k}");
                        let same = (av.value - bv.value).abs() < 1e-9
                            || (av.value.is_nan() && bv.value.is_nan());
                        assert!(same, "group {k}: {} vs {}", av.value, bv.value);
                    }
                }
            }
            (WindowOutput::Rows(x), WindowOutput::Rows(y)) => {
                let mut x = x.clone();
                let mut y = y.clone();
                x.sort();
                y.sort();
                assert_eq!(x, y);
            }
            other => panic!("shape mismatch: {other:?}"),
        }
    }

    #[test]
    fn matches_batch_on_paper_query() {
        let p = plan(
            "SELECT a, COUNT(*) as n FROM R,S,T \
             WHERE R.a = S.b AND S.c = T.d GROUP BY a",
        );
        let inputs = vec![
            rows(&[&[1], &[1], &[2], &[3]]),
            rows(&[&[1, 7], &[2, 7], &[2, 8], &[3, 9]]),
            rows(&[&[7], &[7], &[8]]),
        ];
        let batch = execute_window(&p, &inputs).unwrap();
        let inc = run_incremental(&p, &inputs);
        assert_same(&batch, &inc);
    }

    #[test]
    fn matches_batch_with_residuals_and_multiple_aggs() {
        let p = plan(
            "SELECT b, COUNT(*), SUM(c), AVG(c), MIN(c), MAX(c) \
             FROM S WHERE S.c > 3 GROUP BY b",
        );
        let inputs = vec![rows(&[&[1, 10], &[1, 2], &[2, 5], &[1, 4], &[2, 3]])];
        let batch = execute_window(&p, &inputs).unwrap();
        let inc = run_incremental(&p, &inputs);
        assert_same(&batch, &inc);
    }

    #[test]
    fn matches_batch_on_non_aggregating_distinct() {
        let p = plan("SELECT DISTINCT a FROM R, T");
        let inputs = vec![rows(&[&[1], &[1], &[2]]), rows(&[&[9], &[9]])];
        let batch = execute_window(&p, &inputs).unwrap();
        let inc = run_incremental(&p, &inputs);
        assert_same(&batch, &inc);
    }

    #[test]
    fn empty_window_behaviour_matches() {
        let p = plan("SELECT COUNT(*) FROM R");
        let batch = execute_window(&p, &[vec![]]).unwrap();
        let inc = IncrementalWindow::new(p).unwrap().finish();
        assert_same(&batch, &inc);
    }

    #[test]
    fn insert_validates() {
        let p = plan("SELECT a FROM R");
        let mut w = IncrementalWindow::new(p).unwrap();
        assert!(w.insert(3, Row::from_ints(&[1])).is_err());
        assert!(w.insert(0, Row::from_ints(&[1, 2])).is_err());
        assert!(w.insert(0, Row::from_ints(&[1])).is_ok());
    }

    #[test]
    fn result_rows_counts_join_output() {
        let p = plan("SELECT a, COUNT(*) FROM R, S WHERE R.a = S.b GROUP BY a");
        let mut w = IncrementalWindow::new(p).unwrap();
        w.insert(0, Row::from_ints(&[1])).unwrap();
        assert_eq!(w.result_rows(), 0);
        w.insert(1, Row::from_ints(&[1, 5])).unwrap();
        assert_eq!(w.result_rows(), 1);
        w.insert(0, Row::from_ints(&[1])).unwrap();
        assert_eq!(w.result_rows(), 2);
    }
}
