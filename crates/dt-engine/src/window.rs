//! Per-stream tumbling-window buffering.

use std::collections::BTreeMap;

use dt_types::{ColumnBatch, DtError, DtResult, Timestamp, Tuple, WindowId, WindowSpec};

/// Buffers delivered tuples by the window(s) their *timestamp* falls
/// in (delivery may lag arrival when queues back up; the tuple still
/// belongs to its original windows). Hopping specs replicate the row
/// into every overlapping window.
///
/// Rows are stored **columnar** from the moment of delivery: each
/// `(stream, window)` cell is a [`ColumnBatch`], so sealing a window
/// hands the executor ready-made columns (see `DESIGN.md` §13) and no
/// row materialization happens on the hot path.
///
/// All streams of the paper's experiments share one window spec, so
/// the buffers carry a single [`WindowSpec`]; each stream gets its own
/// column store sized by the stream's declared arity.
#[derive(Debug, Clone)]
pub struct WindowBuffers {
    spec: WindowSpec,
    /// Declared arity per stream: every batch for stream `i` carries
    /// `arities[i]` columns, even when empty.
    arities: Vec<usize>,
    /// Per stream: window id → columnar batch.
    buffers: Vec<BTreeMap<WindowId, ColumnBatch>>,
}

impl WindowBuffers {
    /// Buffers for one stream per entry of `arities` (the stream's
    /// declared column count) under one window spec.
    pub fn new(arities: Vec<usize>, spec: WindowSpec) -> Self {
        let buffers = vec![BTreeMap::new(); arities.len()];
        WindowBuffers {
            spec,
            arities,
            buffers,
        }
    }

    /// The shared window spec.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Deliver a tuple of `stream` into every window containing it.
    /// The row is *moved* into its latest window and cloned only for
    /// the extra windows of hopping specs — tumbling delivery never
    /// clones.
    pub fn push(&mut self, stream: usize, tuple: Tuple) -> DtResult<()> {
        let arity = *self
            .arities
            .get(stream)
            .ok_or_else(|| DtError::engine(format!("unknown stream {stream}")))?;
        let buf = &mut self.buffers[stream];
        let latest = self.spec.window_of(tuple.ts);
        for w in self.spec.windows_of(tuple.ts) {
            if w != latest {
                buf.entry(w)
                    .or_insert_with(|| ColumnBatch::new(arity))
                    .push_row(&tuple.row);
            }
        }
        buf.entry(latest)
            .or_insert_with(|| ColumnBatch::new(arity))
            .push_row_owned(tuple.row);
        Ok(())
    }

    /// The smallest window id that still has buffered rows on any
    /// stream.
    pub fn earliest_open(&self) -> Option<WindowId> {
        self.buffers
            .iter()
            .filter_map(|b| b.keys().next().copied())
            .min()
    }

    /// Remove and return window `w`'s columnar batch for every stream
    /// (empty batches, with the stream's arity, for streams with no
    /// rows in `w`).
    pub fn take_window(&mut self, w: WindowId) -> Vec<ColumnBatch> {
        self.buffers
            .iter_mut()
            .zip(&self.arities)
            .map(|(b, &arity)| b.remove(&w).unwrap_or_else(|| ColumnBatch::new(arity)))
            .collect()
    }

    /// Windows strictly before the one containing `ts`, oldest first —
    /// candidates for closing once upstream queues hold nothing older
    /// than `ts`.
    pub fn windows_before(&self, ts: Timestamp) -> Vec<WindowId> {
        let current = self.spec.window_of(ts);
        let mut out: Vec<WindowId> = self
            .buffers
            .iter()
            .flat_map(|b| b.keys().copied())
            .filter(|&w| w < current)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total buffered rows across streams and windows.
    pub fn buffered_rows(&self) -> usize {
        self.buffers
            .iter()
            .map(|b| b.values().map(ColumnBatch::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_types::{Row, VDuration};

    fn tup(v: i64, secs_milli: u64) -> Tuple {
        Tuple::new(
            Row::from_ints(&[v]),
            Timestamp::from_micros(secs_milli * 1000),
        )
    }

    fn buffers() -> WindowBuffers {
        WindowBuffers::new(
            vec![1, 1],
            WindowSpec::new(VDuration::from_secs(1)).unwrap(),
        )
    }

    #[test]
    fn tuples_partition_by_timestamp() {
        let mut b = buffers();
        b.push(0, tup(1, 100)).unwrap();
        b.push(0, tup(2, 900)).unwrap();
        b.push(0, tup(3, 1100)).unwrap();
        b.push(1, tup(4, 100)).unwrap();
        assert_eq!(b.buffered_rows(), 4);
        let w0 = b.take_window(0);
        assert_eq!(w0[0].len(), 2);
        assert_eq!(w0[1].len(), 1);
        assert_eq!(b.buffered_rows(), 1);
        let w1 = b.take_window(1);
        assert_eq!(w1[0].to_rows(), vec![Row::from_ints(&[3])]);
        assert!(w1[1].is_empty());
    }

    #[test]
    fn earliest_open_tracks_minimum() {
        let mut b = buffers();
        assert_eq!(b.earliest_open(), None);
        b.push(1, tup(1, 5_500)).unwrap();
        assert_eq!(b.earliest_open(), Some(5));
        b.push(0, tup(2, 1_500)).unwrap();
        assert_eq!(b.earliest_open(), Some(1));
        b.take_window(1);
        assert_eq!(b.earliest_open(), Some(5));
    }

    #[test]
    fn windows_before_excludes_current() {
        let mut b = buffers();
        b.push(0, tup(1, 500)).unwrap();
        b.push(0, tup(2, 1_500)).unwrap();
        b.push(1, tup(3, 2_500)).unwrap();
        // At t = 2.5s the current window is 2.
        assert_eq!(
            b.windows_before(Timestamp::from_micros(2_500_000)),
            vec![0, 1]
        );
        assert_eq!(
            b.windows_before(Timestamp::from_micros(900_000)),
            Vec::<WindowId>::new()
        );
    }

    #[test]
    fn unknown_stream_rejected() {
        let mut b = buffers();
        assert!(b.push(7, tup(1, 0)).is_err());
    }

    #[test]
    fn take_missing_window_is_empty() {
        let mut b = buffers();
        let w = b.take_window(42);
        assert_eq!(w.len(), 2);
        assert!(w.iter().all(|batch| batch.is_empty()));
        assert!(w.iter().all(|batch| batch.arity() == 1));
    }

    #[test]
    fn take_window_preserves_arity_and_order() {
        let mut b = WindowBuffers::new(vec![2], WindowSpec::new(VDuration::from_secs(1)).unwrap());
        b.push(
            0,
            Tuple::new(Row::from_ints(&[1, 10]), Timestamp::from_micros(0)),
        )
        .unwrap();
        b.push(
            0,
            Tuple::new(Row::from_ints(&[2, 20]), Timestamp::from_micros(10)),
        )
        .unwrap();
        let w = b.take_window(0);
        assert_eq!(w[0].arity(), 2);
        assert_eq!(
            w[0].to_rows(),
            vec![Row::from_ints(&[1, 10]), Row::from_ints(&[2, 20])]
        );
    }
}
