//! Engine-side instruments: window-execution latency and join
//! fan-out.
//!
//! The execution functions in [`crate::exec`] are stateless, so the
//! instruments live in a small bundle the caller owns (one per
//! executor) and threads through. A default-constructed bundle is
//! fully disabled — every handle is a no-op — so uninstrumented
//! callers pay one branch per window close.

use dt_obs::{Histogram, MetricsRegistry};
use dt_query::QueryPlan;
use dt_types::{ColumnBatch, DtResult, Row};

use crate::batch_exec::execute_window_cols;
use crate::exec::{execute_window_rows, WindowOutput};

/// Instruments for exact window execution.
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    /// Latency of one exact window execution (join + aggregate), µs.
    pub window_exec_us: Histogram,
    /// Result rows / groups per executed window — the join fan-out
    /// the engine had to stream through.
    pub window_output_rows: Histogram,
    /// Rows per input batch handed to the columnar executor (one
    /// observation per stream per executed window).
    pub batch_rows: Histogram,
}

impl ExecMetrics {
    /// Register the engine instruments on `reg` (no-op handles when
    /// the registry is disabled).
    pub fn register(reg: &MetricsRegistry) -> Self {
        ExecMetrics {
            window_exec_us: reg.histogram(
                "dt_engine_window_exec_us",
                "Exact window execution latency (join + aggregate), microseconds",
                &[],
            ),
            window_output_rows: reg.histogram(
                "dt_engine_window_output_rows",
                "Result rows or groups per executed window (join fan-out)",
                &[],
            ),
            batch_rows: reg.histogram(
                "dt_engine_batch_rows",
                "Rows per columnar input batch handed to the vectorized executor",
                &[],
            ),
        }
    }

    /// [`execute_window_rows`] with execution latency and output
    /// fan-out recorded.
    pub fn execute_window_rows(
        &self,
        plan: &QueryPlan,
        inputs: &[Vec<&Row>],
    ) -> DtResult<WindowOutput> {
        let timer = self.window_exec_us.start_timer();
        let out = execute_window_rows(plan, inputs);
        timer.stop();
        if let Ok(o) = &out {
            self.window_output_rows.observe(o.len() as u64);
        }
        out
    }

    /// [`execute_window_cols`] with execution latency, output fan-out,
    /// and per-stream batch sizes recorded.
    pub fn execute_window_cols(
        &self,
        plan: &QueryPlan,
        inputs: &[&ColumnBatch],
    ) -> DtResult<WindowOutput> {
        if self.batch_rows.is_enabled() {
            for b in inputs {
                self.batch_rows.observe(b.len() as u64);
            }
        }
        let timer = self.window_exec_us.start_timer();
        let out = execute_window_cols(plan, inputs);
        timer.stop();
        if let Ok(o) = &out {
            self.window_output_rows.observe(o.len() as u64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_query::{parse_select, Catalog, Planner};
    use dt_types::{DataType, Schema};

    #[test]
    fn timed_execution_matches_untimed_and_records() {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        let plan = Planner::new(&c)
            .plan(&parse_select("SELECT a, COUNT(*) FROM R GROUP BY a").unwrap())
            .unwrap();
        let rows: Vec<Row> = (0..10).map(|i| Row::from_ints(&[i % 3])).collect();
        let inputs = vec![rows.iter().collect::<Vec<&Row>>()];

        let reg = MetricsRegistry::new();
        let m = ExecMetrics::register(&reg);
        let timed = m.execute_window_rows(&plan, &inputs).unwrap();
        let plain = execute_window_rows(&plan, &inputs).unwrap();
        assert_eq!(timed, plain);
        assert_eq!(m.window_exec_us.count(), 1);
        assert_eq!(m.window_output_rows.count(), 1);
        assert_eq!(m.window_output_rows.max(), 3, "three groups");

        let off = ExecMetrics::default();
        assert_eq!(off.execute_window_rows(&plan, &inputs).unwrap(), plain);
        assert_eq!(off.window_exec_us.count(), 0);
    }
}
