//! Property tests: the columnar executor ([`execute_window_cols`]) is
//! **bit-identical** to the row-at-a-time reference path
//! ([`execute_window_ref`]) — same rows in the same emission order,
//! same groups with the same float *bits* — across randomized plans:
//! filters, 3-way joins, grouped aggregates, NULL-heavy data, type
//! mixes that force the row fallback, and empty windows.
//!
//! Float results are compared by `to_bits()` (not `==`) so NaN
//! conventions (AVG/MIN/MAX of an empty group) count as equal when —
//! and only when — both paths produce the same bit pattern.

use dt_engine::{execute_window_cols, execute_window_ref, WindowOutput};
use dt_query::{parse_select, Catalog, Planner, QueryPlan};
use dt_types::{ColumnBatch, DataType, Row, Schema, Value};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    c.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    c
}

fn plan(sql: &str) -> QueryPlan {
    Planner::new(&catalog())
        .plan(&parse_select(sql).unwrap())
        .unwrap()
}

/// One cell: mostly small ints, some floats, some NULLs, a few strings
/// (strings force the columnar path's row fallback — still must be
/// identical).
fn arb_value(null_weight: u32) -> impl Strategy<Value = Value> {
    // The vendored proptest shim's `prop_oneof!` is an unweighted
    // union; approximate weights by picking from an index range.
    let specials = 1 + null_weight as i64;
    (0i64..(6 + specials)).prop_map(move |i| match i {
        0..=3 => Value::Int(i),
        4 => Value::Float(1.5),
        5 => Value::Float(3.0),
        6 => Value::Float(f64::NAN),
        _ => Value::Null,
    })
}

fn arb_rows(arity: usize, max: usize, null_weight: u32) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        prop::collection::vec(arb_value(null_weight), arity).prop_map(Row::new),
        0..=max,
    )
}

/// Integer-only rows (keeps join keys on the vectorized path).
fn arb_int_rows(arity: usize, max: usize) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        prop::collection::vec(
            (0i64..6).prop_map(|i| if i < 5 { Value::Int(i) } else { Value::Null }),
            arity,
        )
        .prop_map(Row::new),
        0..=max,
    )
}

fn run_cols(plan: &QueryPlan, inputs: &[Vec<Row>]) -> WindowOutput {
    let batches: Vec<ColumnBatch> = inputs
        .iter()
        .zip(&plan.streams)
        .map(|(rows, b)| ColumnBatch::from_rows(b.schema.arity(), rows))
        .collect();
    let refs: Vec<&ColumnBatch> = batches.iter().collect();
    execute_window_cols(plan, &refs).unwrap()
}

fn run_ref(plan: &QueryPlan, inputs: &[Vec<Row>]) -> WindowOutput {
    let slices: Vec<&[Row]> = inputs.iter().map(Vec::as_slice).collect();
    execute_window_ref(plan, &slices).unwrap()
}

/// Bit-exact equality check. Rows are compared *in emission order*;
/// groups are sorted by key (hash-map iteration order is an
/// implementation detail of equality, but values must match to the
/// bit).
fn assert_bit_identical(cols: &WindowOutput, refr: &WindowOutput) -> Result<(), TestCaseError> {
    match (cols, refr) {
        (WindowOutput::Rows(x), WindowOutput::Rows(y)) => {
            prop_assert_eq!(x, y, "row outputs differ (order-sensitive)");
        }
        (WindowOutput::Groups(x), WindowOutput::Groups(y)) => {
            let canon = |g: &dt_types::FxHashMap<Row, Vec<dt_engine::AggValue>>| {
                let mut v: Vec<(Row, Vec<(u64, u64)>)> = g
                    .iter()
                    .map(|(k, aggs)| {
                        (
                            k.clone(),
                            aggs.iter().map(|a| (a.value.to_bits(), a.n)).collect(),
                        )
                    })
                    .collect();
                v.sort();
                v
            };
            prop_assert_eq!(canon(x), canon(y), "group outputs differ in bits");
        }
        _ => prop_assert!(false, "output shape mismatch"),
    }
    Ok(())
}

fn check(p: &QueryPlan, inputs: &[Vec<Row>]) -> Result<(), TestCaseError> {
    assert_bit_identical(&run_cols(p, inputs), &run_ref(p, inputs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filters_are_bit_identical(
        s in arb_rows(2, 24, 2),
        lit in 0i64..5,
    ) {
        let p = plan(&format!("SELECT b, c FROM S WHERE b > {lit} AND c <= 3"));
        check(&p, &[s])?;
    }

    #[test]
    fn three_way_join_grouped_is_bit_identical(
        r in arb_int_rows(1, 10),
        s in arb_int_rows(2, 10),
        t in arb_int_rows(1, 10),
    ) {
        let p = plan(
            "SELECT a, COUNT(*) as n FROM R,S,T \
             WHERE R.a = S.b AND S.c = T.d GROUP BY a",
        );
        check(&p, &[r, s, t])?;
    }

    #[test]
    fn join_with_residual_filter_is_bit_identical(
        r in arb_int_rows(1, 10),
        s in arb_rows(2, 10, 2),
    ) {
        let p = plan(
            "SELECT a, COUNT(*), SUM(S.c), AVG(S.c) FROM R, S \
             WHERE R.a = S.b AND S.c > 1 GROUP BY a",
        );
        check(&p, &[r, s])?;
    }

    #[test]
    fn grouped_aggregates_are_bit_identical(
        s in arb_rows(2, 24, 2),
    ) {
        let p = plan(
            "SELECT b, COUNT(*), COUNT(c), SUM(c), AVG(c), MIN(c), MAX(c) \
             FROM S GROUP BY b",
        );
        check(&p, &[s])?;
    }

    #[test]
    fn null_heavy_windows_are_bit_identical(
        r in arb_rows(1, 12, 8),
        s in arb_rows(2, 12, 8),
    ) {
        let grouped = plan(
            "SELECT a, COUNT(*) FROM R, S WHERE R.a = S.b AND S.c < 4 GROUP BY a",
        );
        check(&grouped, &[r.clone(), s.clone()])?;
        let rows = plan("SELECT a, c FROM R, S WHERE R.a = S.b");
        check(&rows, &[r, s])?;
    }

    #[test]
    fn distinct_projection_is_bit_identical(
        r in arb_rows(1, 16, 2),
        t in arb_rows(1, 16, 2),
    ) {
        let p = plan("SELECT DISTINCT a, d FROM R, T");
        check(&p, &[r, t])?;
    }

    #[test]
    fn global_aggregate_is_bit_identical(
        s in arb_rows(2, 16, 3),
    ) {
        let p = plan("SELECT COUNT(*), AVG(c) FROM S WHERE b >= 1");
        check(&p, &[s])?;
    }
}

#[test]
fn empty_windows_are_bit_identical() {
    for sql in [
        "SELECT a FROM R",
        "SELECT a, COUNT(*) FROM R GROUP BY a",
        "SELECT COUNT(*), AVG(c) FROM S",
        "SELECT a, COUNT(*) as n FROM R,S,T WHERE R.a = S.b AND S.c = T.d GROUP BY a",
    ] {
        let p = plan(sql);
        let empties: Vec<Vec<Row>> = p.streams.iter().map(|_| Vec::new()).collect();
        let cols = run_cols(&p, &empties);
        let refr = run_ref(&p, &empties);
        assert_bit_identical(&cols, &refr).unwrap();
    }
}

#[test]
fn wrong_input_count_is_rejected_identically() {
    let p = plan("SELECT a FROM R");
    let err_cols = execute_window_cols(&p, &[]).unwrap_err();
    let err_ref = execute_window_ref(&p, &[]).unwrap_err();
    assert_eq!(err_cols.to_string(), err_ref.to_string());
}
