//! Property tests pinning the stream engine's row-level execution to
//! the exact multiset algebra: `execute_window` over random inputs
//! must agree with the corresponding `Relation` expression for joins,
//! selections, grouped counts, and DISTINCT.

use dt_algebra::Relation;
use dt_engine::execute_window;
use dt_query::{parse_select, Catalog, Planner, QueryPlan};
use dt_types::{DataType, Row, Schema, Value};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    c.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    c
}

fn plan(sql: &str) -> QueryPlan {
    Planner::new(&catalog())
        .plan(&parse_select(sql).unwrap())
        .unwrap()
}

fn rows(points: &[Vec<i64>]) -> Vec<Row> {
    points.iter().map(|p| Row::from_ints(p)).collect()
}

fn rel(points: &[Vec<i64>]) -> Relation {
    Relation::from_rows(points.iter().map(|p| Row::from_ints(p)))
}

fn arb_points(dims: usize, domain: i64, max: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0..domain, dims), 0..=max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// 3-way join + GROUP BY COUNT(*) matches the algebra.
    #[test]
    fn grouped_counts_match_algebra(
        r in arb_points(1, 5, 12),
        s in arb_points(2, 5, 12),
        t in arb_points(1, 5, 12),
    ) {
        let p = plan(
            "SELECT a, COUNT(*) FROM R,S,T WHERE R.a = S.b AND S.c = T.d GROUP BY a",
        );
        let out = execute_window(&p, &[rows(&r), rows(&s), rows(&t)]).unwrap();
        let exact = rel(&r)
            .equijoin(&rel(&s), &[(0, 0)])
            .equijoin(&rel(&t), &[(2, 0)])
            .project(&[0]);
        let groups = out.groups().unwrap();
        // Same group set, same counts.
        prop_assert_eq!(groups.len() as u64, exact.distinct_len() as u64);
        for (key, aggs) in groups {
            let c = exact.count(key);
            prop_assert_eq!(aggs[0].value, c as f64);
        }
    }

    /// WHERE residuals match algebra selection.
    #[test]
    fn residual_selection_matches_algebra(s in arb_points(2, 10, 20)) {
        let p = plan("SELECT b, c FROM S WHERE S.c > 4 AND S.b <> 2");
        let out = execute_window(&p, &[rows(&s)]).unwrap();
        let exact = rel(&s).select(|r| {
            r[1].as_i64().unwrap() > 4 && r[0].as_i64().unwrap() != 2
        });
        match out {
            dt_engine::WindowOutput::Rows(got) => {
                prop_assert_eq!(Relation::from_rows(got), exact);
            }
            other => prop_assert!(false, "{other:?}"),
        }
    }

    /// SELECT DISTINCT matches the algebra's duplicate elimination.
    #[test]
    fn distinct_matches_algebra(s in arb_points(2, 4, 20)) {
        let p = plan("SELECT DISTINCT b FROM S");
        let out = execute_window(&p, &[rows(&s)]).unwrap();
        let exact = rel(&s).project(&[0]).distinct();
        match out {
            dt_engine::WindowOutput::Rows(got) => {
                prop_assert_eq!(Relation::from_rows(got), exact);
            }
            other => prop_assert!(false, "{other:?}"),
        }
    }

    /// SUM/AVG/MIN/MAX agree with directly computed values.
    #[test]
    fn aggregates_match_direct_computation(s in arb_points(2, 8, 25)) {
        let p = plan("SELECT b, SUM(c), AVG(c), MIN(c), MAX(c) FROM S GROUP BY b");
        let out = execute_window(&p, &[rows(&s)]).unwrap();
        let groups = out.groups().unwrap();
        // Direct computation.
        let mut expect: std::collections::HashMap<i64, Vec<i64>> = Default::default();
        for pnt in &s {
            expect.entry(pnt[0]).or_default().push(pnt[1]);
        }
        prop_assert_eq!(groups.len(), expect.len());
        for (key, vals) in &expect {
            let aggs = &groups[&Row::new(vec![Value::Int(*key)])];
            let sum: i64 = vals.iter().sum();
            prop_assert_eq!(aggs[0].value, sum as f64);
            prop_assert!((aggs[1].value - sum as f64 / vals.len() as f64).abs() < 1e-9);
            prop_assert_eq!(aggs[2].value, *vals.iter().min().unwrap() as f64);
            prop_assert_eq!(aggs[3].value, *vals.iter().max().unwrap() as f64);
            prop_assert_eq!(aggs[0].n, vals.len() as u64);
        }
    }

    /// Join cardinality is symmetric in the probe/build roles — the
    /// engine's left-deep order must not change the result.
    #[test]
    fn join_order_of_inputs_is_semantically_stable(
        r in arb_points(1, 4, 10),
        s in arb_points(2, 4, 10),
    ) {
        let p1 = plan("SELECT a, COUNT(*) FROM R, S WHERE R.a = S.b GROUP BY a");
        let p2 = plan("SELECT a, COUNT(*) FROM S, R WHERE R.a = S.b GROUP BY a");
        let o1 = execute_window(&p1, &[rows(&r), rows(&s)]).unwrap();
        let o2 = execute_window(&p2, &[rows(&s), rows(&r)]).unwrap();
        let g1 = o1.groups().unwrap();
        let g2 = o2.groups().unwrap();
        prop_assert_eq!(g1.len(), g2.len());
        for (k, v) in g1 {
            prop_assert_eq!(v[0].value, g2[k][0].value);
        }
    }
}
