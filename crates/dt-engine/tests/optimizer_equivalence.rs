//! Join-order optimization must be semantically invisible: the
//! optimized plan executes to exactly the original plan's result, for
//! random inputs and random statistics (which drive arbitrary
//! reorderings).

use dt_engine::{execute_window, WindowOutput};
use dt_query::{optimize_join_order, parse_select, Catalog, Planner, QueryPlan, StreamStats};
use dt_types::{DataType, Row, Schema};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    c.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    c
}

fn plan(sql: &str) -> QueryPlan {
    Planner::new(&catalog())
        .plan(&parse_select(sql).unwrap())
        .unwrap()
}

fn arb_points(dims: usize, domain: i64, max: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0..domain, dims), 0..=max)
}

fn rows(points: &[Vec<i64>]) -> Vec<Row> {
    points.iter().map(|p| Row::from_ints(p)).collect()
}

fn assert_equivalent(a: &WindowOutput, b: &WindowOutput) -> Result<(), TestCaseError> {
    match (a, b) {
        (WindowOutput::Groups(x), WindowOutput::Groups(y)) => {
            prop_assert_eq!(x.len(), y.len());
            for (k, v) in x {
                let w = y
                    .get(k)
                    .ok_or_else(|| TestCaseError::fail(format!("missing group {k}")))?;
                for (av, bv) in v.iter().zip(w) {
                    prop_assert_eq!(av.n, bv.n);
                    prop_assert!(
                        (av.value - bv.value).abs() < 1e-9
                            || (av.value.is_nan() && bv.value.is_nan())
                    );
                }
            }
        }
        (WindowOutput::Rows(x), WindowOutput::Rows(y)) => {
            // Projected output columns are name-stable; row order may
            // differ.
            let mut x = x.clone();
            let mut y = y.clone();
            x.sort();
            y.sort();
            prop_assert_eq!(x, y);
        }
        _ => prop_assert!(false, "shape mismatch"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimized_plan_executes_identically(
        r in arb_points(1, 5, 10),
        s in arb_points(2, 5, 10),
        t in arb_points(1, 5, 10),
        card in prop::collection::vec(1.0f64..10_000.0, 3),
        dist in prop::collection::vec(1.0f64..100.0, 3),
    ) {
        let original = plan(
            "SELECT a, COUNT(*) as n, SUM(S.c) FROM R,S,T \
             WHERE R.a = S.b AND S.c = T.d AND S.c > 1 GROUP BY a",
        );
        let stats = vec![
            StreamStats::uniform(1, card[0], dist[0]),
            StreamStats::uniform(2, card[1], dist[1]),
            StreamStats::uniform(1, card[2], dist[2]),
        ];
        let optimized = optimize_join_order(&original, &stats).unwrap();

        // Inputs must be fed in the optimized stream order.
        let by_name = |p: &QueryPlan| -> Vec<Vec<Row>> {
            p.streams
                .iter()
                .map(|b| match b.stream.as_str() {
                    "R" => rows(&r),
                    "S" => rows(&s),
                    _ => rows(&t),
                })
                .collect()
        };
        let out_orig = execute_window(&original, &by_name(&original)).unwrap();
        let out_opt = execute_window(&optimized, &by_name(&optimized)).unwrap();
        assert_equivalent(&out_orig, &out_opt)?;
    }

    #[test]
    fn optimized_projection_queries_match(
        r in arb_points(1, 4, 8),
        s in arb_points(2, 4, 8),
        card in prop::collection::vec(1.0f64..10_000.0, 2),
    ) {
        let original = plan("SELECT S.c, a FROM R, S WHERE R.a = S.b");
        let stats = vec![
            StreamStats::uniform(1, card[0], 10.0),
            StreamStats::uniform(2, card[1], 10.0),
        ];
        let optimized = optimize_join_order(&original, &stats).unwrap();
        let by_name = |p: &QueryPlan| -> Vec<Vec<Row>> {
            p.streams
                .iter()
                .map(|b| match b.stream.as_str() {
                    "R" => rows(&r),
                    _ => rows(&s),
                })
                .collect()
        };
        let out_orig = execute_window(&original, &by_name(&original)).unwrap();
        let out_opt = execute_window(&optimized, &by_name(&optimized)).unwrap();
        assert_equivalent(&out_orig, &out_opt)?;
    }
}
