//! Property test: the incremental (streaming, symmetric-join) window
//! executor produces exactly the batch executor's result, for random
//! inputs and **random delivery orders** — delivery interleaving must
//! be invisible in the final answer.

use dt_engine::{execute_window, IncrementalWindow, WindowOutput};
use dt_query::{parse_select, Catalog, Planner, QueryPlan};
use dt_types::{DataType, Row, Schema};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    c.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    c
}

fn plan(sql: &str) -> QueryPlan {
    Planner::new(&catalog())
        .plan(&parse_select(sql).unwrap())
        .unwrap()
}

fn arb_points(dims: usize, domain: i64, max: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0..domain, dims), 0..=max)
}

/// Feed all rows in an order decided by `order_seed`, then finish.
fn run_incremental(plan: &QueryPlan, inputs: &[Vec<Vec<i64>>], order_seed: u64) -> WindowOutput {
    let mut pending: Vec<(usize, usize)> = inputs
        .iter()
        .enumerate()
        .flat_map(|(s, rows)| (0..rows.len()).map(move |i| (s, i)))
        .collect();
    // Deterministic shuffle from the seed (LCG-driven Fisher–Yates).
    let mut state = order_seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    for i in (1..pending.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        pending.swap(i, j);
    }
    let mut w = IncrementalWindow::new(plan.clone()).unwrap();
    for (s, i) in pending {
        w.insert(s, Row::from_ints(&inputs[s][i])).unwrap();
    }
    w.finish()
}

fn assert_equivalent(batch: &WindowOutput, inc: &WindowOutput) -> Result<(), TestCaseError> {
    match (batch, inc) {
        (WindowOutput::Groups(x), WindowOutput::Groups(y)) => {
            prop_assert_eq!(x.len(), y.len());
            for (k, v) in x {
                let w = y
                    .get(k)
                    .ok_or_else(|| TestCaseError::fail(format!("missing group {k}")))?;
                prop_assert_eq!(v.len(), w.len());
                for (av, bv) in v.iter().zip(w) {
                    prop_assert_eq!(av.n, bv.n);
                    let same = (av.value - bv.value).abs() < 1e-9
                        || (av.value.is_nan() && bv.value.is_nan());
                    prop_assert!(same, "group {}: {} vs {}", k, av.value, bv.value);
                }
            }
        }
        (WindowOutput::Rows(x), WindowOutput::Rows(y)) => {
            let mut x = x.clone();
            let mut y = y.clone();
            x.sort();
            y.sort();
            prop_assert_eq!(x, y);
        }
        _ => prop_assert!(false, "output shape mismatch"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn three_way_join_group_count(
        r in arb_points(1, 5, 10),
        s in arb_points(2, 5, 10),
        t in arb_points(1, 5, 10),
        order in any::<u64>(),
    ) {
        let p = plan(
            "SELECT a, COUNT(*) as n FROM R,S,T \
             WHERE R.a = S.b AND S.c = T.d GROUP BY a",
        );
        let inputs_rows: Vec<Vec<Row>> = [&r, &s, &t]
            .iter()
            .map(|v| v.iter().map(|p| Row::from_ints(p)).collect())
            .collect();
        let batch = execute_window(&p, &inputs_rows).unwrap();
        let inc = run_incremental(&p, &[r, s, t], order);
        assert_equivalent(&batch, &inc)?;
    }

    #[test]
    fn join_with_residual_and_sum_avg(
        r in arb_points(1, 4, 10),
        s in arb_points(2, 4, 10),
        order in any::<u64>(),
    ) {
        let p = plan(
            "SELECT a, COUNT(*), SUM(S.c), AVG(S.c) FROM R, S \
             WHERE R.a = S.b AND S.c > 1 GROUP BY a",
        );
        let inputs_rows: Vec<Vec<Row>> = [&r, &s]
            .iter()
            .map(|v| v.iter().map(|p| Row::from_ints(p)).collect())
            .collect();
        let batch = execute_window(&p, &inputs_rows).unwrap();
        let inc = run_incremental(&p, &[r, s], order);
        assert_equivalent(&batch, &inc)?;
    }

    #[test]
    fn cross_join_rows(
        r in arb_points(1, 3, 6),
        t in arb_points(1, 3, 6),
        order in any::<u64>(),
    ) {
        let p = plan("SELECT * FROM R, T");
        let inputs_rows: Vec<Vec<Row>> = [&r, &t]
            .iter()
            .map(|v| v.iter().map(|p| Row::from_ints(p)).collect())
            .collect();
        let batch = execute_window(&p, &inputs_rows).unwrap();
        let inc = run_incremental(&p, &[r, t], order);
        assert_equivalent(&batch, &inc)?;
    }

    #[test]
    fn min_max_under_any_delivery_order(
        s in arb_points(2, 6, 20),
        order in any::<u64>(),
    ) {
        let p = plan("SELECT b, MIN(c), MAX(c) FROM S GROUP BY b");
        let inputs_rows: Vec<Vec<Row>> =
            vec![s.iter().map(|p| Row::from_ints(p)).collect()];
        let batch = execute_window(&p, &inputs_rows).unwrap();
        let inc = run_incremental(&p, &[s], order);
        assert_equivalent(&batch, &inc)?;
    }
}
