//! Exact multiset relational algebra and the *differential* operators
//! of Data Triage §3.
//!
//! This crate is the formal foundation of the reproduction. It serves
//! two purposes:
//!
//! 1. **Ground truth.** The stream engine, the query rewriter, and the
//!    synopsis layer are all validated against the exact multiset
//!    semantics implemented here.
//! 2. **The paper's theory, executable.** Section 3 of the paper
//!    defines, for each relational operator `F`, a differential
//!    operator `F̂` over triples `(S_noisy, S₊, S₋)` maintaining the
//!    invariant `S_noisy ≡ S + S₊ − S₋`. We implement those operators
//!    and machine-check the invariant with property tests, where the
//!    paper proves it on paper.
//!
//! Modules:
//!
//! * [`relation`] — non-negative multiset relations with the operators
//!   ⟨σ, π, ×, ⋈, −, ∪, ∩⟩.
//! * [`signed`] — ℤ-valued multisets, used so the differential
//!   formulas can be evaluated without worrying about the truncation
//!   behaviour of non-negative multiset difference.
//! * [`diff`] — the differential operators of paper §3.2.
//! * [`spj`] — the select-project-join expansion of paper §4.2
//!   (Eq. 12–14): computing `Q_kept` and `Q_dropped` for an n-way join
//!   from per-input kept/dropped partitions.

pub mod diff;
pub mod relation;
pub mod signed;
pub mod spj;

pub use diff::DiffRelation;
pub use relation::Relation;
pub use signed::SignedRelation;
