//! Non-negative multiset relations.
//!
//! A [`Relation`] is a bag of [`Row`]s: each distinct row carries a
//! non-negative multiplicity. All the classical bag-algebra operators
//! are provided; `minus` is *truncating* multiset difference (SQL's
//! `EXCEPT ALL`), and `intersect` takes per-row minimum multiplicities
//! (`INTERSECT ALL`).

use std::collections::HashMap;
use std::fmt;

use dt_types::{Row, Value};

/// A multiset of rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relation {
    counts: HashMap<Row, u64>,
    /// Total multiplicity, maintained incrementally.
    total: u64,
}

impl Relation {
    /// The empty relation.
    pub fn new() -> Self {
        Relation::default()
    }

    /// Build from rows, accumulating duplicates.
    pub fn from_rows<I: IntoIterator<Item = Row>>(rows: I) -> Self {
        let mut r = Relation::new();
        for row in rows {
            r.insert(row);
        }
        r
    }

    /// Build from `(row, multiplicity)` pairs; zero multiplicities are
    /// ignored.
    pub fn from_counts<I: IntoIterator<Item = (Row, u64)>>(pairs: I) -> Self {
        let mut r = Relation::new();
        for (row, n) in pairs {
            r.insert_n(row, n);
        }
        r
    }

    /// Insert one copy of a row.
    pub fn insert(&mut self, row: Row) {
        self.insert_n(row, 1);
    }

    /// Insert `n` copies of a row.
    pub fn insert_n(&mut self, row: Row, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(row).or_insert(0) += n;
        self.total += n;
    }

    /// Remove one copy of a row if present; returns whether a copy was
    /// removed.
    pub fn remove_one(&mut self, row: &Row) -> bool {
        if let Some(c) = self.counts.get_mut(row) {
            *c -= 1;
            self.total -= 1;
            if *c == 0 {
                self.counts.remove(row);
            }
            true
        } else {
            false
        }
    }

    /// Multiplicity of a row.
    pub fn count(&self, row: &Row) -> u64 {
        self.counts.get(row).copied().unwrap_or(0)
    }

    /// Total multiplicity (`COUNT(*)` over the bag).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Number of *distinct* rows.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// True if the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Iterate over `(row, multiplicity)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Row, u64)> {
        self.counts.iter().map(|(r, &c)| (r, c))
    }

    /// Iterate over rows with multiplicity expanded, in arbitrary order.
    pub fn iter_expanded(&self) -> impl Iterator<Item = &Row> {
        self.counts
            .iter()
            .flat_map(|(r, &c)| std::iter::repeat_n(r, c as usize))
    }

    /// All rows (expanded) in sorted order — handy for deterministic
    /// assertions in tests.
    pub fn to_sorted_rows(&self) -> Vec<Row> {
        let mut v: Vec<Row> = self.iter_expanded().cloned().collect();
        v.sort();
        v
    }

    /// Multiset union (`UNION ALL`): multiplicities add.
    pub fn union_all(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        for (row, c) in other.iter() {
            out.insert_n(row.clone(), c);
        }
        out
    }

    /// Truncating multiset difference (`EXCEPT ALL`): per-row
    /// multiplicity `max(a − b, 0)`.
    pub fn minus(&self, other: &Relation) -> Relation {
        let mut out = Relation::new();
        for (row, c) in self.iter() {
            let keep = c.saturating_sub(other.count(row));
            out.insert_n(row.clone(), keep);
        }
        out
    }

    /// Multiset intersection (`INTERSECT ALL`): per-row minimum.
    pub fn intersect(&self, other: &Relation) -> Relation {
        let mut out = Relation::new();
        for (row, c) in self.iter() {
            let keep = c.min(other.count(row));
            out.insert_n(row.clone(), keep);
        }
        out
    }

    /// Is `self` a sub-bag of `other` (every multiplicity ≤)?
    pub fn is_subbag_of(&self, other: &Relation) -> bool {
        self.iter().all(|(row, c)| c <= other.count(row))
    }

    /// Selection σ: keep rows satisfying the predicate (multiplicities
    /// preserved).
    pub fn select<F: Fn(&Row) -> bool>(&self, pred: F) -> Relation {
        let mut out = Relation::new();
        for (row, c) in self.iter() {
            if pred(row) {
                out.insert_n(row.clone(), c);
            }
        }
        out
    }

    /// Projection π onto column indices (multiset projection: no
    /// duplicate elimination, as required by the paper's differential
    /// projection operator).
    pub fn project(&self, indices: &[usize]) -> Relation {
        let mut out = Relation::new();
        for (row, c) in self.iter() {
            out.insert_n(row.project(indices), c);
        }
        out
    }

    /// Duplicate elimination (`SELECT DISTINCT`).
    pub fn distinct(&self) -> Relation {
        let mut out = Relation::new();
        for (row, _) in self.iter() {
            out.insert(row.clone());
        }
        out
    }

    /// Cross product ×: concatenated rows, multiplicities multiply.
    pub fn cross(&self, other: &Relation) -> Relation {
        let mut out = Relation::new();
        for (lrow, lc) in self.iter() {
            for (rrow, rc) in other.iter() {
                out.insert_n(lrow.concat(rrow), lc * rc);
            }
        }
        out
    }

    /// Equijoin ⋈ on pairs of `(left_column, right_column)` indices.
    ///
    /// Implemented as a hash join on the left-side key; output rows are
    /// the concatenation `left ++ right`, multiplicities multiply.
    pub fn equijoin(&self, other: &Relation, on: &[(usize, usize)]) -> Relation {
        if on.is_empty() {
            return self.cross(other);
        }
        // Build phase: index the smaller side? For clarity we always
        // index `self`. Keys are the projected join columns.
        let left_cols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
        let right_cols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
        let mut index: HashMap<Vec<Value>, Vec<(&Row, u64)>> = HashMap::new();
        for (row, c) in self.iter() {
            let key: Vec<Value> = left_cols
                .iter()
                .map(|&i| row.get(i).cloned().unwrap_or(Value::Null))
                .collect();
            index.entry(key).or_default().push((row, c));
        }
        let mut out = Relation::new();
        for (rrow, rc) in self.probe_rows(other) {
            let key: Vec<Value> = right_cols
                .iter()
                .map(|&i| rrow.get(i).cloned().unwrap_or(Value::Null))
                .collect();
            // SQL semantics: NULL never joins.
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = index.get(&key) {
                for &(lrow, lc) in matches {
                    out.insert_n(lrow.concat(rrow), lc * rc);
                }
            }
        }
        out
    }

    /// Helper for `equijoin`'s probe phase (kept separate so the
    /// borrow of `other` has a simple lifetime).
    fn probe_rows<'a>(&self, other: &'a Relation) -> impl Iterator<Item = (&'a Row, u64)> {
        other.iter()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        for row in self.to_sorted_rows() {
            writeln!(f, "  {row}")?;
        }
        write!(f, "}} ({} rows)", self.len())
    }
}

impl FromIterator<Row> for Relation {
    fn from_iter<I: IntoIterator<Item = Row>>(iter: I) -> Self {
        Relation::from_rows(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(rows: &[&[i64]]) -> Relation {
        Relation::from_rows(rows.iter().map(|r| Row::from_ints(r)))
    }

    #[test]
    fn insert_and_count() {
        let mut r = Relation::new();
        r.insert(Row::from_ints(&[1]));
        r.insert(Row::from_ints(&[1]));
        r.insert(Row::from_ints(&[2]));
        assert_eq!(r.len(), 3);
        assert_eq!(r.distinct_len(), 2);
        assert_eq!(r.count(&Row::from_ints(&[1])), 2);
        assert_eq!(r.count(&Row::from_ints(&[9])), 0);
    }

    #[test]
    fn remove_one() {
        let mut r = rel(&[&[1], &[1]]);
        assert!(r.remove_one(&Row::from_ints(&[1])));
        assert_eq!(r.len(), 1);
        assert!(r.remove_one(&Row::from_ints(&[1])));
        assert!(r.is_empty());
        assert!(!r.remove_one(&Row::from_ints(&[1])));
    }

    #[test]
    fn union_all_adds_multiplicities() {
        let a = rel(&[&[1], &[2]]);
        let b = rel(&[&[2], &[3]]);
        let u = a.union_all(&b);
        assert_eq!(u.len(), 4);
        assert_eq!(u.count(&Row::from_ints(&[2])), 2);
    }

    #[test]
    fn minus_truncates() {
        let a = rel(&[&[1], &[1], &[2]]);
        let b = rel(&[&[1], &[1], &[1], &[3]]);
        let d = a.minus(&b);
        assert_eq!(d.to_sorted_rows(), vec![Row::from_ints(&[2])]);
    }

    #[test]
    fn intersect_takes_min() {
        let a = rel(&[&[1], &[1], &[2]]);
        let b = rel(&[&[1], &[2], &[2]]);
        let i = a.intersect(&b);
        assert_eq!(i.count(&Row::from_ints(&[1])), 1);
        assert_eq!(i.count(&Row::from_ints(&[2])), 1);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn subbag() {
        let a = rel(&[&[1], &[2]]);
        let b = rel(&[&[1], &[1], &[2]]);
        assert!(a.is_subbag_of(&b));
        assert!(!b.is_subbag_of(&a));
    }

    #[test]
    fn select_keeps_multiplicity() {
        let a = rel(&[&[1], &[1], &[2]]);
        let s = a.select(|r| r[0] == Value::Int(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.count(&Row::from_ints(&[1])), 2);
    }

    #[test]
    fn project_is_multiset() {
        // π onto column 0 must NOT deduplicate (paper §3.2.2 requires
        // multiset projection for the differential operator to work).
        let a = rel(&[&[1, 10], &[1, 20]]);
        let p = a.project(&[0]);
        assert_eq!(p.count(&Row::from_ints(&[1])), 2);
    }

    #[test]
    fn distinct_deduplicates() {
        let a = rel(&[&[1], &[1], &[2]]);
        let d = a.distinct();
        assert_eq!(d.len(), 2);
        assert_eq!(d.count(&Row::from_ints(&[1])), 1);
    }

    #[test]
    fn cross_multiplies() {
        let a = rel(&[&[1], &[1]]);
        let b = rel(&[&[7]]);
        let c = a.cross(&b);
        assert_eq!(c.count(&Row::from_ints(&[1, 7])), 2);
    }

    #[test]
    fn equijoin_matches_filtered_cross() {
        let a = rel(&[&[1, 10], &[2, 20], &[2, 21]]);
        let b = rel(&[&[2, 99], &[3, 98]]);
        let j = a.equijoin(&b, &[(0, 0)]);
        let expected = a.cross(&b).select(|r| r[0] == r[2]);
        assert_eq!(j, expected);
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn equijoin_multi_key() {
        let a = rel(&[&[1, 2], &[1, 3]]);
        let b = rel(&[&[1, 2], &[1, 9]]);
        let j = a.equijoin(&b, &[(0, 0), (1, 1)]);
        assert_eq!(j.len(), 1);
        assert_eq!(j.count(&Row::from_ints(&[1, 2, 1, 2])), 1);
    }

    #[test]
    fn equijoin_empty_on_is_cross() {
        let a = rel(&[&[1]]);
        let b = rel(&[&[2]]);
        assert_eq!(a.equijoin(&b, &[]), a.cross(&b));
    }

    #[test]
    fn null_never_joins() {
        let mut a = Relation::new();
        a.insert(Row::new(vec![Value::Null]));
        let mut b = Relation::new();
        b.insert(Row::new(vec![Value::Null]));
        assert!(a.equijoin(&b, &[(0, 0)]).is_empty());
    }

    #[test]
    fn sorted_rows_deterministic() {
        let a = rel(&[&[3], &[1], &[2], &[1]]);
        assert_eq!(
            a.to_sorted_rows(),
            vec![
                Row::from_ints(&[1]),
                Row::from_ints(&[1]),
                Row::from_ints(&[2]),
                Row::from_ints(&[3])
            ]
        );
    }

    #[test]
    fn display_contains_rows() {
        let a = rel(&[&[5]]);
        let s = a.to_string();
        assert!(s.contains("(5)"));
        assert!(s.contains("1 rows"));
    }
}
