//! ℤ-valued multisets.
//!
//! The differential formulas of paper §3.2 mix multiset unions and
//! differences. Non-negative multiset difference truncates at zero, so
//! naively composing the printed formulas requires side conditions
//! (e.g. `S₊ ⊆ S_noisy`). Working in the signed domain makes every
//! rearrangement exact; a [`SignedRelation`] is split back into a
//! non-negative `(plus, minus)` pair only at the end.

use std::collections::HashMap;

use dt_types::Row;

use crate::relation::Relation;

/// A multiset with integer (possibly negative) multiplicities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SignedRelation {
    counts: HashMap<Row, i64>,
}

impl SignedRelation {
    /// The zero multiset.
    pub fn new() -> Self {
        SignedRelation::default()
    }

    /// Lift a non-negative relation into the signed domain.
    pub fn from_relation(r: &Relation) -> Self {
        let mut out = SignedRelation::new();
        for (row, c) in r.iter() {
            out.add_row(row.clone(), c as i64);
        }
        out
    }

    /// Add `delta` copies of `row` (delta may be negative).
    pub fn add_row(&mut self, row: Row, delta: i64) {
        if delta == 0 {
            return;
        }
        use std::collections::hash_map::Entry;
        match self.counts.entry(row) {
            Entry::Occupied(mut o) => {
                *o.get_mut() += delta;
                // Keep the map canonical (no zero entries) so equality
                // works structurally.
                if *o.get() == 0 {
                    o.remove();
                }
            }
            Entry::Vacant(v) => {
                v.insert(delta);
            }
        }
    }

    /// Signed multiplicity of a row.
    pub fn count(&self, row: &Row) -> i64 {
        self.counts.get(row).copied().unwrap_or(0)
    }

    /// True if every multiplicity is zero.
    pub fn is_zero(&self) -> bool {
        self.counts.values().all(|&v| v == 0)
    }

    /// Iterate over `(row, signed multiplicity)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Row, i64)> {
        self.counts.iter().map(|(r, &c)| (r, c))
    }

    /// `self + other`.
    pub fn plus(&self, other: &SignedRelation) -> SignedRelation {
        let mut out = self.clone();
        for (row, c) in other.iter() {
            out.add_row(row.clone(), c);
        }
        out
    }

    /// `self − other`.
    pub fn minus(&self, other: &SignedRelation) -> SignedRelation {
        let mut out = self.clone();
        for (row, c) in other.iter() {
            out.add_row(row.clone(), -c);
        }
        out
    }

    /// Add a non-negative relation.
    pub fn plus_rel(&self, other: &Relation) -> SignedRelation {
        let mut out = self.clone();
        for (row, c) in other.iter() {
            out.add_row(row.clone(), c as i64);
        }
        out
    }

    /// Subtract a non-negative relation.
    pub fn minus_rel(&self, other: &Relation) -> SignedRelation {
        let mut out = self.clone();
        for (row, c) in other.iter() {
            out.add_row(row.clone(), -(c as i64));
        }
        out
    }

    /// Signed cross product: multiplicities multiply (signs included).
    pub fn cross(&self, other: &SignedRelation) -> SignedRelation {
        let mut out = SignedRelation::new();
        for (lrow, lc) in self.iter() {
            for (rrow, rc) in other.iter() {
                out.add_row(lrow.concat(rrow), lc * rc);
            }
        }
        out
    }

    /// Signed equijoin on `(left_column, right_column)` index pairs;
    /// NULL keys never join, mirroring [`Relation::equijoin`].
    pub fn equijoin(&self, other: &SignedRelation, on: &[(usize, usize)]) -> SignedRelation {
        use dt_types::Value;
        if on.is_empty() {
            return self.cross(other);
        }
        let left_cols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
        let right_cols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
        let mut index: HashMap<Vec<Value>, Vec<(&Row, i64)>> = HashMap::new();
        for (row, c) in self.iter() {
            let key: Vec<Value> = left_cols
                .iter()
                .map(|&i| row.get(i).cloned().unwrap_or(Value::Null))
                .collect();
            index.entry(key).or_default().push((row, c));
        }
        let mut out = SignedRelation::new();
        for (rrow, rc) in other.iter() {
            let key: Vec<Value> = right_cols
                .iter()
                .map(|&i| rrow.get(i).cloned().unwrap_or(Value::Null))
                .collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = index.get(&key) {
                for &(lrow, lc) in matches {
                    out.add_row(lrow.concat(rrow), lc * rc);
                }
            }
        }
        out
    }

    /// Signed selection: keep rows satisfying the predicate.
    pub fn select<F: Fn(&Row) -> bool>(&self, pred: F) -> SignedRelation {
        let mut out = SignedRelation::new();
        for (row, c) in self.iter() {
            if pred(row) {
                out.add_row(row.clone(), c);
            }
        }
        out
    }

    /// Signed multiset projection.
    pub fn project(&self, indices: &[usize]) -> SignedRelation {
        let mut out = SignedRelation::new();
        for (row, c) in self.iter() {
            out.add_row(row.project(indices), c);
        }
        out
    }

    /// Split into `(positive part, negative part)` — two non-negative
    /// relations such that `self = pos − neg` with disjoint supports.
    pub fn split(&self) -> (Relation, Relation) {
        let mut pos = Relation::new();
        let mut neg = Relation::new();
        for (row, c) in self.iter() {
            match c.cmp(&0) {
                std::cmp::Ordering::Greater => pos.insert_n(row.clone(), c as u64),
                std::cmp::Ordering::Less => neg.insert_n(row.clone(), (-c) as u64),
                std::cmp::Ordering::Equal => {}
            }
        }
        (pos, neg)
    }

    /// Convert to a non-negative relation; errors (returns `None`) if
    /// any multiplicity is negative.
    pub fn to_relation(&self) -> Option<Relation> {
        let mut out = Relation::new();
        for (row, c) in self.iter() {
            if c < 0 {
                return None;
            }
            out.insert_n(row.clone(), c as u64);
        }
        Some(out)
    }
}

impl From<&Relation> for SignedRelation {
    fn from(r: &Relation) -> Self {
        SignedRelation::from_relation(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(rows: &[&[i64]]) -> Relation {
        Relation::from_rows(rows.iter().map(|r| Row::from_ints(r)))
    }

    #[test]
    fn lift_and_count() {
        let s = SignedRelation::from_relation(&rel(&[&[1], &[1], &[2]]));
        assert_eq!(s.count(&Row::from_ints(&[1])), 2);
        assert_eq!(s.count(&Row::from_ints(&[2])), 1);
        assert_eq!(s.count(&Row::from_ints(&[3])), 0);
    }

    #[test]
    fn arithmetic_can_go_negative() {
        let a = SignedRelation::from_relation(&rel(&[&[1]]));
        let b = SignedRelation::from_relation(&rel(&[&[1], &[1]]));
        let d = a.minus(&b);
        assert_eq!(d.count(&Row::from_ints(&[1])), -1);
        assert!(!d.is_zero());
        assert!(d
            .plus(&SignedRelation::from_relation(&rel(&[&[1]])))
            .is_zero());
    }

    #[test]
    fn zero_entries_are_pruned() {
        let a = SignedRelation::from_relation(&rel(&[&[1]]));
        let z = a.minus(&a);
        assert!(z.is_zero());
        assert_eq!(z, SignedRelation::new());
    }

    #[test]
    fn split_partitions_by_sign() {
        let mut s = SignedRelation::new();
        s.add_row(Row::from_ints(&[1]), 2);
        s.add_row(Row::from_ints(&[2]), -3);
        let (pos, neg) = s.split();
        assert_eq!(pos.count(&Row::from_ints(&[1])), 2);
        assert_eq!(neg.count(&Row::from_ints(&[2])), 3);
        assert_eq!(pos.len(), 2);
        assert_eq!(neg.len(), 3);
    }

    #[test]
    fn to_relation_rejects_negative() {
        let mut s = SignedRelation::new();
        s.add_row(Row::from_ints(&[1]), -1);
        assert!(s.to_relation().is_none());
        s.add_row(Row::from_ints(&[1]), 3);
        let r = s.to_relation().unwrap();
        assert_eq!(r.count(&Row::from_ints(&[1])), 2);
    }

    #[test]
    fn plus_minus_rel_roundtrip() {
        let base = rel(&[&[5], &[6]]);
        let s = SignedRelation::new().plus_rel(&base).minus_rel(&base);
        assert!(s.is_zero());
    }
}
