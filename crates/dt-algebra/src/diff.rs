//! The differential relational operators of Data Triage §3.
//!
//! A [`DiffRelation`] is the triple `(S_noisy, S₊, S₋)` the paper uses
//! to track how dropping (and, for non-monotone operators, adding)
//! tuples propagates through a query. The triple maintains the paper's
//! Equation (1):
//!
//! ```text
//! S_noisy ≡ S + S₊ − S₋
//! ```
//!
//! where `S` is the *base* (true) relation, `+`/`−` are multiset union
//! and difference, `S₊` holds spuriously added rows and `S₋` the rows
//! lost to shedding.
//!
//! Every operator here returns a triple whose reconstructed base equals
//! the plain operator applied to the inputs' reconstructed bases — that
//! is the invariant the property tests in `tests/` machine-check.
//!
//! The binary operators are evaluated in the *signed* multiset domain
//! (see [`crate::signed`]) and the net change split into canonical
//! disjoint `plus`/`minus` parts at the end. This matches the paper's
//! formulas exactly — `(R₊, R₋)` pairs are only ever used through the
//! difference `R₊ − R₋`, so canonicalization is harmless — while
//! avoiding the side conditions that truncating multiset difference
//! would otherwise impose. For set difference we additionally provide
//! [`DiffRelation::set_difference_paper`], a literal transcription of
//! the formulas printed in §3.2.5, so the two derivations can be
//! compared in tests.

use dt_types::Row;

use crate::relation::Relation;
use crate::signed::SignedRelation;

/// The `(noisy, plus, minus)` triple of paper §3.1.
///
/// ```
/// use dt_algebra::{DiffRelation, Relation};
/// use dt_types::Row;
///
/// // A stream kept {1, 2} and dropped {3}.
/// let kept = Relation::from_rows([Row::from_ints(&[1]), Row::from_ints(&[2])]);
/// let dropped = Relation::from_rows([Row::from_ints(&[3])]);
/// let d = DiffRelation::from_kept_dropped(kept, dropped);
///
/// // σ̂ commutes with reconstruction: base(σ̂(d)) == σ(base(d)).
/// let sel = d.select(|r| r[0].as_i64().unwrap() >= 2);
/// assert_eq!(
///     sel.base().unwrap().to_sorted_rows(),
///     vec![Row::from_ints(&[2]), Row::from_ints(&[3])],
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiffRelation {
    /// The relation the (lossy) system actually has.
    pub noisy: Relation,
    /// Rows present in `noisy` but absent from the true relation.
    pub plus: Relation,
    /// Rows lost from the true relation.
    pub minus: Relation,
}

impl DiffRelation {
    /// A triple from explicit parts.
    pub fn new(noisy: Relation, plus: Relation, minus: Relation) -> Self {
        DiffRelation { noisy, plus, minus }
    }

    /// A lossless relation: nothing added, nothing dropped.
    pub fn exact(base: Relation) -> Self {
        DiffRelation {
            noisy: base,
            plus: Relation::new(),
            minus: Relation::new(),
        }
    }

    /// The triage scenario: the system kept `kept` and dropped
    /// `dropped`, so the true relation is `kept + dropped`.
    pub fn from_kept_dropped(kept: Relation, dropped: Relation) -> Self {
        DiffRelation {
            noisy: kept,
            plus: Relation::new(),
            minus: dropped,
        }
    }

    /// Reconstruct the base (true) relation `S = S_noisy − S₊ + S₋`.
    ///
    /// Returns `None` if the triple is not *well-formed* (the signed
    /// reconstruction has a negative multiplicity), which cannot happen
    /// for triples produced by this crate's operators from well-formed
    /// inputs.
    pub fn base(&self) -> Option<Relation> {
        SignedRelation::from_relation(&self.noisy)
            .minus_rel(&self.plus)
            .plus_rel(&self.minus)
            .to_relation()
    }

    /// Check Equation (1) against a claimed base relation, in the
    /// truncation-free form `noisy + minus ≡ base + plus`.
    pub fn invariant_holds_for(&self, base: &Relation) -> bool {
        self.noisy.union_all(&self.minus) == base.union_all(&self.plus)
    }

    /// Canonicalize so `plus` and `minus` have disjoint support (rows
    /// appearing in both cancel). Preserves the invariant.
    pub fn canonicalize(&self) -> DiffRelation {
        let net = SignedRelation::from_relation(&self.plus).minus_rel(&self.minus);
        let (plus, minus) = net.split();
        DiffRelation {
            noisy: self.noisy.clone(),
            plus,
            minus,
        }
    }

    /// Differential selection σ̂ (paper Eq. 4): apply σ to all three
    /// channels.
    pub fn select<F: Fn(&Row) -> bool>(&self, pred: F) -> DiffRelation {
        DiffRelation {
            noisy: self.noisy.select(&pred),
            plus: self.plus.select(&pred),
            minus: self.minus.select(&pred),
        }
    }

    /// Differential (multiset) projection π̂ (paper Eq. 5): apply π to
    /// all three channels. Only correct for multisets — `SELECT
    /// DISTINCT` needs the deferred-projection rewrite (paper §8.1),
    /// implemented in `dt-rewrite`.
    pub fn project(&self, indices: &[usize]) -> DiffRelation {
        DiffRelation {
            noisy: self.noisy.project(indices),
            plus: self.plus.project(indices),
            minus: self.minus.project(indices),
        }
    }

    /// Differential union-all: every channel unions independently
    /// (union is linear).
    pub fn union_all(&self, other: &DiffRelation) -> DiffRelation {
        DiffRelation {
            noisy: self.noisy.union_all(&other.noisy),
            plus: self.plus.union_all(&other.plus),
            minus: self.minus.union_all(&other.minus),
        }
    }

    /// Differential cross product ×̂ (paper §3.2.3).
    ///
    /// `R_noisy = S_noisy × T_noisy`; the delta channels follow the
    /// paper's expansion, evaluated in the signed domain:
    ///
    /// ```text
    /// R₊ − R₋ =  S₊×T_noisy + (S_noisy−S₊)×T₊
    ///          − S₋×(T_noisy−T₊) − (S_noisy−S₊)×T₋ − S₋×T₋  …
    /// ```
    ///
    /// (equivalently: `R_noisy − S×T` where `S`, `T` are the
    /// reconstructed bases — the two forms are algebraically identical;
    /// see the property tests).
    pub fn cross(&self, other: &DiffRelation) -> DiffRelation {
        self.binary_signed(other, |a, b| a.cross(b), |a, b| a.cross(b))
    }

    /// Differential equijoin ⋈̂ (paper §3.2.4): same derivation as the
    /// cross product with ⋈ in place of ×.
    pub fn equijoin(&self, other: &DiffRelation, on: &[(usize, usize)]) -> DiffRelation {
        self.binary_signed(other, |a, b| a.equijoin(b, on), |a, b| a.equijoin(b, on))
    }

    /// Shared implementation of the bilinear binary operators (× and
    /// ⋈): because these operators distribute over signed multiset
    /// sums, `R₊ − R₋ = op(S_noisy, T_noisy) − op(S, T)` expands to the
    /// paper's formulas. We evaluate it as
    /// `op(noisy, noisy) − op(base_signed, base_signed)` in ℤ-multiset
    /// arithmetic, then split.
    fn binary_signed<FN, FS>(
        &self,
        other: &DiffRelation,
        op_noisy: FN,
        op_signed: FS,
    ) -> DiffRelation
    where
        FN: Fn(&Relation, &Relation) -> Relation,
        FS: Fn(&SignedRelation, &SignedRelation) -> SignedRelation,
    {
        let noisy = op_noisy(&self.noisy, &other.noisy);
        let s_base = SignedRelation::from_relation(&self.noisy)
            .minus_rel(&self.plus)
            .plus_rel(&self.minus);
        let t_base = SignedRelation::from_relation(&other.noisy)
            .minus_rel(&other.plus)
            .plus_rel(&other.minus);
        let true_result = op_signed(&s_base, &t_base);
        let delta = SignedRelation::from_relation(&noisy).minus(&true_result);
        let (plus, minus) = delta.split();
        DiffRelation { noisy, plus, minus }
    }

    /// Differential set difference −̂ (truncating multiset `EXCEPT
    /// ALL`).
    ///
    /// Set difference is *not* bilinear, so the signed-expansion trick
    /// does not apply; instead we reconstruct the bases, apply the true
    /// operator, and diff against the noisy result. Panics if either
    /// input triple is malformed (negative reconstructed multiplicity);
    /// triples built by this crate from real data are always well
    /// formed.
    pub fn set_difference(&self, other: &DiffRelation) -> DiffRelation {
        let noisy = self.noisy.minus(&other.noisy);
        let s_base = self
            .base()
            .expect("malformed left operand of set difference");
        let t_base = other
            .base()
            .expect("malformed right operand of set difference");
        let true_result = s_base.minus(&t_base);
        let delta = SignedRelation::from_relation(&noisy)
            .minus(&SignedRelation::from_relation(&true_result));
        let (plus, minus) = delta.split();
        DiffRelation { noisy, plus, minus }
    }

    /// Literal transcription of the set-difference formulas printed in
    /// paper §3.2.5:
    ///
    /// ```text
    /// R_noisy = S_noisy − T_noisy
    /// R₊ = (S₊ − T_noisy) + ((T₋ − S₊) ∩ S_noisy)
    /// R₋ = (S₊ ∩ T₋) + ((S_noisy ∩ T₊) − S₊) + (S₋ − T₋ − T_noisy)
    /// ```
    ///
    /// The printed formulas assume *set* semantics (distinct inputs);
    /// tests compare them against [`DiffRelation::set_difference`] on
    /// such inputs.
    pub fn set_difference_paper(&self, other: &DiffRelation) -> DiffRelation {
        let noisy = self.noisy.minus(&other.noisy);
        let plus = self
            .plus
            .minus(&other.noisy)
            .union_all(&other.minus.minus(&self.plus).intersect(&self.noisy));
        let minus = self
            .plus
            .intersect(&other.minus)
            .union_all(&self.noisy.intersect(&other.plus).minus(&self.plus))
            .union_all(&self.minus.minus(&other.minus).minus(&other.noisy));
        DiffRelation { noisy, plus, minus }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(rows: &[&[i64]]) -> Relation {
        Relation::from_rows(rows.iter().map(|r| Row::from_ints(r)))
    }

    /// Build the triple for "base with these rows dropped".
    fn dropped(base: &Relation, drop: &Relation) -> DiffRelation {
        DiffRelation::from_kept_dropped(base.minus(drop), drop.intersect(base))
    }

    #[test]
    fn exact_triple_reconstructs() {
        let base = rel(&[&[1], &[2]]);
        let d = DiffRelation::exact(base.clone());
        assert_eq!(d.base().unwrap(), base);
        assert!(d.invariant_holds_for(&base));
    }

    #[test]
    fn kept_dropped_reconstructs() {
        let base = rel(&[&[1], &[2], &[3]]);
        let d = dropped(&base, &rel(&[&[2]]));
        assert_eq!(d.noisy, rel(&[&[1], &[3]]));
        assert_eq!(d.base().unwrap(), base);
    }

    #[test]
    fn select_commutes_with_reconstruction() {
        let base = rel(&[&[1], &[2], &[3], &[4]]);
        let d = dropped(&base, &rel(&[&[2], &[4]]));
        let pred = |r: &Row| r[0].as_i64().unwrap() % 2 == 0;
        let sel = d.select(pred);
        assert_eq!(sel.base().unwrap(), base.select(pred));
    }

    #[test]
    fn project_commutes_with_reconstruction() {
        let base = rel(&[&[1, 10], &[2, 20], &[2, 30]]);
        let d = dropped(&base, &rel(&[&[2, 20]]));
        let p = d.project(&[0]);
        assert_eq!(p.base().unwrap(), base.project(&[0]));
    }

    #[test]
    fn cross_commutes_with_reconstruction() {
        let s_base = rel(&[&[1], &[2]]);
        let t_base = rel(&[&[7], &[8]]);
        let sd = dropped(&s_base, &rel(&[&[1]]));
        let td = dropped(&t_base, &rel(&[&[8]]));
        let c = sd.cross(&td);
        assert_eq!(c.noisy, sd.noisy.cross(&td.noisy));
        assert_eq!(c.base().unwrap(), s_base.cross(&t_base));
    }

    #[test]
    fn join_commutes_with_reconstruction() {
        let s_base = rel(&[&[1, 10], &[2, 20]]);
        let t_base = rel(&[&[10, 5], &[20, 6], &[20, 7]]);
        let sd = dropped(&s_base, &rel(&[&[2, 20]]));
        let td = dropped(&t_base, &rel(&[&[10, 5]]));
        let j = sd.equijoin(&td, &[(1, 0)]);
        assert_eq!(j.base().unwrap(), s_base.equijoin(&t_base, &[(1, 0)]));
        // Drop-only inputs to a join have no added results
        // (footnote 1 of the paper): plus must be empty.
        assert!(j.plus.is_empty(), "plus = {:?}", j.plus);
    }

    #[test]
    fn set_difference_commutes_with_reconstruction() {
        let s_base = rel(&[&[1], &[2], &[3]]);
        let t_base = rel(&[&[2]]);
        let sd = dropped(&s_base, &rel(&[&[1]]));
        let td = dropped(&t_base, &rel(&[&[2]]));
        let r = sd.set_difference(&td);
        assert_eq!(r.base().unwrap(), s_base.minus(&t_base));
        // Dropping from T *adds* rows to the noisy result relative to
        // truth is false here; dropping 2 from T makes noisy keep 2 in
        // S − T when the true answer drops it — that's a plus row.
        assert!(r.invariant_holds_for(&s_base.minus(&t_base)));
    }

    #[test]
    fn set_difference_drop_from_right_adds_output() {
        // S = {1}, T = {1}: true S − T = ∅.
        // If T's row is dropped, noisy = {1} − ∅ = {1}: one spurious row.
        let s = DiffRelation::exact(rel(&[&[1]]));
        let t = dropped(&rel(&[&[1]]), &rel(&[&[1]]));
        let r = s.set_difference(&t);
        assert_eq!(r.noisy, rel(&[&[1]]));
        assert_eq!(r.plus, rel(&[&[1]]));
        assert!(r.minus.is_empty());
        assert_eq!(r.base().unwrap(), Relation::new());
    }

    #[test]
    fn paper_set_difference_agrees_on_sets() {
        // Set-semantics inputs: all relations distinct, drops ⊆ base.
        let s_base = rel(&[&[1], &[2], &[3], &[4]]);
        let t_base = rel(&[&[2], &[4], &[5]]);
        for s_drop in [rel(&[]), rel(&[&[1]]), rel(&[&[2], &[3]])] {
            for t_drop in [rel(&[]), rel(&[&[4]]), rel(&[&[2], &[5]])] {
                let sd = dropped(&s_base, &s_drop);
                let td = dropped(&t_base, &t_drop);
                let ours = sd.set_difference(&td).canonicalize();
                let papers = sd.set_difference_paper(&td).canonicalize();
                assert_eq!(ours.noisy, papers.noisy);
                assert_eq!(ours.plus, papers.plus, "s_drop={s_drop} t_drop={t_drop}");
                assert_eq!(ours.minus, papers.minus, "s_drop={s_drop} t_drop={t_drop}");
            }
        }
    }

    #[test]
    fn canonicalize_cancels_overlap() {
        let d = DiffRelation::new(rel(&[&[1]]), rel(&[&[2], &[3]]), rel(&[&[2]]));
        let c = d.canonicalize();
        assert_eq!(c.plus, rel(&[&[3]]));
        assert!(c.minus.is_empty());
        // Invariant is preserved: same base.
        assert_eq!(d.base(), c.base());
    }

    #[test]
    fn union_all_is_channelwise() {
        let a = dropped(&rel(&[&[1], &[2]]), &rel(&[&[1]]));
        let b = dropped(&rel(&[&[3]]), &rel(&[&[3]]));
        let u = a.union_all(&b);
        assert_eq!(u.base().unwrap(), rel(&[&[1], &[2], &[3]]));
        assert_eq!(u.minus, rel(&[&[1], &[3]]));
    }

    #[test]
    fn malformed_triple_has_no_base() {
        // minus can't exceed what noisy+minus-plus allows: plus larger
        // than noisy forces a negative base count.
        let d = DiffRelation::new(rel(&[]), rel(&[&[9]]), rel(&[]));
        assert!(d.base().is_none());
    }
}
