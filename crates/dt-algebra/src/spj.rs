//! The select-project-join expansion of paper §4.2.
//!
//! For a query `Q ≡ R₁ ⋈ R₂ ⋈ … ⋈ Rₙ` whose inputs are each split
//! into *kept* and *dropped* partitions (`Aᵢ = Kᵢ + Dᵢ`), the paper
//! derives (Equations 12–14, drop-only case):
//!
//! ```text
//! Q_kept    = K₁ ⋈ K₂ ⋈ … ⋈ Kₙ
//! Q_dropped = Σᵢ  K₁ ⋈ … ⋈ Kᵢ₋₁ ⋈ Dᵢ ⋈ Aᵢ₊₁ ⋈ … ⋈ Aₙ
//! Q_added   = ∅
//! ```
//!
//! with the guarantee `Q_kept + Q_dropped ≡ A₁ ⋈ … ⋈ Aₙ` — i.e. the
//! dropped query recovers *exactly* the result tuples lost to
//! shedding. This module implements the expansion over exact
//! relations; `dt-rewrite` produces the same expression shape over
//! synopses. Note the term count: each of the `n` summands reuses the
//! growing kept-prefix, so the whole expansion costs `3n − 1` joins as
//! the paper observes.

use crate::relation::Relation;

/// A left-deep join chain over `n` inputs.
///
/// `steps[i]` is the equijoin condition used when joining input `i+1`
/// onto the (already joined) inputs `0..=i`; each pair is
/// `(column index into the concatenated left row, column index into
/// input i+1's row)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// One condition per join step; `steps.len() == n − 1`.
    pub steps: Vec<Vec<(usize, usize)>>,
}

impl JoinSpec {
    /// Number of inputs this spec joins.
    pub fn num_inputs(&self) -> usize {
        self.steps.len() + 1
    }
}

/// Join all inputs left-deep under `spec`.
///
/// # Panics
/// Panics if `inputs.len() != spec.num_inputs()` or `inputs` is empty.
pub fn join_all(inputs: &[&Relation], spec: &JoinSpec) -> Relation {
    assert!(!inputs.is_empty(), "join of zero inputs");
    assert_eq!(inputs.len(), spec.num_inputs(), "join spec arity mismatch");
    let mut acc = inputs[0].clone();
    for (i, step) in spec.steps.iter().enumerate() {
        acc = acc.equijoin(inputs[i + 1], step);
    }
    acc
}

/// `Q_kept`: the join of the kept partitions (Eq. 12).
pub fn kept_query(inputs: &[(Relation, Relation)], spec: &JoinSpec) -> Relation {
    let kept: Vec<&Relation> = inputs.iter().map(|(k, _)| k).collect();
    join_all(&kept, spec)
}

/// `Q_dropped`: the recovered lost results (Eq. 14).
///
/// Computes `Σᵢ K₁⋈…⋈Kᵢ₋₁ ⋈ Dᵢ ⋈ Aᵢ₊₁⋈…⋈Aₙ`, reusing the growing
/// kept-prefix across summands so the total work is `3n − 1` joins.
pub fn dropped_query(inputs: &[(Relation, Relation)], spec: &JoinSpec) -> Relation {
    assert!(!inputs.is_empty(), "join of zero inputs");
    assert_eq!(inputs.len(), spec.num_inputs(), "join spec arity mismatch");
    let n = inputs.len();
    // Precompute the "all" relations Aᵢ = Kᵢ + Dᵢ.
    let all: Vec<Relation> = inputs.iter().map(|(k, d)| k.union_all(d)).collect();

    let mut result = Relation::new();
    // kept_prefix = K₁ ⋈ … ⋈ Kᵢ₋₁, grown incrementally.
    let mut kept_prefix: Option<Relation> = None;
    // Indexing is clearer than an iterator here: each round touches
    // inputs[i], steps[i-1], and all[i+1..].
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let (kept_i, dropped_i) = &inputs[i];
        // term = prefix ⋈ Dᵢ
        let mut term = match &kept_prefix {
            None => dropped_i.clone(),
            Some(prefix) => prefix.equijoin(dropped_i, &spec.steps[i - 1]),
        };
        // term ⋈ Aᵢ₊₁ ⋈ … ⋈ Aₙ
        for (j, a) in all.iter().enumerate().skip(i + 1) {
            term = term.equijoin(a, &spec.steps[j - 1]);
        }
        result = result.union_all(&term);
        // Grow the kept prefix for the next summand.
        kept_prefix = Some(match kept_prefix {
            None => kept_i.clone(),
            Some(prefix) => prefix.equijoin(kept_i, &spec.steps[i - 1]),
        });
    }
    result
}

/// The whole-input result `A₁ ⋈ … ⋈ Aₙ`, for checking the
/// completeness theorem `Q_kept + Q_dropped ≡ Q_all`.
pub fn all_query(inputs: &[(Relation, Relation)], spec: &JoinSpec) -> Relation {
    let all: Vec<Relation> = inputs.iter().map(|(k, d)| k.union_all(d)).collect();
    let refs: Vec<&Relation> = all.iter().collect();
    join_all(&refs, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_types::Row;

    fn rel(rows: &[&[i64]]) -> Relation {
        Relation::from_rows(rows.iter().map(|r| Row::from_ints(r)))
    }

    /// The paper's example: R(a) ⋈ S(b, c) ⋈ T(d) on R.a = S.b and
    /// S.c = T.d. After joining R and S the concatenated row is
    /// (a, b, c); S.c is global column 2, T.d is local column 0.
    fn three_way_spec() -> JoinSpec {
        JoinSpec {
            steps: vec![vec![(0, 0)], vec![(2, 0)]],
        }
    }

    #[test]
    fn join_all_three_way() {
        let r = rel(&[&[1], &[2]]);
        let s = rel(&[&[1, 7], &[2, 8]]);
        let t = rel(&[&[7], &[9]]);
        let q = join_all(&[&r, &s, &t], &three_way_spec());
        assert_eq!(q.to_sorted_rows(), vec![Row::from_ints(&[1, 1, 7, 7])]);
    }

    #[test]
    fn completeness_kept_plus_dropped_equals_all() {
        let spec = three_way_spec();
        let inputs = vec![
            // (kept, dropped)
            (rel(&[&[1], &[2]]), rel(&[&[3]])),
            (rel(&[&[1, 7], &[3, 8]]), rel(&[&[2, 7], &[3, 9]])),
            (rel(&[&[7]]), rel(&[&[8], &[9]])),
        ];
        let kept = kept_query(&inputs, &spec);
        let dropped = dropped_query(&inputs, &spec);
        let all = all_query(&inputs, &spec);
        assert_eq!(kept.union_all(&dropped), all);
        // And the dropped query is not trivially empty here.
        assert!(!dropped.is_empty());
    }

    #[test]
    fn no_drops_means_empty_dropped_query() {
        let spec = three_way_spec();
        let inputs = vec![
            (rel(&[&[1]]), rel(&[])),
            (rel(&[&[1, 7]]), rel(&[])),
            (rel(&[&[7]]), rel(&[])),
        ];
        assert!(dropped_query(&inputs, &spec).is_empty());
        assert_eq!(kept_query(&inputs, &spec).len(), 1);
    }

    #[test]
    fn all_dropped_means_empty_kept_query() {
        let spec = three_way_spec();
        let inputs = vec![
            (rel(&[]), rel(&[&[1]])),
            (rel(&[]), rel(&[&[1, 7]])),
            (rel(&[]), rel(&[&[7]])),
        ];
        assert!(kept_query(&inputs, &spec).is_empty());
        assert_eq!(dropped_query(&inputs, &spec).len(), 1);
    }

    #[test]
    fn two_way_join() {
        let spec = JoinSpec {
            steps: vec![vec![(0, 0)]],
        };
        let inputs = vec![
            (rel(&[&[1], &[2]]), rel(&[&[2]])),
            (rel(&[&[2, 5]]), rel(&[&[1, 6]])),
        ];
        let kept = kept_query(&inputs, &spec);
        let dropped = dropped_query(&inputs, &spec);
        let all = all_query(&inputs, &spec);
        assert_eq!(kept.union_all(&dropped), all);
        // kept: 2 joins with (2,5) -> one row (2,2,5)
        assert_eq!(kept.to_sorted_rows(), vec![Row::from_ints(&[2, 2, 5])]);
        // dropped picks up (1,1,6) (D on S side) and (2,2,5) (D on R side).
        assert_eq!(dropped.len(), all.len() - kept.len());
    }

    #[test]
    fn single_input_degenerates() {
        let spec = JoinSpec { steps: vec![] };
        let inputs = vec![(rel(&[&[1]]), rel(&[&[2]]))];
        assert_eq!(kept_query(&inputs, &spec), rel(&[&[1]]));
        assert_eq!(dropped_query(&inputs, &spec), rel(&[&[2]]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn spec_arity_checked() {
        let spec = JoinSpec { steps: vec![] };
        let r = rel(&[&[1]]);
        let s = rel(&[&[1]]);
        join_all(&[&r, &s], &spec);
    }
}
