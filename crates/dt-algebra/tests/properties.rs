//! Property tests machine-checking the paper's §3 invariant
//! (`S_noisy ≡ S + S₊ − S₋`) for every differential operator, plus the
//! §4.2 completeness theorem for the SPJ expansion.

use dt_algebra::spj::{all_query, dropped_query, kept_query, JoinSpec};
use dt_algebra::{DiffRelation, Relation};
use dt_types::{Row, Value};
use proptest::prelude::*;

/// A small-domain row: values in 0..domain so joins actually match.
fn arb_row(arity: usize, domain: i64) -> impl Strategy<Value = Row> {
    prop::collection::vec(0..domain, arity).prop_map(|v| Row::from_ints(&v))
}

/// A relation of up to `max_rows` rows.
fn arb_relation(arity: usize, domain: i64, max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(arb_row(arity, domain), 0..=max_rows).prop_map(Relation::from_rows)
}

/// A `(base, DiffRelation)` pair built by dropping a random sub-bag of
/// the base — the scenario Data Triage actually faces.
fn arb_dropped_pair(
    arity: usize,
    domain: i64,
    max_rows: usize,
) -> impl Strategy<Value = (Relation, DiffRelation)> {
    (
        prop::collection::vec((arb_row(arity, domain), 0u8..3), 0..=max_rows),
        any::<u64>(),
    )
        .prop_map(|(rows, seed)| {
            let mut base = Relation::new();
            let mut drop = Relation::new();
            // Deterministically pick per-copy drop decisions from the seed.
            let mut s = seed;
            for (row, copies) in rows {
                for _ in 0..=copies {
                    base.insert(row.clone());
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if s % 3 == 0 {
                        drop.insert(row.clone());
                    }
                }
            }
            let kept = base.minus(&drop);
            (base, DiffRelation::from_kept_dropped(kept, drop))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// σ̂ commutes: base(σ̂(d)) == σ(base(d)).
    #[test]
    fn differential_select_commutes((base, d) in arb_dropped_pair(2, 6, 12)) {
        let pred = |r: &Row| matches!(r.get(0), Some(Value::Int(v)) if *v < 3);
        let sel = d.select(pred);
        prop_assert_eq!(sel.base().unwrap(), base.select(pred));
        prop_assert!(sel.invariant_holds_for(&base.select(pred)));
    }

    /// π̂ commutes (multiset projection).
    #[test]
    fn differential_project_commutes((base, d) in arb_dropped_pair(3, 5, 12)) {
        let p = d.project(&[2, 0]);
        prop_assert_eq!(p.base().unwrap(), base.project(&[2, 0]));
    }

    /// ×̂ commutes.
    #[test]
    fn differential_cross_commutes(
        (sb, sd) in arb_dropped_pair(1, 4, 8),
        (tb, td) in arb_dropped_pair(1, 4, 8),
    ) {
        let c = sd.cross(&td);
        prop_assert_eq!(c.noisy.clone(), sd.noisy.cross(&td.noisy));
        prop_assert_eq!(c.base().unwrap(), sb.cross(&tb));
    }

    /// ⋈̂ commutes, and drop-only joins have no added results
    /// (paper §4.2, footnote 1).
    #[test]
    fn differential_join_commutes(
        (sb, sd) in arb_dropped_pair(2, 4, 10),
        (tb, td) in arb_dropped_pair(2, 4, 10),
    ) {
        let j = sd.equijoin(&td, &[(1, 0)]);
        prop_assert_eq!(j.base().unwrap(), sb.equijoin(&tb, &[(1, 0)]));
        prop_assert!(j.plus.is_empty());
    }

    /// −̂ commutes (set difference, reconstruction-based).
    #[test]
    fn differential_set_difference_commutes(
        (sb, sd) in arb_dropped_pair(1, 5, 10),
        (tb, td) in arb_dropped_pair(1, 5, 10),
    ) {
        let r = sd.set_difference(&td);
        prop_assert_eq!(r.base().unwrap(), sb.minus(&tb));
        prop_assert!(r.invariant_holds_for(&sb.minus(&tb)));
    }

    /// The paper's printed §3.2.5 formulas agree with the
    /// reconstruction-based operator on set-semantics inputs
    /// (distinct relations, drops ⊆ base, kept ∩ dropped = ∅).
    #[test]
    fn paper_set_difference_agrees_on_set_inputs(
        s_all in prop::collection::btree_set(0i64..8, 0..8),
        s_dropmask in any::<u16>(),
        t_all in prop::collection::btree_set(0i64..8, 0..8),
        t_dropmask in any::<u16>(),
    ) {
        let split = |all: &std::collections::BTreeSet<i64>, mask: u16| {
            let mut kept = Relation::new();
            let mut dropped = Relation::new();
            for (i, &v) in all.iter().enumerate() {
                if mask & (1 << (i as u32 % 16)) != 0 {
                    dropped.insert(Row::from_ints(&[v]));
                } else {
                    kept.insert(Row::from_ints(&[v]));
                }
            }
            DiffRelation::from_kept_dropped(kept, dropped)
        };
        let sd = split(&s_all, s_dropmask);
        let td = split(&t_all, t_dropmask);
        let ours = sd.set_difference(&td).canonicalize();
        let papers = sd.set_difference_paper(&td).canonicalize();
        prop_assert_eq!(ours.noisy, papers.noisy);
        prop_assert_eq!(ours.plus, papers.plus);
        prop_assert_eq!(ours.minus, papers.minus);
    }

    /// Composition: a small query tree σ(π(R ⋈ S)) still commutes.
    #[test]
    fn differential_composition_commutes(
        (sb, sd) in arb_dropped_pair(2, 4, 8),
        (tb, td) in arb_dropped_pair(2, 4, 8),
    ) {
        let pred = |r: &Row| matches!(r.get(0), Some(Value::Int(v)) if *v != 2);
        let d = sd.equijoin(&td, &[(0, 0)]).project(&[1, 2]).select(pred);
        let truth = sb.equijoin(&tb, &[(0, 0)]).project(&[1, 2]).select(pred);
        prop_assert_eq!(d.base().unwrap(), truth);
    }

    /// The SPJ completeness theorem (Eq. 12–14):
    /// `Q_kept + Q_dropped ≡ Q_all` for 3-way chains.
    #[test]
    fn spj_kept_plus_dropped_is_all_3way(
        (_, r) in arb_dropped_pair(1, 4, 8),
        (_, s) in arb_dropped_pair(2, 4, 8),
        (_, t) in arb_dropped_pair(1, 4, 8),
    ) {
        let spec = JoinSpec { steps: vec![vec![(0, 0)], vec![(2, 0)]] };
        let inputs = vec![
            (r.noisy.clone(), r.minus.clone()),
            (s.noisy.clone(), s.minus.clone()),
            (t.noisy.clone(), t.minus.clone()),
        ];
        let kept = kept_query(&inputs, &spec);
        let dropped = dropped_query(&inputs, &spec);
        let all = all_query(&inputs, &spec);
        prop_assert_eq!(kept.union_all(&dropped), all);
    }

    /// Same theorem for 4-way chains — exercises the recurrence depth.
    #[test]
    fn spj_kept_plus_dropped_is_all_4way(
        (_, a) in arb_dropped_pair(2, 3, 6),
        (_, b) in arb_dropped_pair(2, 3, 6),
        (_, c) in arb_dropped_pair(2, 3, 6),
        (_, d) in arb_dropped_pair(2, 3, 6),
    ) {
        let spec = JoinSpec {
            steps: vec![vec![(1, 0)], vec![(3, 0)], vec![(5, 0)]],
        };
        let inputs: Vec<(Relation, Relation)> = [a, b, c, d]
            .into_iter()
            .map(|x| (x.noisy, x.minus))
            .collect();
        let kept = kept_query(&inputs, &spec);
        let dropped = dropped_query(&inputs, &spec);
        let all = all_query(&inputs, &spec);
        prop_assert_eq!(kept.union_all(&dropped), all);
    }

    // ------- bag-algebra laws underpinning the derivations -------

    #[test]
    fn union_is_commutative_and_associative(
        a in arb_relation(1, 5, 10),
        b in arb_relation(1, 5, 10),
        c in arb_relation(1, 5, 10),
    ) {
        prop_assert_eq!(a.union_all(&b), b.union_all(&a));
        prop_assert_eq!(a.union_all(&b).union_all(&c), a.union_all(&b.union_all(&c)));
    }

    #[test]
    fn minus_then_union_restores_subbags(
        base in arb_relation(1, 5, 10),
        extra in arb_relation(1, 5, 5),
    ) {
        // (base + extra) − extra == base (exact for sub-bag removal).
        let sum = base.union_all(&extra);
        prop_assert_eq!(sum.minus(&extra), base);
    }

    #[test]
    fn cross_distributes_over_union(
        a in arb_relation(1, 4, 6),
        b in arb_relation(1, 4, 6),
        c in arb_relation(1, 4, 6),
    ) {
        prop_assert_eq!(
            a.cross(&b.union_all(&c)),
            a.cross(&b).union_all(&a.cross(&c))
        );
    }

    #[test]
    fn equijoin_is_selected_cross(
        a in arb_relation(2, 4, 8),
        b in arb_relation(2, 4, 8),
    ) {
        let j = a.equijoin(&b, &[(0, 1)]);
        let filtered = a.cross(&b).select(|r| r[0] == r[3]);
        prop_assert_eq!(j, filtered);
    }

    #[test]
    fn join_cardinality_bounded_by_cross(
        a in arb_relation(1, 4, 8),
        b in arb_relation(1, 4, 8),
    ) {
        prop_assert!(a.equijoin(&b, &[(0, 0)]).len() <= a.len() * b.len());
    }

    #[test]
    fn intersect_is_lower_bound(
        a in arb_relation(1, 5, 10),
        b in arb_relation(1, 5, 10),
    ) {
        let i = a.intersect(&b);
        prop_assert!(i.is_subbag_of(&a));
        prop_assert!(i.is_subbag_of(&b));
    }

    #[test]
    fn distinct_is_idempotent(a in arb_relation(2, 4, 10)) {
        prop_assert_eq!(a.distinct().distinct(), a.distinct());
    }
}
