//! Per-stream triage state for worker threads.
//!
//! The simulation pipeline interleaves queueing, engine service, and
//! window close on one thread against virtual time. A server splits
//! those roles across threads: each physical stream gets a dedicated
//! worker that classifies tuples as **kept** (delivered past the
//! bounded channel) or **shed** (the channel was full), folds both
//! into the current windows' synopses, and — when the sealer
//! watermark passes a window's end — *seals* the window and hands its
//! state to the merger thread.
//!
//! [`StreamTriage`] is that per-worker state. It is intentionally
//! single-threaded (each worker owns one); the concurrency lives in
//! the channels around it. Unlike [`crate::SharedPipeline::offer`] it
//! does not require globally ordered arrivals — a tuple lands in
//! whatever windows contain its timestamp — but once a window is
//! sealed, stragglers for it are counted as `late` and discarded
//! (their window has already been emitted).

use std::collections::BTreeMap;

use dt_obs::MetricsRegistry;
use dt_synopsis::SynopsisConfig;
use dt_types::{DtResult, Row, Tuple, WindowId, WindowSpec};

use crate::executor::SynPair;
use crate::obs::StreamObs;
use crate::shared::{row_point_into, PendPair};
use crate::shed::ShedMode;

/// One sealed window of one physical stream, ready for the merger.
#[derive(Debug, Clone)]
pub struct SealedWindow {
    /// Physical stream index.
    pub stream: usize,
    /// Which shard of the stream's worker group sealed this (0 when
    /// the stream runs unsharded). The merger folds the shard seals of
    /// a window in ascending shard order ([`crate::merge_sealed`]).
    pub shard: usize,
    /// Which window.
    pub window: WindowId,
    /// Rows delivered to the exact engine, in arrival order.
    pub rows: Vec<Row>,
    /// Per-stream ingest sequence numbers parallel to `rows`, recorded
    /// by the `*_seq` triage entry points (empty otherwise). Sorting
    /// the union of shard contributions by these unique sequences
    /// restores global arrival order at merge, which is what keeps
    /// sealed windows bit-identical across shard counts.
    pub seqs: Vec<u64>,
    /// Sealed kept/dropped synopses (synopsis modes only). A triage in
    /// merge mode ([`StreamTriage::sharded`]) leaves them *unsealed* —
    /// the group merge seals after folding.
    pub syn: Option<SynPair>,
    /// Tuples that arrived with timestamps in this window.
    pub arrived: u64,
    /// Tuples kept (delivered).
    pub kept: u64,
    /// Tuples shed.
    pub dropped: u64,
    /// True when this window's state may be incomplete beyond normal
    /// shedding — e.g. the owning worker crashed and was restarted
    /// while the window was open, losing consumed-but-unsealed
    /// tuples. Degraded windows still carry whatever survived; the
    /// flag tells consumers the usual RMS-error bounds do not apply.
    pub degraded: bool,
}

/// Open-window state.
#[derive(Debug)]
struct WinState {
    rows: Vec<Row>,
    /// Ingest sequence numbers parallel to `rows` (merge mode only).
    seqs: Vec<u64>,
    syn: Option<SynPair>,
    /// Columnar kept/dropped point buffers, flushed into `syn` in one
    /// vectorized pass at seal time (synopsis modes only).
    pend: PendPair,
    arrived: u64,
    kept: u64,
    dropped: u64,
}

/// Per-stream triage state for one worker thread. See the module docs.
#[derive(Debug)]
pub struct StreamTriage {
    stream: usize,
    arity: usize,
    mode: ShedMode,
    synopsis: SynopsisConfig,
    spec: WindowSpec,
    /// Which shard of a worker group this triage is (0 unsharded).
    shard: usize,
    /// Merge mode: build merge-capable synopses, tag kept rows and
    /// synopsis points with ingest sequences, and leave synopses
    /// unsealed at seal so [`crate::merge_sealed`] can fold the
    /// group's partials exactly. Enabled by [`StreamTriage::sharded`].
    merge_mode: bool,
    wins: BTreeMap<WindowId, WinState>,
    /// Windows below this id are sealed; tuples for them are late.
    next_seal: WindowId,
    /// Windows below this id (and at or above `next_seal`) seal with
    /// the `degraded` flag set — the crash-recovery marker.
    degraded_until: WindowId,
    late: u64,
    /// Reusable synopsis-point buffer for the per-tuple hot path.
    point_scratch: Vec<i64>,
    /// Per-stream instruments (default = every handle disabled).
    obs: StreamObs,
}

impl StreamTriage {
    /// Triage state for physical stream `stream` whose rows have
    /// `arity` integer columns.
    pub fn new(
        stream: usize,
        arity: usize,
        mode: ShedMode,
        synopsis: SynopsisConfig,
        spec: WindowSpec,
    ) -> Self {
        StreamTriage {
            stream,
            arity,
            mode,
            synopsis,
            spec,
            shard: 0,
            merge_mode: false,
            wins: BTreeMap::new(),
            next_seal: 0,
            degraded_until: 0,
            late: 0,
            point_scratch: Vec::new(),
            obs: StreamObs::default(),
        }
    }

    /// Mark this triage as shard `shard` of a worker group (see the
    /// `merge_mode` field docs). Sealed windows carry the shard index
    /// and unsealed synopses; tuples must arrive via
    /// [`StreamTriage::keep_seq`] / [`StreamTriage::shed_seq`] so rows
    /// and synopsis points carry their ingest sequence.
    pub fn sharded(mut self, shard: usize) -> Self {
        self.shard = shard;
        self.merge_mode = true;
        self
    }

    /// The shard index stamped on this triage's seals.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Build one kept/dropped synopsis pair (merge-capable in merge
    /// mode).
    fn build_pair(&self) -> DtResult<SynPair> {
        let build = |cfg: &SynopsisConfig| {
            if self.merge_mode {
                cfg.build_mergeable(self.arity)
            } else {
                cfg.build(self.arity)
            }
        };
        Ok(SynPair {
            kept: build(&self.synopsis)?,
            dropped: build(&self.synopsis)?,
        })
    }

    /// Record per-stream kept/dropped/late counters and sampled
    /// synopsis-insert latency on `reg`, labeling series with
    /// `stream_name`.
    pub fn with_metrics(mut self, reg: &MetricsRegistry, stream_name: &str) -> Self {
        self.obs = StreamObs::register(reg, self.mode, stream_name);
        self
    }

    /// The id of the next window a seal will emit.
    pub fn next_seal(&self) -> WindowId {
        self.next_seal
    }

    /// The highest window id currently open, if any.
    pub fn max_open(&self) -> Option<WindowId> {
        self.wins.keys().next_back().copied()
    }

    /// Resume a replacement triage where a crashed predecessor left
    /// off: windows below `next_seal` were already sealed and emitted,
    /// so this instance must never re-seal them.
    pub fn resume_from(&mut self, next_seal: WindowId) {
        self.next_seal = next_seal;
        self.degraded_until = self.degraded_until.max(next_seal);
    }

    /// Mark every window below `upto` (and not yet sealed) as
    /// degraded: the predecessor may have consumed tuples for them
    /// that died with it, so their seals are flagged.
    pub fn mark_degraded_until(&mut self, upto: WindowId) {
        self.degraded_until = self.degraded_until.max(upto);
    }

    /// Tuples discarded because their window was already sealed.
    pub fn late(&self) -> u64 {
        self.late
    }

    fn state(&mut self, w: WindowId) -> DtResult<&mut WinState> {
        if !self.wins.contains_key(&w) {
            let syn = if self.mode.uses_synopses() {
                Some(self.build_pair()?)
            } else {
                None
            };
            self.wins.insert(
                w,
                WinState {
                    rows: Vec::new(),
                    seqs: Vec::new(),
                    syn,
                    pend: PendPair::default(),
                    arrived: 0,
                    kept: 0,
                    dropped: 0,
                },
            );
        }
        Ok(self.wins.get_mut(&w).expect("just inserted"))
    }

    /// Would a tuple with this timestamp be counted late (every
    /// containing window already sealed)? Work-stealing uses this to
    /// leave near-deadline tuples with the shard responsible for
    /// draining them at seal.
    pub fn would_be_late(&self, ts: dt_types::Timestamp) -> bool {
        self.spec.windows_of(ts).all(|w| w < self.next_seal)
    }

    /// Record a tuple delivered past the channel: buffer its row for
    /// exact execution and (in Data Triage mode) fold it into the
    /// kept synopsis of every window containing its timestamp.
    /// Returns `false` if every such window was already sealed (the
    /// tuple is late and only counted).
    pub fn keep(&mut self, tuple: &Tuple) -> DtResult<bool> {
        self.keep_at(tuple, None)
    }

    /// [`StreamTriage::keep`] carrying the tuple's per-stream ingest
    /// sequence number, recorded alongside the row and its synopsis
    /// point so sharded seals can merge in global arrival order.
    pub fn keep_seq(&mut self, tuple: &Tuple, seq: u64) -> DtResult<bool> {
        self.keep_at(tuple, Some(seq))
    }

    fn keep_at(&mut self, tuple: &Tuple, seq: Option<u64>) -> DtResult<bool> {
        let summarize = self.mode == ShedMode::DataTriage;
        let t0 = if summarize && self.obs.sample_synopsis() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let mut point = std::mem::take(&mut self.point_scratch);
        if summarize {
            row_point_into(&tuple.row, &mut point)?;
        }
        let mut landed = false;
        let mut inserts = 0u64;
        for w in self.spec.windows_of(tuple.ts) {
            if w < self.next_seal {
                continue;
            }
            landed = true;
            let st = self.state(w)?;
            st.arrived += 1;
            st.kept += 1;
            st.rows.push(tuple.row.clone());
            if let Some(seq) = seq {
                st.seqs.push(seq);
            }
            if summarize && st.syn.is_some() {
                match seq {
                    Some(seq) => st.pend.kept.push_tagged(&point, seq),
                    None => st.pend.kept.push(&point),
                }
                inserts += 1;
            }
        }
        if inserts > 0 {
            self.obs.synopsis_inserts.add(inserts);
        }
        self.point_scratch = point;
        if let Some(t0) = t0 {
            self.obs
                .synopsis_insert_us
                .observe(t0.elapsed().as_micros() as u64);
        }
        if landed {
            self.obs.kept.inc();
        } else {
            self.late += 1;
            self.obs.late.inc();
        }
        Ok(landed)
    }

    /// Batched [`StreamTriage::keep`]: fold a slice of delivered
    /// tuples, returning how many landed in at least one open window.
    /// Identical results to per-tuple calls.
    pub fn keep_batch(&mut self, tuples: &[Tuple]) -> DtResult<usize> {
        let mut landed = 0;
        for t in tuples {
            if self.keep(t)? {
                landed += 1;
            }
        }
        Ok(landed)
    }

    /// [`StreamTriage::keep_batch`] with each tuple's per-stream
    /// ingest sequence number (see [`StreamTriage::keep_seq`]).
    pub fn keep_batch_seq(&mut self, tuples: &[(Tuple, u64)]) -> DtResult<usize> {
        let mut landed = 0;
        for (t, seq) in tuples {
            if self.keep_at(t, Some(*seq))? {
                landed += 1;
            }
        }
        Ok(landed)
    }

    /// Record a shed tuple: fold it into the dropped synopsis of every
    /// window containing its timestamp (synopsis modes) or just count
    /// it (drop-only). Returns `false` if the tuple was late.
    pub fn shed(&mut self, tuple: &Tuple) -> DtResult<bool> {
        self.shed_at(tuple, None)
    }

    /// [`StreamTriage::shed`] carrying the tuple's per-stream ingest
    /// sequence number (see [`StreamTriage::keep_seq`]).
    pub fn shed_seq(&mut self, tuple: &Tuple, seq: u64) -> DtResult<bool> {
        self.shed_at(tuple, Some(seq))
    }

    fn shed_at(&mut self, tuple: &Tuple, seq: Option<u64>) -> DtResult<bool> {
        let summarize = self.mode.uses_synopses();
        let t0 = if summarize && self.obs.sample_synopsis() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let mut point = std::mem::take(&mut self.point_scratch);
        if summarize {
            row_point_into(&tuple.row, &mut point)?;
        }
        let mut landed = false;
        let mut inserts = 0u64;
        for w in self.spec.windows_of(tuple.ts) {
            if w < self.next_seal {
                continue;
            }
            landed = true;
            let st = self.state(w)?;
            st.arrived += 1;
            st.dropped += 1;
            if summarize && st.syn.is_some() {
                match seq {
                    Some(seq) => st.pend.dropped.push_tagged(&point, seq),
                    None => st.pend.dropped.push(&point),
                }
                inserts += 1;
            }
        }
        if inserts > 0 {
            self.obs.synopsis_inserts.add(inserts);
        }
        self.point_scratch = point;
        if let Some(t0) = t0 {
            self.obs
                .synopsis_insert_us
                .observe(t0.elapsed().as_micros() as u64);
        }
        if landed {
            self.obs.dropped.inc();
        } else {
            self.late += 1;
            self.obs.late.inc();
        }
        Ok(landed)
    }

    /// Batched [`StreamTriage::shed`]: fold a slice of shed tuples,
    /// returning how many landed in at least one open window.
    pub fn shed_batch(&mut self, tuples: &[Tuple]) -> DtResult<usize> {
        let mut landed = 0;
        for t in tuples {
            if self.shed(t)? {
                landed += 1;
            }
        }
        Ok(landed)
    }

    fn seal_one(&mut self, w: WindowId) -> DtResult<SealedWindow> {
        let mut st = match self.wins.remove(&w) {
            Some(st) => st,
            None => WinState {
                rows: Vec::new(),
                seqs: Vec::new(),
                syn: if self.mode.uses_synopses() {
                    Some(self.build_pair()?)
                } else {
                    None
                },
                pend: PendPair::default(),
                arrived: 0,
                kept: 0,
                dropped: 0,
            },
        };
        // Flush the window's buffered points in one vectorized pass,
        // then seal. In merge mode sealing is deferred: the group
        // merge folds the shards' unsealed partials first, so MAXDIFF
        // (and any other order-observing finalization) runs exactly
        // once, over the globally ordered point sequence.
        if let Some(pair) = &mut st.syn {
            let t0 = self
                .obs
                .synopsis_batch_insert_us
                .is_enabled()
                .then(std::time::Instant::now);
            st.pend.kept.flush_into(&mut pair.kept)?;
            st.pend.dropped.flush_into(&mut pair.dropped)?;
            if let Some(t0) = t0 {
                self.obs
                    .synopsis_batch_insert_us
                    .observe(t0.elapsed().as_micros() as u64);
            }
        }
        let defer = self.merge_mode;
        let syn = st.syn.map(|mut pair| {
            if !defer {
                pair.kept.seal();
                pair.dropped.seal();
            }
            pair
        });
        Ok(SealedWindow {
            stream: self.stream,
            shard: self.shard,
            window: w,
            rows: st.rows,
            seqs: st.seqs,
            syn,
            arrived: st.arrived,
            kept: st.kept,
            dropped: st.dropped,
            degraded: w < self.degraded_until,
        })
    }

    /// Seal every window with id `<= upto`, oldest first, including
    /// empty ones (the merger needs a report from every stream for
    /// every window). Windows already sealed are skipped, so sealing
    /// is idempotent per id.
    pub fn seal_through(&mut self, upto: WindowId) -> DtResult<Vec<SealedWindow>> {
        let mut out = Vec::new();
        while self.next_seal <= upto {
            let w = self.next_seal;
            out.push(self.seal_one(w)?);
            self.next_seal += 1;
        }
        Ok(out)
    }

    /// Seal everything still open (shutdown drain). Gaps between open
    /// windows are emitted as empty windows so the sealed sequence
    /// stays contiguous, and the degraded range is always covered —
    /// windows a crashed predecessor had open must be reported (as
    /// degraded) even when the replacement never saw a tuple for them.
    pub fn seal_all(&mut self) -> DtResult<Vec<SealedWindow>> {
        let last_open = self.wins.keys().next_back().copied();
        let last_degraded = self.degraded_until.checked_sub(1);
        match last_open.max(last_degraded) {
            Some(last) => self.seal_through(last),
            None => Ok(Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_types::{Row, Timestamp, VDuration};

    fn spec() -> WindowSpec {
        WindowSpec::new(VDuration::from_secs(1)).unwrap()
    }

    fn triage(mode: ShedMode) -> StreamTriage {
        StreamTriage::new(0, 1, mode, SynopsisConfig::Sparse { cell_width: 1 }, spec())
    }

    fn tup(v: i64, us: u64) -> Tuple {
        Tuple::new(Row::from_ints(&[v]), Timestamp::from_micros(us))
    }

    #[test]
    fn keep_and_shed_fold_into_the_right_synopses() {
        let mut t = triage(ShedMode::DataTriage);
        assert!(t.keep(&tup(1, 100_000)).unwrap());
        assert!(t.keep(&tup(2, 200_000)).unwrap());
        assert!(t.shed(&tup(3, 300_000)).unwrap());
        let sealed = t.seal_through(0).unwrap();
        assert_eq!(sealed.len(), 1);
        let w = &sealed[0];
        assert_eq!((w.arrived, w.kept, w.dropped), (3, 2, 1));
        assert_eq!(w.rows.len(), 2);
        let syn = w.syn.as_ref().unwrap();
        assert!((syn.kept.total_mass() - 2.0).abs() < 1e-9);
        assert!((syn.dropped.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn drop_only_counts_but_does_not_summarize() {
        let mut t = triage(ShedMode::DropOnly);
        t.keep(&tup(1, 100)).unwrap();
        t.shed(&tup(2, 200)).unwrap();
        let sealed = t.seal_through(0).unwrap();
        assert_eq!(sealed[0].dropped, 1);
        assert!(sealed[0].syn.is_none());
    }

    #[test]
    fn late_tuples_are_counted_not_folded() {
        let mut t = triage(ShedMode::DataTriage);
        t.keep(&tup(1, 100)).unwrap();
        assert_eq!(t.seal_through(0).unwrap().len(), 1);
        // Window 0 is sealed: both paths reject stragglers.
        assert!(!t.keep(&tup(2, 500)).unwrap());
        assert!(!t.shed(&tup(3, 600)).unwrap());
        assert_eq!(t.late(), 2);
        assert_eq!(t.next_seal(), 1);
    }

    #[test]
    fn seal_emits_contiguous_windows_including_empty() {
        let mut t = triage(ShedMode::DataTriage);
        // Tuples only in windows 0 and 3.
        t.keep(&tup(1, 500_000)).unwrap();
        t.keep(&tup(2, 3_500_000)).unwrap();
        let sealed = t.seal_all().unwrap();
        let ids: Vec<WindowId> = sealed.iter().map(|s| s.window).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(sealed[1].arrived, 0);
        assert!(sealed[1].rows.is_empty());
        // Idempotent: nothing left.
        assert!(t.seal_through(3).unwrap().is_empty());
    }

    #[test]
    fn resumed_triage_flags_the_degraded_range() {
        // Simulate a crash: the predecessor sealed window 0, then died
        // with windows 1 and 2 open. The replacement resumes at 1 and
        // marks everything through 2 degraded.
        let mut t = triage(ShedMode::DataTriage);
        t.resume_from(1);
        t.mark_degraded_until(3);
        // A fresh tuple for window 2 still lands and is reported.
        assert!(t.keep(&tup(9, 2_500_000)).unwrap());
        let sealed = t.seal_all().unwrap();
        let ids: Vec<WindowId> = sealed.iter().map(|s| s.window).collect();
        assert_eq!(ids, vec![1, 2], "resumes after the sealed prefix");
        assert!(sealed.iter().all(|s| s.degraded), "crash range flagged");
        assert_eq!(sealed[1].kept, 1, "post-restart tuples survive");
        // Windows past the degraded range seal clean again.
        t.keep(&tup(1, 3_500_000)).unwrap();
        let clean = t.seal_all().unwrap();
        assert_eq!(clean.len(), 1);
        assert!(!clean[0].degraded);
    }

    #[test]
    fn seal_all_covers_an_empty_degraded_range() {
        let mut t = triage(ShedMode::DataTriage);
        t.mark_degraded_until(2);
        // No tuples at all: the degraded windows must still be
        // reported so the merger can flag them instead of losing them.
        let sealed = t.seal_all().unwrap();
        let ids: Vec<WindowId> = sealed.iter().map(|s| s.window).collect();
        assert_eq!(ids, vec![0, 1]);
        assert!(sealed.iter().all(|s| s.degraded && s.arrived == 0));
    }

    #[test]
    fn hopping_windows_fold_into_every_containing_window() {
        let spec = WindowSpec::hopping(VDuration::from_secs(2), VDuration::from_secs(1)).unwrap();
        let mut t = StreamTriage::new(
            0,
            1,
            ShedMode::DataTriage,
            SynopsisConfig::Sparse { cell_width: 1 },
            spec,
        );
        // ts = 1.5 s is in windows 0 and 1.
        t.keep(&tup(7, 1_500_000)).unwrap();
        let sealed = t.seal_all().unwrap();
        assert_eq!(sealed.len(), 2);
        assert!(sealed.iter().all(|w| w.kept == 1 && w.rows.len() == 1));
    }
}
