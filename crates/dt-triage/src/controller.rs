//! The adaptive load controller (paper §4–5): delay-constrained
//! triage thresholds from measured costs.
//!
//! The paper's headline claim is that Data Triage is *adaptive*: the
//! user states a maximum tolerable result delay, and the system works
//! out — from measured per-tuple costs — how deep the triage queue may
//! grow before tuples must be diverted to the synopsis path so the
//! window still seals on time. This module implements that control
//! loop for both runtimes:
//!
//! * [`LoadController`] — the single-threaded flavor owned by the
//!   simulation's [`crate::SharedPipeline`].
//! * [`SharedController`] — the lock-free flavor shared between
//!   `dt-server`'s ingest threads, worker, and merger watchdog.
//!
//! # Threshold derivation
//!
//! Let `D` be the delay constraint, `Ĉ_main` the estimated cost of
//! processing one tuple on the main path (engine service plus, in
//! Data Triage mode, the kept-synopsis insert), and `Ĉ_triage` the
//! estimated cost of summarizing one shed tuple. A queue of depth `n`
//! takes about `n · Ĉ_main` to drain, so the largest depth that still
//! meets the deadline — reserving one slot for the tuple already in
//! service — is
//!
//! ```text
//! T = max(1, floor((D − Ĉ_triage) / Ĉ_main) − 1)
//! ```
//!
//! Both costs are online EWMA estimates ([`Ewma`]), seeded from the
//! static [`dt_engine::CostModel`] so the controller is sensible from
//! the first tuple and converges to measured reality as samples
//! arrive.
//!
//! # The headroom band
//!
//! Shedding everything above `T` and nothing below it makes the
//! system toggle between lossless and lossy at a single queue depth.
//! Instead, a *headroom band* covering the top [`DEFAULT_HEADROOM`]
//! fraction of the threshold ramps the shed fraction linearly from
//! near 0 (at the band's floor) to 1 (at `T`). The ramp is realized
//! with an error-diffusion accumulator rather than a random draw, so
//! a fraction `f` sheds exactly `f` of offered tuples in steady state
//! and every decision is deterministic — reproducibility is a
//! workspace-wide invariant (DESIGN.md §11).

use dt_types::{DtError, DtResult, VDuration};

use crate::obs::ControllerGauges;

/// Smoothing factor for the cost EWMAs: each new sample moves the
/// estimate 10 % of the way to the observation, so the estimate
/// reflects roughly the last ~20 samples.
pub const DEFAULT_ALPHA: f64 = 0.1;

/// Fraction of the threshold covered by the shedding ramp.
pub const DEFAULT_HEADROOM: f64 = 0.25;

/// A per-query maximum tolerable result delay (paper §4): the longest
/// a window's result may trail the window's end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DelayConstraint(VDuration);

impl DelayConstraint {
    /// A constraint of `d`; must be positive.
    pub fn new(d: VDuration) -> DtResult<Self> {
        if d.is_zero() {
            return Err(DtError::config("delay constraint must be positive"));
        }
        Ok(DelayConstraint(d))
    }

    /// A constraint of `ms` milliseconds.
    pub fn from_millis(ms: u64) -> DtResult<Self> {
        Self::new(VDuration::from_millis(ms))
    }

    /// A constraint of `us` microseconds.
    pub fn from_micros(us: u64) -> DtResult<Self> {
        Self::new(VDuration::from_micros(us))
    }

    /// The constraint as a duration.
    pub fn duration(self) -> VDuration {
        self.0
    }

    /// The constraint in microseconds.
    pub fn micros(self) -> u64 {
        self.0.micros()
    }
}

impl std::fmt::Display for DelayConstraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// An exponentially weighted moving average with explicit cold-start:
/// before any observation the value is the (optional) seed; the first
/// observation of an unseeded estimator is adopted exactly rather
/// than averaged against nothing.
///
/// ```
/// use dt_triage::Ewma;
///
/// let mut e = Ewma::new(0.5)?;
/// assert!(e.value().is_none());
/// e.observe(10.0); // cold start: adopted exactly
/// assert_eq!(e.value(), Some(10.0));
/// e.observe(20.0);
/// assert_eq!(e.value(), Some(15.0));
/// # Ok::<(), dt_types::DtError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// An unseeded estimator; `alpha` must lie in `(0, 1]`.
    pub fn new(alpha: f64) -> DtResult<Self> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(DtError::config(format!(
                "EWMA smoothing factor must be in (0, 1], got {alpha}"
            )));
        }
        Ok(Ewma { alpha, value: None })
    }

    /// An estimator primed with `seed` (e.g. a cost-model prediction),
    /// blended away by observations at the same `alpha` rate.
    pub fn seeded(alpha: f64, seed: f64) -> DtResult<Self> {
        let mut e = Ewma::new(alpha)?;
        e.value = Some(seed);
        Ok(e)
    }

    /// Fold one sample into the estimate.
    pub fn observe(&mut self, sample: f64) {
        self.value = Some(match self.value {
            None => sample,
            Some(v) => v + self.alpha * (sample - v),
        });
    }

    /// The current estimate, if any sample or seed has been supplied.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The current estimate, or `default` while cold.
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// The controller's verdict for one arriving tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedDecision {
    /// Admit the tuple to the triage queue (the main path).
    Keep,
    /// Divert the tuple (or a policy-chosen victim) to the synopsis
    /// path so the window can still seal within the delay constraint.
    Shed,
}

/// A frozen view of the controller, for `/stats` and gauges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerState {
    /// The current dynamic triage threshold (tuples).
    pub threshold: u64,
    /// Estimated drain delay of the queue at its last observed depth.
    pub estimated_delay: VDuration,
    /// Shed fraction applied at the last decision (0 outside the
    /// headroom band, ramping to 1 at the threshold).
    pub shed_fraction: f64,
    /// Current main-path cost estimate, µs/tuple.
    pub main_cost_us: f64,
    /// Current triage-path cost estimate, µs/tuple.
    pub triage_cost_us: f64,
}

/// `T = max(1, floor((D − Ĉ_triage) / Ĉ_main) − 1)`; a cold main-cost
/// estimate (`≤ 0`) disables shedding entirely (`u64::MAX`).
fn threshold_for(constraint_us: f64, main_us: f64, triage_us: f64) -> u64 {
    if main_us <= 0.0 {
        return u64::MAX;
    }
    let t = ((constraint_us - triage_us) / main_us).floor() - 1.0;
    if t >= u64::MAX as f64 {
        u64::MAX
    } else {
        (t.max(1.0)) as u64
    }
}

/// The shed fraction at queue depth `depth` under threshold
/// `threshold`: 0 below the headroom band, 1 at or above the
/// threshold, linear in between.
fn ramp_fraction(depth: u64, threshold: u64, headroom: f64) -> f64 {
    if threshold == u64::MAX {
        return 0.0;
    }
    if depth >= threshold {
        return 1.0;
    }
    let band = ((threshold as f64 * headroom).ceil() as u64).max(1);
    let floor = threshold.saturating_sub(band);
    if depth < floor {
        return 0.0;
    }
    (depth - floor + 1) as f64 / (threshold - floor + 1) as f64
}

/// The single-threaded adaptive controller, one per physical stream
/// of a [`crate::SharedPipeline`]. See the module docs for the math.
#[derive(Debug, Clone)]
pub struct LoadController {
    constraint: DelayConstraint,
    headroom: f64,
    main_us: Ewma,
    triage_us: Ewma,
    /// Error-diffusion accumulator: `decide` adds the current shed
    /// fraction and sheds on every whole-unit crossing, so a steady
    /// fraction `f` sheds exactly `f` of offers — deterministically.
    acc: f64,
    last_fraction: f64,
    last_depth: u64,
    gauges: ControllerGauges,
}

impl LoadController {
    /// A controller with cold (unseeded) cost estimates: it sheds
    /// nothing until the first main-path cost observation arrives.
    pub fn new(constraint: DelayConstraint) -> Self {
        LoadController {
            constraint,
            headroom: DEFAULT_HEADROOM,
            main_us: Ewma::new(DEFAULT_ALPHA).expect("constant alpha is valid"),
            triage_us: Ewma::new(DEFAULT_ALPHA).expect("constant alpha is valid"),
            acc: 0.0,
            last_fraction: 0.0,
            last_depth: 0,
            gauges: ControllerGauges::default(),
        }
    }

    /// A controller primed with cost-model predictions (µs/tuple), so
    /// the threshold is meaningful before any measurement lands.
    pub fn seeded(constraint: DelayConstraint, main_us: f64, triage_us: f64) -> Self {
        let mut c = LoadController::new(constraint);
        c.main_us = Ewma::seeded(DEFAULT_ALPHA, main_us).expect("constant alpha is valid");
        c.triage_us = Ewma::seeded(DEFAULT_ALPHA, triage_us).expect("constant alpha is valid");
        c
    }

    /// Attach gauges; the current state is published immediately (so
    /// an idle scrape already shows the seeded threshold) and again on
    /// every decision.
    pub fn with_gauges(mut self, gauges: ControllerGauges) -> Self {
        self.gauges = gauges;
        self.gauges.publish(&self.state());
        self
    }

    /// The configured constraint.
    pub fn constraint(&self) -> DelayConstraint {
        self.constraint
    }

    /// Fold one measured main-path cost (µs for one tuple).
    pub fn observe_main(&mut self, us: f64) {
        self.main_us.observe(us);
    }

    /// Fold one measured triage-path cost (µs for one shed tuple).
    pub fn observe_triage(&mut self, us: f64) {
        self.triage_us.observe(us);
    }

    /// The current dynamic triage threshold (tuples).
    pub fn threshold(&self) -> u64 {
        threshold_for(
            self.constraint.micros() as f64,
            self.main_us.get_or(0.0),
            self.triage_us.get_or(0.0),
        )
    }

    /// Decide one arriving tuple's fate given the current queue depth,
    /// and publish the state to any attached gauges.
    pub fn decide(&mut self, depth: usize) -> ShedDecision {
        let depth = depth as u64;
        let threshold = self.threshold();
        let f = ramp_fraction(depth, threshold, self.headroom);
        self.last_fraction = f;
        self.last_depth = depth;
        let decision = if f >= 1.0 {
            ShedDecision::Shed
        } else if f <= 0.0 {
            ShedDecision::Keep
        } else {
            self.acc += f;
            if self.acc >= 1.0 {
                self.acc -= 1.0;
                ShedDecision::Shed
            } else {
                ShedDecision::Keep
            }
        };
        let state = self.state();
        self.gauges.publish(&state);
        decision
    }

    /// The controller's current state (threshold, estimated delay at
    /// the last observed depth, last shed fraction, cost estimates).
    pub fn state(&self) -> ControllerState {
        ControllerState {
            threshold: self.threshold(),
            estimated_delay: VDuration::from_micros(
                (self.last_depth as f64 * self.main_us.get_or(0.0)).round() as u64,
            ),
            shed_fraction: self.last_fraction,
            main_cost_us: self.main_us.get_or(0.0),
            triage_cost_us: self.triage_us.get_or(0.0),
        }
    }
}

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// The lock-free adaptive controller shared between `dt-server`'s
/// ingest connections (decide), worker (cost observations, dequeue
/// accounting), and merger watchdog ([`SharedController::penalize`]).
///
/// Cost estimates live as `f64` bit patterns in atomics; the EWMA
/// update is a read-modify-write without a CAS loop, so two racing
/// observations may lose one sample — harmless for a smoothed
/// estimator fed thousands of samples, and it keeps the hot path to
/// two relaxed atomic ops.
#[derive(Debug)]
pub struct SharedController {
    /// Delay constraint in µs as `f64` bits; `f64::INFINITY` means
    /// unconstrained (the threshold saturates and nothing is shed).
    /// Atomic because a query registry retightens it at runtime as
    /// tenants with their own constraints come and go.
    constraint_us_bits: AtomicU64,
    headroom: f64,
    main_us_bits: AtomicU64,
    triage_us_bits: AtomicU64,
    /// Tuples currently in the stream's bounded channel (enqueued at
    /// ingest, dequeued by the worker).
    depth: AtomicI64,
    /// How many workers drain this backlog concurrently (DESIGN.md
    /// §15). A sharded stream's group shares one controller, so
    /// `depth` is the *group* backlog — but it drains `drains`×
    /// faster than a single worker would, and the threshold and
    /// delay estimate divide the per-tuple main cost accordingly.
    drains: AtomicU64,
    /// Error-diffusion accumulator in millifraction units (see
    /// [`LoadController::decide`]); `u64` wrapping keeps it lock-free.
    acc_milli: AtomicU64,
    last_fraction_milli: AtomicU64,
    gauges: ControllerGauges,
}

impl SharedController {
    /// A controller primed with cost-model predictions (µs/tuple).
    pub fn seeded(constraint: DelayConstraint, main_us: f64, triage_us: f64) -> Self {
        Self::with_constraint(Some(constraint), main_us, triage_us)
    }

    /// A controller with no delay constraint: it never sheds on its
    /// own (the bounded channel is the only backstop) until
    /// [`SharedController::set_constraint`] tightens it.
    pub fn unconstrained(main_us: f64, triage_us: f64) -> Self {
        Self::with_constraint(None, main_us, triage_us)
    }

    /// A controller with an optional constraint (`None` = never shed).
    pub fn with_constraint(
        constraint: Option<DelayConstraint>,
        main_us: f64,
        triage_us: f64,
    ) -> Self {
        let us = constraint.map_or(f64::INFINITY, |c| c.micros() as f64);
        SharedController {
            constraint_us_bits: AtomicU64::new(us.to_bits()),
            headroom: DEFAULT_HEADROOM,
            main_us_bits: AtomicU64::new(main_us.to_bits()),
            triage_us_bits: AtomicU64::new(triage_us.to_bits()),
            depth: AtomicI64::new(0),
            drains: AtomicU64::new(1),
            acc_milli: AtomicU64::new(0),
            last_fraction_milli: AtomicU64::new(0),
            gauges: ControllerGauges::default(),
        }
    }

    /// Attach gauges; the current state is published immediately (so
    /// an idle scrape already shows the seeded threshold) and again on
    /// every decision.
    pub fn with_gauges(mut self, gauges: ControllerGauges) -> Self {
        self.gauges = gauges;
        self.gauges.publish(&self.state());
        self
    }

    /// Replace the delay constraint at runtime; `None` disables
    /// constraint-driven shedding. Takes effect on the next decision.
    pub fn set_constraint(&self, constraint: Option<DelayConstraint>) {
        let us = constraint.map_or(f64::INFINITY, |c| c.micros() as f64);
        self.constraint_us_bits
            .store(us.to_bits(), Ordering::Relaxed);
    }

    /// The current delay constraint, if any.
    pub fn constraint(&self) -> Option<DelayConstraint> {
        let us = self.constraint_us();
        if us.is_finite() {
            DelayConstraint::from_micros(us.round().max(1.0) as u64).ok()
        } else {
            None
        }
    }

    fn constraint_us(&self) -> f64 {
        f64::from_bits(self.constraint_us_bits.load(Ordering::Relaxed))
    }

    fn main_us(&self) -> f64 {
        f64::from_bits(self.main_us_bits.load(Ordering::Relaxed))
    }

    /// The effective per-tuple drain cost: the main-path estimate
    /// divided by the number of concurrent drainers. With `drains`
    /// = 1 (the default) this is exactly the main-path estimate.
    fn drain_us(&self) -> f64 {
        self.main_us() / self.drains.load(Ordering::Relaxed).max(1) as f64
    }

    /// Declare how many workers drain this backlog concurrently
    /// (clamped to ≥ 1). Called once at startup when a stream's
    /// worker group is sized; see DESIGN.md §15.
    pub fn set_drains(&self, n: usize) {
        self.drains.store(n.max(1) as u64, Ordering::Relaxed);
    }

    /// The declared number of concurrent drainers.
    pub fn drains(&self) -> usize {
        self.drains.load(Ordering::Relaxed).max(1) as usize
    }

    fn triage_us(&self) -> f64 {
        f64::from_bits(self.triage_us_bits.load(Ordering::Relaxed))
    }

    fn ewma_fold(bits: &AtomicU64, sample: f64) {
        let old = f64::from_bits(bits.load(Ordering::Relaxed));
        let new = old + DEFAULT_ALPHA * (sample - old);
        bits.store(new.to_bits(), Ordering::Relaxed);
    }

    /// Fold one measured main-path cost (µs for one tuple).
    pub fn observe_main(&self, us: f64) {
        Self::ewma_fold(&self.main_us_bits, us);
    }

    /// Fold one measured triage-path cost (µs for one shed tuple).
    pub fn observe_triage(&self, us: f64) {
        Self::ewma_fold(&self.triage_us_bits, us);
    }

    /// A tuple entered the bounded channel.
    pub fn on_enqueue(&self) {
        self.depth.fetch_add(1, Ordering::Relaxed);
    }

    /// The worker pulled `n` tuples off the bounded channel.
    pub fn on_dequeue(&self, n: usize) {
        self.depth.fetch_sub(n as i64, Ordering::Relaxed);
    }

    /// The merger watchdog force-sealed past a stalled worker: the
    /// main-path cost estimate was evidently optimistic. Double it
    /// (halving the threshold) so the controller sheds harder until
    /// fresh measurements earn the trust back.
    pub fn penalize(&self) {
        let old = self.main_us();
        if old > 0.0 {
            self.main_us_bits
                .store((old * 2.0).to_bits(), Ordering::Relaxed);
        }
    }

    /// The current dynamic triage threshold (tuples). With a worker
    /// group attached ([`SharedController::set_drains`]) the backlog
    /// drains that many times faster, so the threshold scales up
    /// proportionally.
    pub fn threshold(&self) -> u64 {
        threshold_for(self.constraint_us(), self.drain_us(), self.triage_us())
    }

    /// The shed fraction the ramp dictates at the current depth —
    /// pure (no error diffusion, no gauge publication). This is the
    /// budget a [`FairController`] apportions across tenant lanes.
    pub fn fraction(&self) -> f64 {
        let depth = self.depth.load(Ordering::Relaxed).max(0) as u64;
        ramp_fraction(depth, self.threshold(), self.headroom)
    }

    /// Record `f` as the last applied fraction and publish the state
    /// to any attached gauges (what `decide` does internally; exposed
    /// for wrappers that make their own decisions).
    pub fn record_fraction(&self, f: f64) {
        self.last_fraction_milli
            .store((f * 1000.0).round() as u64, Ordering::Relaxed);
        self.gauges.publish(&self.state());
    }

    /// Decide one arriving tuple's fate from the current channel
    /// depth, and publish the state to any attached gauges.
    pub fn decide(&self) -> ShedDecision {
        let depth = self.depth.load(Ordering::Relaxed).max(0) as u64;
        let threshold = self.threshold();
        let f = ramp_fraction(depth, threshold, self.headroom);
        self.last_fraction_milli
            .store((f * 1000.0).round() as u64, Ordering::Relaxed);
        let decision = if f >= 1.0 {
            ShedDecision::Shed
        } else if f <= 0.0 {
            ShedDecision::Keep
        } else {
            let fm = (f * 1000.0).round() as u64;
            let prev = self.acc_milli.fetch_add(fm, Ordering::Relaxed);
            if (prev % 1000) + fm >= 1000 {
                ShedDecision::Shed
            } else {
                ShedDecision::Keep
            }
        };
        let state = self.state();
        self.gauges.publish(&state);
        decision
    }

    /// The controller's current state.
    pub fn state(&self) -> ControllerState {
        let depth = self.depth.load(Ordering::Relaxed).max(0) as u64;
        let main = self.main_us();
        ControllerState {
            threshold: self.threshold(),
            estimated_delay: VDuration::from_micros((depth as f64 * self.drain_us()).round() as u64),
            shed_fraction: self.last_fraction_milli.load(Ordering::Relaxed) as f64 / 1000.0,
            main_cost_us: main,
            triage_cost_us: self.triage_us(),
        }
    }
}

/// Decisions between two water-filling recomputes of the per-lane
/// shed fractions. Small enough that lane fractions track load shifts
/// within a few dozen tuples; large enough that the recompute (a sort
/// over a handful of lanes) stays off the per-tuple hot path.
pub const FAIR_EPOCH: u64 = 32;

/// Smoothing factor for per-lane arrival-rate EWMAs (per epoch).
const RATE_ALPHA: f64 = 0.3;

/// One tenant lane's configuration for [`FairController::set_lanes`].
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSpec {
    /// Tenant name (the tag carried by ingest frames).
    pub name: String,
    /// Fair-share weight; must be positive.
    pub weight: f64,
    /// The tenant's own delay constraint, if any. The stream's
    /// effective constraint is the minimum over the server's and
    /// every lane's.
    pub constraint: Option<DelayConstraint>,
}

/// A frozen view of one tenant lane, for `/stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneState {
    /// Tenant name.
    pub name: String,
    /// Fair-share weight.
    pub weight: f64,
    /// The tenant's own delay constraint, if any.
    pub constraint: Option<DelayConstraint>,
    /// EWMA'd arrivals per epoch (0 while cold).
    pub rate: f64,
    /// The lane's current shed fraction.
    pub shed_fraction: f64,
    /// Tuples this lane kept since it was created.
    pub kept: u64,
    /// Tuples this lane shed since it was created.
    pub shed: u64,
}

/// One tenant's lane: weight, optional constraint, and the lock-free
/// rate / fraction / diffusion state the epoch recompute maintains.
#[derive(Debug)]
struct TenantLane {
    name: String,
    weight: f64,
    constraint: Option<DelayConstraint>,
    /// Arrivals since the last epoch recompute.
    epoch_arrived: AtomicU64,
    /// EWMA'd arrivals per epoch (`f64` bits; 0 while cold).
    rate_bits: AtomicU64,
    /// This lane's shed fraction, per-mille (0–1000).
    shed_milli: AtomicU64,
    /// Per-lane error-diffusion accumulator (millifraction units).
    acc_milli: AtomicU64,
    /// Lifetime kept/shed counters for `/stats`.
    kept: AtomicU64,
    shed: AtomicU64,
}

impl TenantLane {
    fn new(spec: &LaneSpec) -> Self {
        TenantLane {
            name: spec.name.clone(),
            weight: spec.weight,
            constraint: spec.constraint,
            epoch_arrived: AtomicU64::new(0),
            rate_bits: AtomicU64::new(0f64.to_bits()),
            shed_milli: AtomicU64::new(0),
            acc_milli: AtomicU64::new(0),
            kept: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    fn rate(&self) -> f64 {
        f64::from_bits(self.rate_bits.load(Ordering::Relaxed))
    }
}

/// Weighted-fair multi-tenant admission over one stream's
/// [`SharedController`].
///
/// The base controller answers *how much* to shed — the ramp fraction
/// `f` derived from the stream's effective delay constraint and
/// measured costs. This wrapper answers *whose tuples*: the keep
/// budget `(1 − f) · R` (where `R` is the total arrival rate) is
/// apportioned across tenant lanes by **water-filling** on their
/// weights — every lane demanding less than its weighted fair share
/// keeps everything, and the surplus flows to the heavier lanes. A
/// tenant bursting 4× therefore absorbs the shedding its own burst
/// caused; lanes under their fair share shed nothing, so a quiet
/// tenant's accuracy is insulated from a noisy neighbor.
///
/// Per-lane shed fractions are recomputed every [`FAIR_EPOCH`]
/// decisions from per-epoch arrival-rate EWMAs; between recomputes
/// each lane sheds by its own error-diffusion accumulator, so the
/// realized per-lane fractions are deterministic for a given arrival
/// sequence. Two hard overrides bypass the (up to one epoch stale)
/// lane fractions: a fresh global fraction of 1 sheds everything
/// (deadline protection) and a fresh fraction of 0 keeps everything.
///
/// Tuples with no tenant tag, or a tag matching no lane, land in the
/// first lane — registries should order a catch-all default first.
/// With no lanes at all, `decide` degrades to the base controller.
#[derive(Debug)]
pub struct FairController {
    base: std::sync::Arc<SharedController>,
    /// The constraint configured at server startup, if any; lane
    /// constraints only ever tighten it.
    server_constraint: Option<DelayConstraint>,
    lanes: std::sync::RwLock<Vec<TenantLane>>,
    /// Decisions since the last water-filling recompute.
    epoch_tick: AtomicU64,
}

impl FairController {
    /// Wrap `base` (whose constraint should equal `server_constraint`
    /// until lanes arrive).
    pub fn new(
        base: std::sync::Arc<SharedController>,
        server_constraint: Option<DelayConstraint>,
    ) -> Self {
        FairController {
            base,
            server_constraint,
            lanes: std::sync::RwLock::new(Vec::new()),
            epoch_tick: AtomicU64::new(0),
        }
    }

    /// The wrapped per-stream controller (for cost observations,
    /// dequeue accounting, and the watchdog penalty).
    pub fn base(&self) -> &std::sync::Arc<SharedController> {
        &self.base
    }

    /// Replace the lane set atomically (the registry calls this on
    /// every register/unregister with the full current tenant list).
    /// Rate EWMAs and lifetime counters carry over for lanes whose
    /// names persist. Also retightens the base constraint to the
    /// minimum over the server's and every lane's.
    pub fn set_lanes(&self, specs: &[LaneSpec]) -> DtResult<()> {
        let mut seen: Vec<&str> = Vec::with_capacity(specs.len());
        for s in specs {
            if !(s.weight > 0.0 && s.weight.is_finite()) {
                return Err(DtError::config(format!(
                    "tenant '{}' weight must be positive and finite, got {}",
                    s.name, s.weight
                )));
            }
            if seen.contains(&s.name.as_str()) {
                return Err(DtError::config(format!(
                    "duplicate tenant lane '{}'",
                    s.name
                )));
            }
            seen.push(&s.name);
        }
        let mut lanes = self.lanes.write().expect("lane lock poisoned");
        let next: Vec<TenantLane> = specs
            .iter()
            .map(|spec| {
                let lane = TenantLane::new(spec);
                if let Some(old) = lanes.iter().find(|l| l.name == spec.name) {
                    lane.rate_bits
                        .store(old.rate_bits.load(Ordering::Relaxed), Ordering::Relaxed);
                    lane.kept
                        .store(old.kept.load(Ordering::Relaxed), Ordering::Relaxed);
                    lane.shed
                        .store(old.shed.load(Ordering::Relaxed), Ordering::Relaxed);
                }
                lane
            })
            .collect();
        *lanes = next;
        let effective = lanes
            .iter()
            .filter_map(|l| l.constraint)
            .chain(self.server_constraint)
            .min();
        self.base.set_constraint(effective);
        Ok(())
    }

    /// Decide one arriving tuple's fate. `tenant` is the frame's tag.
    pub fn decide(&self, tenant: Option<&str>) -> ShedDecision {
        let lanes = self.lanes.read().expect("lane lock poisoned");
        if lanes.is_empty() {
            drop(lanes);
            return self.base.decide();
        }
        let li = tenant
            .and_then(|t| lanes.iter().position(|l| l.name == t))
            .unwrap_or(0);
        lanes[li].epoch_arrived.fetch_add(1, Ordering::Relaxed);
        let tick = self.epoch_tick.fetch_add(1, Ordering::Relaxed) + 1;
        if tick.is_multiple_of(FAIR_EPOCH) {
            self.recompute(&lanes);
        }
        // Hard overrides on the *fresh* global fraction; the lane
        // fractions in between may be up to one epoch stale.
        let f = self.base.fraction();
        let decision = if f >= 1.0 {
            ShedDecision::Shed
        } else if f <= 0.0 {
            ShedDecision::Keep
        } else {
            let fm = lanes[li].shed_milli.load(Ordering::Relaxed);
            if fm >= 1000 {
                ShedDecision::Shed
            } else if fm == 0 {
                ShedDecision::Keep
            } else {
                let prev = lanes[li].acc_milli.fetch_add(fm, Ordering::Relaxed);
                if (prev % 1000) + fm >= 1000 {
                    ShedDecision::Shed
                } else {
                    ShedDecision::Keep
                }
            }
        };
        match decision {
            ShedDecision::Keep => lanes[li].kept.fetch_add(1, Ordering::Relaxed),
            ShedDecision::Shed => lanes[li].shed.fetch_add(1, Ordering::Relaxed),
        };
        decision
    }

    /// Water-fill the keep budget across lanes. Called under the read
    /// lock — it mutates only lane atomics.
    fn recompute(&self, lanes: &[TenantLane]) {
        let mut rates = Vec::with_capacity(lanes.len());
        for l in lanes {
            let sample = l.epoch_arrived.swap(0, Ordering::Relaxed) as f64;
            let old = l.rate();
            let new = if old <= 0.0 {
                sample
            } else {
                old + RATE_ALPHA * (sample - old)
            };
            l.rate_bits.store(new.to_bits(), Ordering::Relaxed);
            rates.push(new);
        }
        let f = self.base.fraction();
        self.base.record_fraction(f);
        let total: f64 = rates.iter().sum();
        if total <= 0.0 {
            // No arrival history yet: apply the global fraction flat.
            let fm = (f * 1000.0).round() as u64;
            for l in lanes {
                l.shed_milli.store(fm, Ordering::Relaxed);
            }
            return;
        }
        // Keep budget (1 − f)·R, apportioned by weight: serve lanes
        // in increasing demand-per-weight order so underloaded lanes
        // keep everything and their surplus flows to heavier ones.
        let mut keep_budget = (1.0 - f) * total;
        let mut order: Vec<usize> = (0..lanes.len()).collect();
        order.sort_by(|&a, &b| {
            let da = rates[a] / lanes[a].weight;
            let db = rates[b] / lanes[b].weight;
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut weight_left: f64 = lanes.iter().map(|l| l.weight).sum();
        for &i in &order {
            let fair = if weight_left > 0.0 {
                keep_budget * lanes[i].weight / weight_left
            } else {
                0.0
            };
            let keep = rates[i].min(fair);
            keep_budget -= keep;
            weight_left -= lanes[i].weight;
            let shed = if rates[i] <= 0.0 {
                0.0
            } else {
                1.0 - keep / rates[i]
            };
            lanes[i].shed_milli.store(
                (shed * 1000.0).round().clamp(0.0, 1000.0) as u64,
                Ordering::Relaxed,
            );
        }
    }

    /// Frozen per-lane views, in lane order.
    pub fn lane_states(&self) -> Vec<LaneState> {
        self.lanes
            .read()
            .expect("lane lock poisoned")
            .iter()
            .map(|l| LaneState {
                name: l.name.clone(),
                weight: l.weight,
                constraint: l.constraint,
                rate: l.rate(),
                shed_fraction: l.shed_milli.load(Ordering::Relaxed) as f64 / 1000.0,
                kept: l.kept.load(Ordering::Relaxed),
                shed: l.shed.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// True once any lane is configured.
    pub fn has_lanes(&self) -> bool {
        !self.lanes.read().expect("lane lock poisoned").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d_ms(ms: u64) -> DelayConstraint {
        DelayConstraint::from_millis(ms).unwrap()
    }

    #[test]
    fn constraint_must_be_positive() {
        assert!(DelayConstraint::from_millis(0).is_err());
        assert!(DelayConstraint::from_micros(1).is_ok());
        assert_eq!(d_ms(20).micros(), 20_000);
    }

    #[test]
    fn ewma_rejects_bad_alpha() {
        assert!(Ewma::new(0.0).is_err());
        assert!(Ewma::new(1.5).is_err());
        assert!(Ewma::new(-0.1).is_err());
        assert!(Ewma::new(1.0).is_ok());
    }

    #[test]
    fn ewma_cold_start_adopts_first_sample() {
        let mut e = Ewma::new(0.1).unwrap();
        assert!(e.value().is_none());
        assert_eq!(e.get_or(7.0), 7.0);
        e.observe(42.0);
        assert_eq!(e.value(), Some(42.0));
    }

    #[test]
    fn drains_scale_the_threshold_and_delay_estimate() {
        let c = SharedController::seeded(d_ms(10), 100.0, 5.0);
        let solo_threshold = c.threshold();
        let solo_state = c.state();
        assert_eq!(c.drains(), 1);

        // Declaring 4 drainers quarters the effective per-tuple cost:
        // the threshold roughly quadruples and, at a fixed depth, the
        // delay estimate quarters.
        for _ in 0..40 {
            c.on_enqueue();
        }
        let at_one = c.state().estimated_delay;
        c.set_drains(4);
        assert_eq!(c.drains(), 4);
        assert!(c.threshold() >= solo_threshold * 3, "{}", c.threshold());
        let at_four = c.state().estimated_delay;
        assert_eq!(at_four.micros() * 4, at_one.micros());

        // drains = 1 restores the single-worker numbers exactly.
        c.set_drains(1);
        c.on_dequeue(40);
        assert_eq!(c.threshold(), solo_threshold);
        assert_eq!(c.state(), solo_state);
        // Degenerate input clamps rather than disabling the model.
        c.set_drains(0);
        assert_eq!(c.drains(), 1);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::seeded(0.2, 100.0).unwrap();
        for _ in 0..200 {
            e.observe(10.0);
        }
        let v = e.value().unwrap();
        assert!((v - 10.0).abs() < 1e-6, "{v}");
    }

    #[test]
    fn ewma_step_response_is_geometric() {
        // After a step from 0 to 1, the residual error after k samples
        // is (1 - alpha)^k exactly.
        let alpha = 0.25;
        let mut e = Ewma::seeded(alpha, 0.0).unwrap();
        for k in 1..=20 {
            e.observe(1.0);
            let expected = 1.0 - (1.0 - alpha).powi(k);
            assert!(
                (e.value().unwrap() - expected).abs() < 1e-12,
                "k={k}: {} vs {expected}",
                e.value().unwrap()
            );
        }
    }

    #[test]
    fn threshold_math_matches_derivation() {
        // D = 20 ms, main = 1 ms, triage = 0: floor(20) - 1 = 19.
        assert_eq!(threshold_for(20_000.0, 1_000.0, 0.0), 19);
        // Triage cost eats into the budget.
        assert_eq!(threshold_for(20_000.0, 1_000.0, 2_000.0), 17);
        // Never below 1, never panics on tight constraints.
        assert_eq!(threshold_for(500.0, 1_000.0, 0.0), 1);
        // Cold estimate disables shedding.
        assert_eq!(threshold_for(20_000.0, 0.0, 0.0), u64::MAX);
    }

    #[test]
    fn ramp_is_monotone_and_bounded() {
        let t = 20;
        let mut last = 0.0;
        for depth in 0..=t + 5 {
            let f = ramp_fraction(depth, t, DEFAULT_HEADROOM);
            assert!((0.0..=1.0).contains(&f), "depth {depth}: {f}");
            assert!(f >= last, "ramp must be monotone in depth");
            last = f;
        }
        assert_eq!(ramp_fraction(0, t, DEFAULT_HEADROOM), 0.0);
        assert_eq!(ramp_fraction(t, t, DEFAULT_HEADROOM), 1.0);
        // An unbounded threshold never sheds.
        assert_eq!(ramp_fraction(1 << 40, u64::MAX, DEFAULT_HEADROOM), 0.0);
    }

    #[test]
    fn cold_controller_keeps_everything() {
        let mut c = LoadController::new(d_ms(10));
        for depth in [0, 10, 1000, 1_000_000] {
            assert_eq!(c.decide(depth), ShedDecision::Keep);
        }
        assert_eq!(c.threshold(), u64::MAX);
    }

    #[test]
    fn seeded_controller_sheds_above_threshold() {
        // D = 20 ms at 1 ms/tuple: threshold 19.
        let mut c = LoadController::seeded(d_ms(20), 1_000.0, 0.0);
        assert_eq!(c.threshold(), 19);
        assert_eq!(c.decide(0), ShedDecision::Keep);
        assert_eq!(c.decide(19), ShedDecision::Shed);
        assert_eq!(c.decide(100), ShedDecision::Shed);
    }

    #[test]
    fn ramp_sheds_proportionally_inside_band() {
        let mut c = LoadController::seeded(d_ms(100), 1_000.0, 0.0);
        let t = c.threshold(); // 98
        let depth = t - 1; // inside the band, fraction in (0, 1)
        let f = ramp_fraction(depth, t, DEFAULT_HEADROOM);
        assert!(f > 0.0 && f < 1.0);
        let n = 1000usize;
        let shed = (0..n)
            .filter(|_| c.decide(depth as usize) == ShedDecision::Shed)
            .count();
        // Error diffusion: the realized fraction tracks f to within
        // one decision.
        let realized = shed as f64 / n as f64;
        assert!(
            (realized - f).abs() < 2.0 / n as f64,
            "realized {realized} vs fraction {f}"
        );
    }

    #[test]
    fn tighter_constraints_give_lower_thresholds() {
        let mut last = u64::MAX;
        for ms in [500, 100, 50, 20, 10, 5, 2] {
            let c = LoadController::seeded(d_ms(ms), 1_000.0, 20.0);
            let t = c.threshold();
            assert!(t <= last, "D={ms}ms: threshold {t} > previous {last}");
            last = t;
        }
    }

    #[test]
    fn observations_move_the_threshold() {
        let mut c = LoadController::seeded(d_ms(20), 1_000.0, 0.0);
        assert_eq!(c.threshold(), 19);
        // The engine turns out to be 2x slower than the model claimed.
        for _ in 0..500 {
            c.observe_main(2_000.0);
        }
        assert_eq!(c.threshold(), 9);
        // Triage costs now measured as nonzero.
        for _ in 0..500 {
            c.observe_triage(2_000.0);
        }
        assert_eq!(c.threshold(), 8);
    }

    #[test]
    fn state_reports_consistent_numbers() {
        let mut c = LoadController::seeded(d_ms(20), 1_000.0, 50.0);
        c.decide(10);
        let s = c.state();
        // floor((20000 - 50) / 1000) - 1 = 18.
        assert_eq!(s.threshold, 18);
        assert_eq!(s.estimated_delay, VDuration::from_millis(10));
        assert_eq!(s.shed_fraction, 0.0);
        assert!((s.main_cost_us - 1_000.0).abs() < 1e-9);
        assert!((s.triage_cost_us - 50.0).abs() < 1e-9);
    }

    #[test]
    fn shared_controller_matches_single_threaded_math() {
        let c = SharedController::seeded(d_ms(20), 1_000.0, 0.0);
        assert_eq!(c.threshold(), 19);
        // Depth below the band: keep.
        assert_eq!(c.decide(), ShedDecision::Keep);
        // Fill the channel past the threshold.
        for _ in 0..25 {
            c.on_enqueue();
        }
        assert_eq!(c.decide(), ShedDecision::Shed);
        c.on_dequeue(25);
        assert_eq!(c.decide(), ShedDecision::Keep);
    }

    #[test]
    fn shared_controller_ewma_and_penalty() {
        let c = SharedController::seeded(d_ms(20), 1_000.0, 0.0);
        for _ in 0..500 {
            c.observe_main(2_000.0);
        }
        assert_eq!(c.threshold(), 9);
        c.penalize();
        assert_eq!(c.threshold(), 4);
        let s = c.state();
        assert!((s.main_cost_us - 4_000.0).abs() < 1.0);
    }

    #[test]
    fn shared_constraint_is_dynamic() {
        let c = SharedController::unconstrained(1_000.0, 0.0);
        assert_eq!(c.threshold(), u64::MAX);
        assert_eq!(c.constraint(), None);
        for _ in 0..1_000_000 {
            c.on_enqueue();
        }
        assert_eq!(c.decide(), ShedDecision::Keep, "unconstrained never sheds");
        c.set_constraint(Some(d_ms(20)));
        assert_eq!(c.threshold(), 19);
        assert_eq!(c.constraint(), Some(d_ms(20)));
        assert_eq!(c.decide(), ShedDecision::Shed);
        c.set_constraint(None);
        assert_eq!(c.decide(), ShedDecision::Keep);
    }

    fn fair(server_ms: Option<u64>) -> FairController {
        let base = std::sync::Arc::new(SharedController::with_constraint(
            server_ms.map(d_ms),
            1_000.0,
            0.0,
        ));
        FairController::new(base, server_ms.map(d_ms))
    }

    #[test]
    fn fair_without_lanes_degrades_to_base() {
        let c = fair(Some(20));
        assert_eq!(c.decide(None), ShedDecision::Keep);
        for _ in 0..25 {
            c.base().on_enqueue();
        }
        assert_eq!(c.decide(Some("a")), ShedDecision::Shed);
        assert!(!c.has_lanes());
    }

    #[test]
    fn lane_constraints_tighten_and_release_the_base() {
        let c = fair(Some(100));
        assert_eq!(c.base().constraint(), Some(d_ms(100)));
        c.set_lanes(&[
            LaneSpec {
                name: "a".into(),
                weight: 1.0,
                constraint: Some(d_ms(20)),
            },
            LaneSpec {
                name: "b".into(),
                weight: 1.0,
                constraint: None,
            },
        ])
        .unwrap();
        assert_eq!(c.base().constraint(), Some(d_ms(20)), "min wins");
        // Dropping the tight tenant releases back to the server's.
        c.set_lanes(&[LaneSpec {
            name: "b".into(),
            weight: 1.0,
            constraint: None,
        }])
        .unwrap();
        assert_eq!(c.base().constraint(), Some(d_ms(100)));
    }

    #[test]
    fn set_lanes_validates() {
        let c = fair(None);
        assert!(c
            .set_lanes(&[LaneSpec {
                name: "a".into(),
                weight: 0.0,
                constraint: None,
            }])
            .is_err());
        assert!(c
            .set_lanes(&[
                LaneSpec {
                    name: "a".into(),
                    weight: 1.0,
                    constraint: None,
                },
                LaneSpec {
                    name: "a".into(),
                    weight: 2.0,
                    constraint: None,
                },
            ])
            .is_err());
    }

    /// Drive `n` decisions for each lane in an interleaved,
    /// deterministic pattern (`burst` copies of `a` per one of `b`),
    /// at fixed queue depth, returning each lane's shed counts.
    fn drive(c: &FairController, rounds: usize, burst: usize) -> (u64, u64, u64, u64) {
        for _ in 0..rounds {
            for _ in 0..burst {
                c.decide(Some("a"));
            }
            c.decide(Some("b"));
        }
        let states = c.lane_states();
        let a = states.iter().find(|l| l.name == "a").unwrap();
        let b = states.iter().find(|l| l.name == "b").unwrap();
        (a.kept, a.shed, b.kept, b.shed)
    }

    #[test]
    fn bursting_tenant_absorbs_its_own_shedding() {
        let c = fair(Some(100));
        c.set_lanes(&[
            LaneSpec {
                name: "a".into(),
                weight: 1.0,
                constraint: None,
            },
            LaneSpec {
                name: "b".into(),
                weight: 1.0,
                constraint: None,
            },
        ])
        .unwrap();
        // Park the queue inside the headroom band: threshold 98,
        // depth 90 → global fraction strictly between 0 and 1.
        let t = c.base().threshold();
        for _ in 0..t - 8 {
            c.base().on_enqueue();
        }
        assert!(c.base().fraction() > 0.0 && c.base().fraction() < 1.0);
        // Tenant a offers 7× tenant b's rate with equal weights: all
        // shedding should land on a once rates are learned.
        let (_, a_shed, b_kept, b_shed) = drive(&c, 2_000, 7);
        assert!(a_shed > 100, "the bursting lane sheds (got {a_shed})");
        assert_eq!(
            b_shed, 0,
            "the under-fair-share lane never sheds (kept {b_kept})"
        );
    }

    #[test]
    fn fair_shedding_matches_global_fraction() {
        // With lanes in play the *total* realized shed fraction must
        // still track the base ramp — fairness redistributes, it does
        // not change how much is shed.
        let c = fair(Some(100));
        c.set_lanes(&[
            LaneSpec {
                name: "a".into(),
                weight: 1.0,
                constraint: None,
            },
            LaneSpec {
                name: "b".into(),
                weight: 1.0,
                constraint: None,
            },
        ])
        .unwrap();
        let t = c.base().threshold();
        for _ in 0..t - 8 {
            c.base().on_enqueue();
        }
        let f = c.base().fraction();
        let (a_kept, a_shed, b_kept, b_shed) = drive(&c, 4_000, 3);
        let total = (a_kept + a_shed + b_kept + b_shed) as f64;
        let realized = (a_shed + b_shed) as f64 / total;
        assert!(
            (realized - f).abs() < 0.05,
            "realized {realized} vs global fraction {f}"
        );
    }

    #[test]
    fn weights_skew_the_fair_share() {
        // Equal offered rates, 3:1 weights, a global fraction around
        // one half: the light lane sheds much more than the heavy one
        // (keep budget 0.5·R splits 3:1, so a sheds ~25% of its rate
        // while b sheds ~75%).
        let c = fair(Some(100));
        c.set_lanes(&[
            LaneSpec {
                name: "a".into(),
                weight: 3.0,
                constraint: None,
            },
            LaneSpec {
                name: "b".into(),
                weight: 1.0,
                constraint: None,
            },
        ])
        .unwrap();
        let t = c.base().threshold();
        for _ in 0..t - 13 {
            c.base().on_enqueue();
        }
        let (_, a_shed, _, b_shed) = drive(&c, 4_000, 1);
        assert!(
            b_shed > a_shed * 2,
            "light lane sheds more (a={a_shed}, b={b_shed})"
        );
    }

    #[test]
    fn untagged_tuples_land_in_the_first_lane() {
        let c = fair(Some(100));
        c.set_lanes(&[
            LaneSpec {
                name: "default".into(),
                weight: 1.0,
                constraint: None,
            },
            LaneSpec {
                name: "b".into(),
                weight: 1.0,
                constraint: None,
            },
        ])
        .unwrap();
        c.decide(None);
        c.decide(Some("nobody"));
        c.decide(Some("b"));
        let states = c.lane_states();
        assert_eq!(states[0].kept + states[0].shed, 2);
        assert_eq!(states[1].kept + states[1].shed, 1);
    }

    #[test]
    fn lane_counters_survive_set_lanes() {
        let c = fair(None);
        let spec_a = LaneSpec {
            name: "a".into(),
            weight: 1.0,
            constraint: None,
        };
        c.set_lanes(std::slice::from_ref(&spec_a)).unwrap();
        for _ in 0..5 {
            c.decide(Some("a"));
        }
        c.set_lanes(&[
            spec_a,
            LaneSpec {
                name: "b".into(),
                weight: 1.0,
                constraint: None,
            },
        ])
        .unwrap();
        assert_eq!(c.lane_states()[0].kept, 5, "a's counters carried over");
    }

    #[test]
    fn shared_ramp_error_diffusion_tracks_fraction() {
        let c = SharedController::seeded(d_ms(100), 1_000.0, 0.0);
        let t = c.threshold();
        for _ in 0..t - 1 {
            c.on_enqueue();
        }
        let f = ramp_fraction(t - 1, t, DEFAULT_HEADROOM);
        assert!(f > 0.0 && f < 1.0);
        let n = 1000usize;
        let shed = (0..n).filter(|_| c.decide() == ShedDecision::Shed).count();
        let realized = shed as f64 / n as f64;
        assert!(
            (realized - f).abs() < 2.0 / n as f64 + 1e-3,
            "realized {realized} vs fraction {f}"
        );
    }
}
