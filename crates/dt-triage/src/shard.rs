//! Sharded triage: partitioning, work-stealing, and shard-seal
//! merging (DESIGN.md §15).
//!
//! A hot stream's triage work is partitioned across a *worker group*
//! of `k` shards. Three primitives make the group behave, externally,
//! exactly like one worker:
//!
//! * [`ShardRouter`] — the partition function. Tuples hash on the
//!   stream's group-key column (so grouped aggregation and synopsis
//!   cells stay shard-local under skewless load) or round-robin when
//!   the stream's queries are keyless.
//! * [`ShardQueues`] — one bounded triage queue per shard with
//!   **batch work-stealing**: an idle worker steals the newest half of
//!   the deepest sibling queue. Stolen tuples are processed by the
//!   thief's [`crate::StreamTriage`]; correctness is unaffected
//!   because the merge step (below) re-orders by ingest sequence and
//!   every supported synopsis merges partition-independently —
//!   "stolen grouped work re-partitions at merge".
//! * [`merge_sealed`] — fold the group's per-shard seals of one
//!   window into a single [`SealedWindow`], in ascending shard order:
//!   rows re-sort on their unique per-stream ingest sequence numbers
//!   (restoring global arrival order), per-shard synopsis partials
//!   fold via [`dt_synopsis::Synopsis::merge_from`] and only then
//!   seal, and counters sum.
//!
//! **Determinism argument.** Stamp every tuple with the per-stream
//! ingest sequence `seq` *before* routing. (1) The kept-row multiset
//! of a window is decided by admission (shed/keep), which happens
//! before routing — so it is shard-count-independent. (2) Sorting the
//! merged rows by unique `seq` is a permutation-free function of that
//! multiset. (3) Each supported synopsis's merged state is a function
//! of the tagged point *set* alone: sparse grids are commutative
//! integer sums, MHISTs re-sort their point buffers by tag before the
//! single deferred MAXDIFF build, and mergeable reservoirs retain the
//! bottom-k rows by the deterministic priority `splitmix64(seed,
//! seq)`. Hence sealed output is a pure function of the admitted
//! `(tuple, seq)` sequence — independent of shard count, partition
//! function, and steal schedule. That is the property the
//! `sharded_identity` proptest pins.
//!
//! [`ShardedStream`] composes the three primitives into a
//! single-threaded reference model of the concurrent worker group;
//! the server's threaded plane (dt-server) and the proptests both
//! follow its seal/merge discipline.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use dt_synopsis::SynopsisConfig;
use dt_types::{DtError, DtResult, Row, Tuple, Value, WindowId, WindowSpec};

use crate::shed::ShedMode;
use crate::stream::{SealedWindow, StreamTriage};

/// splitmix64 finalizer — the same mix the mergeable reservoir uses,
/// here spreading group-key values across shards.
#[inline]
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The partition function of a stream's worker group.
///
/// Routing is a *locality heuristic*, not a correctness input: the
/// merge step re-orders rows by ingest sequence and every supported
/// synopsis merges partition-independently, so any routing (including
/// the round-robin fallback and mid-run work-stealing) yields
/// bit-identical sealed windows. Keyed routing just keeps each group
/// key's aggregation arena and synopsis cells on one core.
#[derive(Debug)]
pub struct ShardRouter {
    shards: usize,
    key_col: Option<usize>,
    rr: AtomicU64,
}

impl ShardRouter {
    /// A router over `shards` shards. `key_col` is the row column to
    /// hash (the queries' shared GROUP BY column); `None` routes
    /// round-robin (keyless windows).
    pub fn new(shards: usize, key_col: Option<usize>) -> Self {
        ShardRouter {
            shards: shards.max(1),
            key_col,
            rr: AtomicU64::new(0),
        }
    }

    /// Number of shards routed across.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The group-key column this router hashes, if any.
    pub fn key_col(&self) -> Option<usize> {
        self.key_col
    }

    /// Which shard a row belongs to. Integer group keys hash via
    /// splitmix64; rows without a usable key (keyless streams, NULL or
    /// non-integer key values) round-robin.
    pub fn route(&self, row: &Row) -> usize {
        if self.shards == 1 {
            return 0;
        }
        if let Some(col) = self.key_col {
            if let Some(Value::Int(v)) = row.get(col) {
                return (mix64(*v as u64) % self.shards as u64) as usize;
            }
        }
        (self.rr.fetch_add(1, Ordering::Relaxed) % self.shards as u64) as usize
    }
}

/// One stream's group of bounded triage queues with batch
/// work-stealing.
///
/// Each shard owns one FIFO queue bounded at `capacity` items — the
/// per-shard triage queue of the paper's Fig. 1, with a full queue as
/// the overflow (shed) signal. An idle worker calls
/// [`ShardQueues::steal`] to take the newest half of the deepest
/// sibling queue; the victim's oldest tuples stay put because their
/// windows seal from the victim's queue (the thief may already have
/// sealed them — stealing near-deadline work would turn it late).
#[derive(Debug)]
pub struct ShardQueues<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    depths: Vec<AtomicUsize>,
    capacity: usize,
    steals: AtomicU64,
    stolen_items: AtomicU64,
    /// Optional per-shard depth gauges, mirrored on every mutation
    /// (empty = unobserved).
    gauges: Vec<dt_obs::Gauge>,
}

impl<T> ShardQueues<T> {
    /// A group of `shards` queues, each bounded at `capacity` items.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        ShardQueues {
            queues: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            depths: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            capacity: capacity.max(1),
            steals: AtomicU64::new(0),
            stolen_items: AtomicU64::new(0),
            gauges: Vec::new(),
        }
    }

    /// Attach one depth gauge per shard; every push, pop, drain, and
    /// steal keeps them current.
    pub fn with_gauges(mut self, gauges: Vec<dt_obs::Gauge>) -> Self {
        assert_eq!(gauges.len(), self.queues.len(), "one gauge per shard");
        self.gauges = gauges;
        self
    }

    fn gauge_sub(&self, shard: usize, n: usize) {
        if let Some(g) = self.gauges.get(shard) {
            g.sub(n as i64);
        }
    }

    /// Number of shards in the group.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// Per-shard queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue onto one shard's queue; a full queue returns the item
    /// back (the shed signal).
    pub fn push(&self, shard: usize, item: T) -> Result<(), T> {
        let mut q = self.queues[shard].lock().expect("shard queue poisoned");
        if q.len() >= self.capacity {
            return Err(item);
        }
        q.push_back(item);
        self.depths[shard].fetch_add(1, Ordering::Relaxed);
        if let Some(g) = self.gauges.get(shard) {
            g.add(1);
        }
        Ok(())
    }

    /// Dequeue the oldest item of one shard's queue.
    pub fn pop(&self, shard: usize) -> Option<T> {
        let mut q = self.queues[shard].lock().expect("shard queue poisoned");
        let item = q.pop_front();
        if item.is_some() {
            self.depths[shard].fetch_sub(1, Ordering::Relaxed);
            self.gauge_sub(shard, 1);
        }
        item
    }

    /// Drain every item currently queued on one shard (seal-time and
    /// shutdown use this), oldest first.
    pub fn drain(&self, shard: usize) -> Vec<T> {
        let mut q = self.queues[shard].lock().expect("shard queue poisoned");
        self.depths[shard].fetch_sub(q.len(), Ordering::Relaxed);
        self.gauge_sub(shard, q.len());
        q.drain(..).collect()
    }

    /// Current depth of one shard's queue.
    pub fn depth(&self, shard: usize) -> usize {
        self.depths[shard].load(Ordering::Relaxed)
    }

    /// Total backlog across the group — what the delay controller and
    /// the steal heuristic read.
    pub fn total_depth(&self) -> usize {
        self.depths.iter().map(|d| d.load(Ordering::Relaxed)).sum()
    }

    /// How many steal operations (batches) have succeeded.
    pub fn steal_count(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// How many items have moved between shards by stealing.
    pub fn stolen_items(&self) -> u64 {
        self.stolen_items.load(Ordering::Relaxed)
    }

    /// Steal a batch for idle shard `thief`: from the deepest other
    /// queue, take up to the newest half of the items for which
    /// `eligible` returns true (the thief's lateness filter — see
    /// [`crate::StreamTriage::would_be_late`]), preserving their
    /// relative order. Returns an empty vector when no sibling has
    /// stealable work.
    pub fn steal(&self, thief: usize, mut eligible: impl FnMut(&T) -> bool) -> Vec<T> {
        let victim = match (0..self.queues.len())
            .filter(|&s| s != thief)
            .max_by_key(|&s| self.depth(s))
        {
            Some(v) if self.depth(v) >= 2 => v,
            _ => return Vec::new(),
        };
        let mut q = self.queues[victim].lock().expect("shard queue poisoned");
        let take = q.len() / 2;
        if take == 0 {
            return Vec::new();
        }
        // Pull the newest `take` items off the back, keep the ones
        // the thief can still process, and put the rest back in their
        // original order.
        let keep_from = q.len() - take;
        let mut tail: Vec<T> = q.split_off(keep_from).into_iter().collect();
        let mut stolen = Vec::new();
        let mut putback = Vec::new();
        for item in tail.drain(..) {
            if eligible(&item) {
                stolen.push(item);
            } else {
                putback.push(item);
            }
        }
        for item in putback {
            q.push_back(item);
        }
        drop(q);
        if !stolen.is_empty() {
            self.depths[victim].fetch_sub(stolen.len(), Ordering::Relaxed);
            self.gauge_sub(victim, stolen.len());
            self.steals.fetch_add(1, Ordering::Relaxed);
            self.stolen_items
                .fetch_add(stolen.len() as u64, Ordering::Relaxed);
        }
        stolen
    }
}

/// Fold one window's per-shard seals into a single [`SealedWindow`],
/// in ascending shard order (see the module docs for why the result
/// is bit-identical to a single-worker seal).
///
/// With one part this still finishes the deferred synopsis seal, so
/// the unsharded (`shards = 1`) plane takes exactly the same code
/// path — merging one partial is the identity.
///
/// # Errors
/// Errors if `parts` is empty, the parts disagree on stream or
/// window, rows are missing their sequence tags, or the synopsis kind
/// cannot merge.
pub fn merge_sealed(mut parts: Vec<SealedWindow>) -> DtResult<SealedWindow> {
    if parts.is_empty() {
        return Err(DtError::engine("merge_sealed needs at least one shard"));
    }
    parts.sort_by_key(|p| p.shard);
    if parts.len() == 1 {
        let mut only = parts.pop().expect("checked non-empty");
        if let Some(pair) = &mut only.syn {
            pair.kept.seal();
            pair.dropped.seal();
        }
        return Ok(only);
    }
    let (stream, window) = (parts[0].stream, parts[0].window);
    if parts
        .iter()
        .any(|p| p.stream != stream || p.window != window)
    {
        return Err(DtError::engine(
            "merge_sealed parts disagree on stream or window",
        ));
    }
    let mut arrived = 0;
    let mut kept = 0;
    let mut dropped = 0;
    let mut degraded = false;
    let mut tagged: Vec<(u64, Row)> = Vec::new();
    let mut syn: Option<crate::executor::SynPair> = None;
    for part in parts {
        arrived += part.arrived;
        kept += part.kept;
        dropped += part.dropped;
        degraded |= part.degraded;
        if part.seqs.len() != part.rows.len() {
            return Err(DtError::engine(
                "merge_sealed requires sequence-tagged rows (keep_seq)",
            ));
        }
        tagged.extend(part.seqs.into_iter().zip(part.rows));
        match (&mut syn, part.syn) {
            (None, pair) => syn = pair,
            (Some(acc), Some(pair)) => {
                acc.kept.merge_from(&pair.kept)?;
                acc.dropped.merge_from(&pair.dropped)?;
            }
            (Some(_), None) => {
                return Err(DtError::engine("merge_sealed parts disagree on synopses"))
            }
        }
    }
    tagged.sort_unstable_by_key(|&(seq, _)| seq);
    let (seqs, rows): (Vec<u64>, Vec<Row>) = tagged.into_iter().unzip();
    if let Some(pair) = &mut syn {
        pair.kept.seal();
        pair.dropped.seal();
    }
    Ok(SealedWindow {
        stream,
        shard: 0,
        window,
        rows,
        seqs,
        syn,
        arrived,
        kept,
        dropped,
        degraded,
    })
}

/// A single-threaded sharded stream: the reference model the
/// concurrent server plane mirrors, and the harness the bit-identity
/// proptest drives.
///
/// Tuples offered to [`ShardedStream::keep`] / [`ShardedStream::shed`]
/// are stamped with the stream's next ingest sequence, routed by the
/// group's [`ShardRouter`], and folded into that shard's
/// [`StreamTriage`]; seals fold the shards' windows with
/// [`merge_sealed`].
#[derive(Debug)]
pub struct ShardedStream {
    router: ShardRouter,
    shards: Vec<StreamTriage>,
    next_seq: u64,
}

impl ShardedStream {
    /// A worker group of `shards` triages for physical stream
    /// `stream` with `arity` integer columns, routing on `key_col`.
    pub fn new(
        stream: usize,
        arity: usize,
        mode: ShedMode,
        synopsis: SynopsisConfig,
        spec: WindowSpec,
        shards: usize,
        key_col: Option<usize>,
    ) -> Self {
        let shards = shards.max(1);
        ShardedStream {
            router: ShardRouter::new(shards, key_col),
            shards: (0..shards)
                .map(|i| StreamTriage::new(stream, arity, mode, synopsis, spec).sharded(i))
                .collect(),
            next_seq: 0,
        }
    }

    /// Number of shards in the group.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn stamp(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Admit a kept tuple: stamp, route, fold. Returns the shard it
    /// landed on.
    pub fn keep(&mut self, tuple: &Tuple) -> DtResult<usize> {
        let seq = self.stamp();
        let shard = self.router.route(&tuple.row);
        self.shards[shard].keep_seq(tuple, seq)?;
        Ok(shard)
    }

    /// Record a shed tuple: stamp, route, fold into the routed
    /// shard's dropped synopsis.
    pub fn shed(&mut self, tuple: &Tuple) -> DtResult<usize> {
        let seq = self.stamp();
        let shard = self.router.route(&tuple.row);
        self.shards[shard].shed_seq(tuple, seq)?;
        Ok(shard)
    }

    /// Route a tuple as [`ShardedStream::keep`] would, but fold it
    /// into an explicit shard — the single-threaded analog of a stolen
    /// batch landing on the thief. Output must be unaffected; the
    /// steal tests pin that.
    pub fn keep_on(&mut self, tuple: &Tuple, shard: usize) -> DtResult<()> {
        let seq = self.stamp();
        self.shards[shard].keep_seq(tuple, seq)?;
        Ok(())
    }

    /// Seal every window with id `<= upto` on every shard and fold
    /// the per-shard seals, returning one merged [`SealedWindow`] per
    /// window id in order.
    pub fn seal_through(&mut self, upto: WindowId) -> DtResult<Vec<SealedWindow>> {
        let mut per_shard: Vec<Vec<SealedWindow>> = Vec::with_capacity(self.shards.len());
        for t in &mut self.shards {
            per_shard.push(t.seal_through(upto)?);
        }
        Self::fold(per_shard)
    }

    /// Seal everything still open on any shard (every shard seals
    /// through the group-wide maximum so contributions stay aligned),
    /// returning merged windows in order.
    pub fn seal_all(&mut self) -> DtResult<Vec<SealedWindow>> {
        let last = self.shards.iter().filter_map(|t| t.max_open()).max();
        match last {
            Some(last) => self.seal_through(last),
            None => Ok(Vec::new()),
        }
    }

    fn fold(per_shard: Vec<Vec<SealedWindow>>) -> DtResult<Vec<SealedWindow>> {
        let n = per_shard.first().map_or(0, Vec::len);
        if per_shard.iter().any(|s| s.len() != n) {
            return Err(DtError::engine("shards sealed unequal window ranges"));
        }
        let mut out = Vec::with_capacity(n);
        let mut iters: Vec<_> = per_shard.into_iter().map(Vec::into_iter).collect();
        for _ in 0..n {
            let parts: Vec<SealedWindow> = iters
                .iter_mut()
                .map(|it| it.next().expect("sized"))
                .collect();
            out.push(merge_sealed(parts)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_types::{Timestamp, VDuration};

    fn spec() -> WindowSpec {
        WindowSpec::new(VDuration::from_secs(1)).unwrap()
    }

    fn tup(v: i64, us: u64) -> Tuple {
        Tuple::new(Row::from_ints(&[v]), Timestamp::from_micros(us))
    }

    #[test]
    fn router_is_stable_per_key_and_covers_shards() {
        let r = ShardRouter::new(4, Some(0));
        for v in 0..100 {
            let row = Row::from_ints(&[v]);
            assert_eq!(r.route(&row), r.route(&row), "keyed routing is stable");
        }
        let hit: std::collections::BTreeSet<usize> =
            (0..100).map(|v| r.route(&Row::from_ints(&[v]))).collect();
        assert!(hit.len() > 1, "keys spread across shards: {hit:?}");
        // Keyless: round-robin cycles every shard.
        let rr = ShardRouter::new(3, None);
        let row = Row::from_ints(&[7]);
        let seq: Vec<usize> = (0..6).map(|_| rr.route(&row)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn queues_bound_and_steal_newest_half() {
        let q: ShardQueues<i32> = ShardQueues::new(2, 4);
        for v in 0..4 {
            q.push(0, v).unwrap();
        }
        assert_eq!(q.push(0, 99).unwrap_err(), 99, "full queue sheds");
        assert_eq!(q.total_depth(), 4);
        let stolen = q.steal(1, |_| true);
        assert_eq!(stolen, vec![2, 3], "newest half, order preserved");
        assert_eq!(q.depth(0), 2);
        assert_eq!(q.pop(0), Some(0));
        assert_eq!(q.steal_count(), 1);
        assert_eq!(q.stolen_items(), 2);
    }

    #[test]
    fn steal_respects_the_eligibility_filter() {
        let q: ShardQueues<i32> = ShardQueues::new(2, 16);
        for v in 0..8 {
            q.push(0, v).unwrap();
        }
        let stolen = q.steal(1, |&v| v % 2 == 0);
        assert_eq!(stolen, vec![4, 6], "only eligible items move");
        // Ineligible items remain, in order, behind the untouched head.
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop(0)).collect();
        assert_eq!(rest, vec![0, 1, 2, 3, 5, 7]);
    }

    #[test]
    fn sharded_seal_matches_single_worker() {
        let cfg = SynopsisConfig::Sparse { cell_width: 10 };
        let mut single = ShardedStream::new(0, 1, ShedMode::DataTriage, cfg, spec(), 1, Some(0));
        let mut group = ShardedStream::new(0, 1, ShedMode::DataTriage, cfg, spec(), 4, Some(0));
        for i in 0..200u64 {
            let t = tup((i % 17) as i64, i * 4_000);
            if i % 5 == 0 {
                single.shed(&t).unwrap();
                group.shed(&t).unwrap();
            } else {
                single.keep(&t).unwrap();
                group.keep(&t).unwrap();
            }
        }
        let a = single.seal_all().unwrap();
        let b = group.seal_all().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rows, y.rows, "window {}", x.window);
            assert_eq!(x.seqs, y.seqs);
            assert_eq!(x.syn, y.syn);
            assert_eq!(
                (x.arrived, x.kept, x.dropped),
                (y.arrived, y.kept, y.dropped)
            );
        }
    }

    #[test]
    fn stolen_work_lands_without_loss_or_duplication() {
        let cfg = SynopsisConfig::Sparse { cell_width: 10 };
        let mut routed = ShardedStream::new(0, 1, ShedMode::DataTriage, cfg, spec(), 4, Some(0));
        let mut stolen = ShardedStream::new(0, 1, ShedMode::DataTriage, cfg, spec(), 4, Some(0));
        // Adversarial single-key load: everything routes to one shard.
        // The "stolen" run sprays the same tuples across all shards —
        // the single-threaded analog of batch stealing under skew.
        for i in 0..120u64 {
            let t = tup(42, i * 8_000);
            routed.keep(&t).unwrap();
            stolen.keep_on(&t, (i % 4) as usize).unwrap();
        }
        let a = routed.seal_all().unwrap();
        let b = stolen.seal_all().unwrap();
        assert_eq!(a.len(), b.len());
        let total: usize = b.iter().map(|w| w.seqs.len()).sum();
        assert_eq!(total, 120, "every tuple lands exactly once");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rows, y.rows);
            assert_eq!(x.seqs, y.seqs, "no batch lost or duplicated");
            assert_eq!(x.syn, y.syn);
        }
    }

    #[test]
    fn merge_sealed_rejects_mismatched_parts() {
        assert!(merge_sealed(Vec::new()).is_err());
        let cfg = SynopsisConfig::Sparse { cell_width: 10 };
        let mut a = ShardedStream::new(0, 1, ShedMode::DataTriage, cfg, spec(), 2, None);
        a.keep(&tup(1, 1_000)).unwrap();
        let mut b = ShardedStream::new(1, 1, ShedMode::DataTriage, cfg, spec(), 2, None);
        b.keep(&tup(1, 1_000)).unwrap();
        let wa = a.seal_all().unwrap();
        let wb = b.seal_all().unwrap();
        let err = merge_sealed(vec![wa[0].clone(), wb[0].clone()]);
        assert!(err.is_err(), "different streams must not merge");
    }
}
