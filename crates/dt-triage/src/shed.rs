//! The three load-shedding methodologies (paper §5.2.1).

/// Which load-shedding methodology a [`crate::Pipeline`] runs.
///
/// All three share the same queue, synopsis, and merge code — the
/// paper's single-codebase design for a fair comparison: drop-only
/// *disables* synopsis construction; summarize-only *bypasses* the
/// queue and synopsizes everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedMode {
    /// Victims are discarded; results come from kept tuples only.
    DropOnly,
    /// Every tuple is synopsized and *all* query processing is
    /// approximate; the exact engine sees nothing.
    SummarizeOnly,
    /// The full Data Triage architecture: exact processing of kept
    /// tuples plus shadow-query estimation of the shed remainder.
    DataTriage,
}

impl ShedMode {
    /// Short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            ShedMode::DropOnly => "drop-only",
            ShedMode::SummarizeOnly => "summarize-only",
            ShedMode::DataTriage => "data-triage",
        }
    }

    /// All modes, in the order the paper's figures plot them.
    pub fn all() -> [ShedMode; 3] {
        [
            ShedMode::DataTriage,
            ShedMode::DropOnly,
            ShedMode::SummarizeOnly,
        ]
    }

    /// Does this mode build synopses of shed/seen tuples?
    pub fn uses_synopses(&self) -> bool {
        !matches!(self, ShedMode::DropOnly)
    }

    /// Does this mode run tuples through the exact engine?
    pub fn uses_engine(&self) -> bool {
        !matches!(self, ShedMode::SummarizeOnly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_capabilities() {
        assert!(!ShedMode::DropOnly.uses_synopses());
        assert!(ShedMode::DropOnly.uses_engine());
        assert!(ShedMode::SummarizeOnly.uses_synopses());
        assert!(!ShedMode::SummarizeOnly.uses_engine());
        assert!(ShedMode::DataTriage.uses_synopses());
        assert!(ShedMode::DataTriage.uses_engine());
    }

    #[test]
    fn labels() {
        assert_eq!(ShedMode::DataTriage.label(), "data-triage");
        assert_eq!(ShedMode::all().len(), 3);
    }
}
