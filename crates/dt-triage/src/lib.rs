//! The Data Triage load-shedding layer — the paper's Figure 1,
//! assembled.
//!
//! Components:
//!
//! * [`TriageQueue`] — the bounded queue between each data source and
//!   the query engine. When it overflows, a [`DropPolicy`] chooses a
//!   victim; in Data Triage mode the victim is folded into the current
//!   window's *dropped* synopsis instead of vanishing.
//! * [`ShedMode`] — the three load-shedding methodologies of §5.2.1,
//!   sharing one codebase exactly as the paper prescribes:
//!   `DropOnly` (victims discarded, no synopses), `SummarizeOnly`
//!   (queue bypassed, *everything* synopsized, all processing
//!   approximate), and `DataTriage` (the full architecture).
//! * [`Pipeline`] — the virtual-clock simulation loop: arrivals →
//!   triage queues → engine (at its cost-model service rate) → window
//!   close → exact execution + shadow-query estimation → merge.
//! * [`merge`] — combining exact per-group aggregates with the shadow
//!   plan's estimates (the role the paper's web front-end played).

//! * [`QueryExecutor`] / [`StreamTriage`] — the window-close and
//!   per-stream fold/seal halves of the pipeline, factored out so a
//!   threaded runtime (`dt-server`) can drive them from worker and
//!   merger threads.

pub mod executor;
pub mod merge;
pub mod obs;
pub mod pipeline;
pub mod policy;
pub mod queue;
pub mod reorder;
pub mod shared;
pub mod shed;
pub mod stream;
mod winmap;

pub use executor::{QueryExecutor, SharedStream, SynPair};
pub use merge::{merge_window, MergedGroups};
pub use obs::{StreamObs, TriageObs};
pub use pipeline::{
    ExecStrategy, Pipeline, PipelineConfig, RunReport, RunTotals, WindowPayload, WindowResult,
};
pub use policy::DropPolicy;
pub use queue::TriageQueue;
pub use reorder::ReorderBuffer;
pub use shared::SharedPipeline;
pub use shed::ShedMode;
pub use stream::{SealedWindow, StreamTriage};
