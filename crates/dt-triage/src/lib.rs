//! The Data Triage load-shedding layer — the paper's Figure 1,
//! assembled end to end.
//!
//! # The pipeline, stage by stage
//!
//! Arrivals flow through five stages, each a type in this crate:
//!
//! 1. **[`TriageQueue`]** (paper Fig. 1) — the bounded queue between
//!    each data source and the query engine. When it overflows — or
//!    when the adaptive [`LoadController`] says the backlog can no
//!    longer drain within the delay constraint — a victim must go.
//! 2. **[`DropPolicy`]** (§5.2.3) — chooses the victim: the incoming
//!    tuple (`Newest`), the oldest (`Front`), a uniform pick
//!    (`Random`), or one the dropped synopsis already covers
//!    (`Synergistic`).
//! 3. **Synopsis fold** (§5.1–5.2) — in Data Triage mode the victim
//!    is folded into the window's *dropped* synopsis
//!    ([`dt_synopsis::Synopsis`]) instead of vanishing, while every
//!    tuple the engine processes is folded into the *kept* synopsis,
//!    so the shadow plan never joins a synopsis against raw tuples.
//! 4. **Shadow plan** (§5.1) — at window close, the rewritten query
//!    ([`dt_rewrite::ShadowQuery`]) estimates what the dropped tuples
//!    would have contributed.
//! 5. **[`merge`]** (§5.3) — exact per-group aggregates from kept
//!    tuples are combined with the shadow estimates into one
//!    [`WindowResult`] (the role the paper's web front-end played).
//!
//! # Runtimes over the stages
//!
//! * [`Pipeline`] / [`SharedPipeline`] — the single-threaded
//!   virtual-clock simulation: the engine consumes at its
//!   [`dt_engine::CostModel`] service rate, and every experiment is
//!   bit-reproducible from a seed. `SharedPipeline` runs many queries
//!   over shared streams and shared synopses (§8.1).
//! * [`QueryExecutor`] / [`StreamTriage`] — the stateless
//!   window-close half and the per-stream fold/seal half, factored
//!   out so the threaded `dt-server` runtime can drive the same
//!   stages from worker and merger threads.
//!
//! # Choosing *when* to shed
//!
//! * [`ShedMode`] — the three methodologies of §5.2.1 sharing one
//!   codebase: `DropOnly` (victims discarded, no synopses),
//!   `SummarizeOnly` (queue bypassed, everything approximate), and
//!   `DataTriage` (the full architecture).
//! * [`LoadController`] / [`SharedController`] (§4–5, DESIGN.md §11)
//!   — the *adaptive* part of "an adaptive architecture": a
//!   [`DelayConstraint`] plus EWMA cost estimates yield the dynamic
//!   triage threshold and a smooth shedding ramp, turning the fixed
//!   queue bound into a latency contract.
//!
//! # Scaling a stream past one core
//!
//! * [`ShardRouter`] / [`ShardQueues`] / [`merge_sealed`] /
//!   [`ShardedStream`] (DESIGN.md §15) — partition a hot stream's
//!   triage across a per-core worker group (group-key hash or
//!   round-robin), steal batches across shards under skew, and fold
//!   the per-shard seals back into windows bit-identical to a
//!   single worker's.

#![deny(missing_docs)]

pub mod controller;
pub mod executor;
pub mod merge;
pub mod obs;
pub mod pipeline;
pub mod policy;
pub mod queue;
pub mod reorder;
pub mod shard;
pub mod shared;
pub mod shed;
pub mod stream;
mod winmap;

pub use controller::{
    ControllerState, DelayConstraint, Ewma, FairController, LaneSpec, LaneState, LoadController,
    SharedController, ShedDecision, FAIR_EPOCH,
};
pub use executor::{QueryClose, QueryExecutor, SharedStream, SynPair};
pub use merge::{merge_window, MergedGroups};
pub use obs::{ControllerGauges, StreamObs, TriageObs};
pub use pipeline::{
    ExecStrategy, Pipeline, PipelineConfig, RunReport, RunTotals, WindowPayload, WindowResult,
};
pub use policy::DropPolicy;
pub use queue::TriageQueue;
pub use reorder::ReorderBuffer;
pub use shard::{merge_sealed, ShardQueues, ShardRouter, ShardedStream};
pub use shared::SharedPipeline;
pub use shed::ShedMode;
pub use stream::{SealedWindow, StreamTriage};
