//! Window-close execution, factored out of the simulation pipeline.
//!
//! [`QueryExecutor`] owns everything about a set of registered queries
//! that is *stateless across windows*: the planned queries, their
//! shadow rewrites, the mapping from each query's FROM positions to
//! shared physical streams, and the merge of exact and estimated
//! results. Given one window's sealed per-stream state — kept rows
//! plus kept/dropped synopses — it produces each query's
//! [`WindowPayload`].
//!
//! Two callers share it:
//!
//! * [`crate::SharedPipeline`], the virtual-time simulation, and
//! * `dt-server`'s merger thread, which closes windows sealed by
//!   per-stream worker threads against a wall clock.
//!
//! Because the executor holds no mutable state, a server can call it
//! from any thread behind an `Arc` without locking.

use dt_engine::{ExecMetrics, WindowOutput};
use dt_obs::MetricsRegistry;
use dt_query::QueryPlan;
use dt_rewrite::{evaluate_ref, rewrite_dropped, ShadowQuery};
use dt_synopsis::{Synopsis, SynopsisConfig};
use dt_types::{ColumnBatch, DtError, DtResult, Row, Schema, WindowSpec};

use crate::merge::merge_window;
use crate::pipeline::WindowPayload;
use crate::shed::ShedMode;

/// One physical stream shared by the registered queries.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedStream {
    /// Catalog stream name.
    pub name: String,
    /// The stream's (unqualified) schema.
    pub schema: Schema,
}

/// A window's kept/dropped synopsis pair for one physical stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SynPair {
    /// Summary of tuples delivered to the exact engine.
    pub kept: Synopsis,
    /// Summary of tuples shed before the engine.
    pub dropped: Synopsis,
}

/// One query's closed window plus the mass accounting behind the
/// per-query accuracy-proxy gauge.
#[derive(Debug, Clone)]
pub struct QueryClose {
    /// The window's merged results.
    pub payload: WindowPayload,
    /// Total |value| mass of the exact (kept-tuple) result: summed
    /// absolute aggregate values for grouping queries, the output row
    /// count otherwise.
    pub exact_mass: f64,
    /// Total |value| mass of the merged result (exact + estimate),
    /// measured before HAVING filters groups.
    pub merged_mass: f64,
}

impl QueryClose {
    /// The fraction of the merged mass contributed by synopsis
    /// estimation rather than exact execution, in `[0, 1]` — a cheap
    /// per-window proxy for relative RMS error (0 = fully exact).
    pub fn estimated_share(&self) -> f64 {
        if self.merged_mass <= 0.0 {
            0.0
        } else {
            (1.0 - self.exact_mass / self.merged_mass).clamp(0.0, 1.0)
        }
    }
}

/// Per-query compiled state.
#[derive(Debug, Clone)]
pub(crate) struct QueryRuntime {
    pub(crate) plan: QueryPlan,
    pub(crate) shadow: Option<ShadowQuery>,
    /// Plan FROM-position → shared stream index.
    pub(crate) stream_map: Vec<usize>,
}

/// Stateless window-close execution over shared physical streams. See
/// the module docs.
#[derive(Debug, Clone)]
pub struct QueryExecutor {
    streams: Vec<SharedStream>,
    queries: Vec<QueryRuntime>,
    spec: WindowSpec,
    mode: ShedMode,
    /// Engine instruments ([`ExecMetrics::default`] = disabled).
    metrics: ExecMetrics,
}

impl QueryExecutor {
    /// Compile one or more planned queries against shared streams.
    ///
    /// Physical streams are derived from the plans' catalog stream
    /// names, in first-appearance order; queries referencing the same
    /// stream name share its rows and synopses. All streams of all
    /// queries must use one window width; synopsis modes additionally
    /// require integer columns and rewritable queries.
    pub fn new(plans: Vec<QueryPlan>, mode: ShedMode) -> DtResult<Self> {
        if plans.is_empty() {
            return Err(DtError::config("executor needs at least one query"));
        }
        if plans[0].streams.is_empty() {
            return Err(DtError::config("query has no streams"));
        }
        let spec = plans[0].streams[0].window;
        let mut streams: Vec<SharedStream> = Vec::new();
        let mut queries = Vec::with_capacity(plans.len());
        for plan in plans {
            if plan.streams.is_empty() {
                return Err(DtError::config("query has no streams"));
            }
            let mut stream_map = Vec::with_capacity(plan.streams.len());
            for binding in &plan.streams {
                if binding.window != spec {
                    return Err(DtError::config("all queries must share one window width"));
                }
                // Physical identity is the catalog stream name.
                let unqualified = Schema::new(
                    binding
                        .schema
                        .fields()
                        .iter()
                        .map(|f| dt_types::Field::new(f.name.clone(), f.ty))
                        .collect(),
                );
                let idx = match streams.iter().position(|s| s.name == binding.stream) {
                    Some(i) => {
                        if streams[i].schema != unqualified {
                            return Err(DtError::config(format!(
                                "stream '{}' bound with conflicting schemas",
                                binding.stream
                            )));
                        }
                        i
                    }
                    None => {
                        streams.push(SharedStream {
                            name: binding.stream.clone(),
                            schema: unqualified,
                        });
                        streams.len() - 1
                    }
                };
                stream_map.push(idx);
            }
            let shadow = if mode.uses_synopses() {
                for s in &plan.streams {
                    for f in s.schema.fields() {
                        if f.ty != dt_types::DataType::Int {
                            return Err(DtError::config(format!(
                                "synopsis modes require integer columns; {} is {}",
                                f.qualified_name(),
                                f.ty
                            )));
                        }
                    }
                }
                if plan.group_by.len() > 1 && plan.is_aggregating() {
                    // merge_window would reject this at the first
                    // window close; fail fast instead.
                    return Err(DtError::config(
                        "synopsis modes support at most one GROUP BY column",
                    ));
                }
                Some(rewrite_dropped(&plan)?)
            } else {
                None
            };
            queries.push(QueryRuntime {
                plan,
                shadow,
                stream_map,
            });
        }
        Ok(QueryExecutor {
            streams,
            queries,
            spec,
            mode,
            metrics: ExecMetrics::default(),
        })
    }

    /// Record window-execution latency and join fan-out on `reg`.
    pub fn with_metrics(mut self, reg: &MetricsRegistry) -> Self {
        self.metrics = ExecMetrics::register(reg);
        self
    }

    /// The shared physical streams, in index order.
    pub fn streams(&self) -> &[SharedStream] {
        &self.streams
    }

    /// The (single) window spec every query uses.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// The shedding mode the executor was compiled for.
    pub fn mode(&self) -> ShedMode {
        self.mode
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Query `q`'s plan.
    pub fn plan(&self, q: usize) -> Option<&QueryPlan> {
        self.queries.get(q).map(|r| &r.plan)
    }

    /// Query `q`'s shadow query, when the mode uses one.
    pub fn shadow(&self, q: usize) -> Option<&ShadowQuery> {
        self.queries.get(q).and_then(|r| r.shadow.as_ref())
    }

    pub(crate) fn queries(&self) -> &[QueryRuntime] {
        &self.queries
    }

    /// Fresh (unsealed) kept/dropped synopsis pairs, one per physical
    /// stream.
    pub fn empty_pairs(&self, synopsis: &SynopsisConfig) -> DtResult<Vec<SynPair>> {
        self.streams
            .iter()
            .map(|s| {
                Ok(SynPair {
                    kept: synopsis.build(s.schema.arity())?,
                    dropped: synopsis.build(s.schema.arity())?,
                })
            })
            .collect()
    }

    /// Exact batch execution of query `q` over one window's kept rows
    /// (`shared_rows[i]` holds physical stream `i`'s rows). Aliased
    /// self-joins read the same shared rows on every FROM position —
    /// by reference, so no rows are cloned per window close.
    pub fn exact_batch(&self, q: usize, shared_rows: &[Vec<Row>]) -> DtResult<WindowOutput> {
        let query = self
            .queries
            .get(q)
            .ok_or_else(|| DtError::config(format!("unknown query {q}")))?;
        let inputs: Vec<Vec<&Row>> = query
            .stream_map
            .iter()
            .map(|&si| shared_rows[si].iter().collect())
            .collect();
        self.metrics.execute_window_rows(&query.plan, &inputs)
    }

    /// Columnar [`QueryExecutor::exact_batch`]: one window's kept
    /// tuples arrive as per-physical-stream [`ColumnBatch`]es (the
    /// form [`dt_engine::WindowBuffers::take_window`] hands out) and
    /// flow straight into the vectorized executor — aliased FROM
    /// positions share the same batch by reference.
    pub fn exact_batch_cols(&self, q: usize, shared: &[ColumnBatch]) -> DtResult<WindowOutput> {
        let query = self
            .queries
            .get(q)
            .ok_or_else(|| DtError::config(format!("unknown query {q}")))?;
        let inputs: Vec<&ColumnBatch> = query.stream_map.iter().map(|&si| &shared[si]).collect();
        self.metrics.execute_window_cols(&query.plan, &inputs)
    }

    /// Combine query `q`'s exact window output with the shadow
    /// estimate over the sealed per-stream synopses, apply HAVING to
    /// the merged values, and build the window's payload.
    pub fn payload(
        &self,
        q: usize,
        exact: WindowOutput,
        pairs: Option<&[SynPair]>,
    ) -> DtResult<WindowPayload> {
        let query = self
            .queries
            .get(q)
            .ok_or_else(|| DtError::config(format!("unknown query {q}")))?;
        let estimate = match pairs {
            Some(pairs) => {
                let kept: Vec<&Synopsis> =
                    query.stream_map.iter().map(|&si| &pairs[si].kept).collect();
                let dropped: Vec<&Synopsis> = query
                    .stream_map
                    .iter()
                    .map(|&si| &pairs[si].dropped)
                    .collect();
                Self::estimate_ref(query, &kept, &dropped)?
            }
            None => None,
        };
        Ok(Self::build_payload(query, exact, estimate)?.payload)
    }

    /// The shadow estimate over per-stream synopsis references (the
    /// shared synopses are read in place; only the shadow plan's own
    /// operations materialize new structures).
    fn estimate_ref(
        query: &QueryRuntime,
        kept: &[&Synopsis],
        dropped: &[&Synopsis],
    ) -> DtResult<Option<Synopsis>> {
        match &query.shadow {
            Some(shadow) => Ok(Some(evaluate_ref(&shadow.plan, kept, dropped)?)),
            None => Ok(None),
        }
    }

    /// Merge one query's exact output with its estimate, apply HAVING
    /// to the merged values, and account the exact/merged masses the
    /// accuracy-proxy gauge reports.
    fn build_payload(
        query: &QueryRuntime,
        exact: WindowOutput,
        estimate: Option<Synopsis>,
    ) -> DtResult<QueryClose> {
        if query.plan.is_aggregating() || !query.plan.group_by.is_empty() {
            let exact_mass: f64 = exact
                .groups()
                .map(|g| {
                    g.values()
                        .map(|aggs| aggs.iter().map(|a| a.value.abs()).sum::<f64>())
                        .sum()
                })
                .unwrap_or(0.0);
            let mut merged = match (&query.shadow, &estimate) {
                (Some(sh), Some(est)) => merge_window(&query.plan, sh, &exact, Some(est))?,
                (Some(sh), None) => merge_window(&query.plan, sh, &exact, None)?,
                (None, _) => exact
                    .groups()
                    .map(|g| {
                        g.iter()
                            .map(|(k, v)| (k.clone(), v.iter().map(|a| a.value).collect()))
                            .collect()
                    })
                    .unwrap_or_default(),
            };
            let merged_mass: f64 = merged
                .values()
                .map(|vals| vals.iter().map(|v| v.abs()).sum::<f64>())
                .sum();
            // HAVING applies to the *final* (merged) values, so an
            // estimated contribution can push a group over the
            // threshold, exactly as processing the dropped tuples
            // would have.
            if !query.plan.having.is_empty() {
                merged.retain(|_, vals| query.plan.having_accepts(vals));
            }
            Ok(QueryClose {
                payload: WindowPayload::Groups(merged),
                exact_mass,
                merged_mass,
            })
        } else {
            let rows = match exact {
                WindowOutput::Rows(r) => r,
                WindowOutput::Groups(_) => {
                    return Err(DtError::engine(
                        "grouped output from a non-aggregating plan",
                    ))
                }
            };
            let exact_mass = rows.len() as f64;
            let lost_mass = estimate.as_ref().map(|s| s.total_mass()).unwrap_or(0.0);
            Ok(QueryClose {
                payload: WindowPayload::Rows {
                    rows,
                    lost: estimate,
                },
                exact_mass,
                merged_mass: exact_mass + lost_mass,
            })
        }
    }

    /// Close one window for query `q` where the caller supplies this
    /// executor's per-stream state *by reference* — `shared_rows[i]`
    /// and `pairs[i]` belong to executor stream `i`. A registry
    /// fanning one sealed server window out to many attached queries
    /// selects each query's slices out of a server-wide table without
    /// cloning a single row or synopsis.
    pub fn close_ref(
        &self,
        q: usize,
        shared_rows: &[&[Row]],
        pairs: Option<&[&SynPair]>,
    ) -> DtResult<QueryClose> {
        let query = self
            .queries
            .get(q)
            .ok_or_else(|| DtError::config(format!("unknown query {q}")))?;
        if shared_rows.len() != self.streams.len() {
            return Err(DtError::config(format!(
                "close_ref got {} streams, executor has {}",
                shared_rows.len(),
                self.streams.len()
            )));
        }
        let inputs: Vec<Vec<&Row>> = query
            .stream_map
            .iter()
            .map(|&si| shared_rows[si].iter().collect())
            .collect();
        let exact = self.metrics.execute_window_rows(&query.plan, &inputs)?;
        let estimate = match pairs {
            Some(pairs) => {
                let kept: Vec<&Synopsis> =
                    query.stream_map.iter().map(|&si| &pairs[si].kept).collect();
                let dropped: Vec<&Synopsis> = query
                    .stream_map
                    .iter()
                    .map(|&si| &pairs[si].dropped)
                    .collect();
                Self::estimate_ref(query, &kept, &dropped)?
            }
            None => None,
        };
        Self::build_payload(query, exact, estimate)
    }

    /// Close one window for every query: exact batch execution over
    /// the shared rows, shadow estimation over the sealed synopses,
    /// merge. Returns one payload per query, in registration order.
    pub fn close_batch(
        &self,
        shared_rows: &[Vec<Row>],
        pairs: Option<&[SynPair]>,
    ) -> DtResult<Vec<WindowPayload>> {
        if shared_rows.len() != self.streams.len() {
            return Err(DtError::config(format!(
                "close_batch got {} streams, executor has {}",
                shared_rows.len(),
                self.streams.len()
            )));
        }
        (0..self.queries.len())
            .map(|q| {
                let exact = self.exact_batch(q, shared_rows)?;
                self.payload(q, exact, pairs)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_query::{parse_select, Catalog, Planner};
    use dt_types::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        c
    }

    fn plan(sql: &str) -> QueryPlan {
        Planner::new(&catalog())
            .plan(&parse_select(sql).unwrap())
            .unwrap()
    }

    #[test]
    fn close_batch_merges_exact_and_estimated_counts() {
        let exec = QueryExecutor::new(
            vec![plan("SELECT a, COUNT(*) FROM R GROUP BY a")],
            ShedMode::DataTriage,
        )
        .unwrap();
        assert_eq!(exec.streams().len(), 1);
        let cfg = SynopsisConfig::Sparse { cell_width: 1 };
        let mut pairs = exec.empty_pairs(&cfg).unwrap();
        // Three kept rows of a=1, two dropped rows of a=1 summarized.
        let rows = vec![vec![Row::from_ints(&[1]); 3]];
        for _ in 0..2 {
            pairs[0].dropped.insert(&[1]).unwrap();
        }
        for _ in 0..3 {
            pairs[0].kept.insert(&[1]).unwrap();
        }
        for p in &mut pairs {
            p.kept.seal();
            p.dropped.seal();
        }
        let payloads = exec.close_batch(&rows, Some(&pairs)).unwrap();
        assert_eq!(payloads.len(), 1);
        match &payloads[0] {
            WindowPayload::Groups(g) => {
                assert!((g[&Row::from_ints(&[1])][0] - 5.0).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn close_ref_matches_close_batch_and_accounts_mass() {
        let exec = QueryExecutor::new(
            vec![plan("SELECT a, COUNT(*) FROM R GROUP BY a")],
            ShedMode::DataTriage,
        )
        .unwrap();
        let cfg = SynopsisConfig::Sparse { cell_width: 1 };
        let mut pairs = exec.empty_pairs(&cfg).unwrap();
        let rows = vec![vec![Row::from_ints(&[1]); 3]];
        for _ in 0..2 {
            pairs[0].dropped.insert(&[1]).unwrap();
        }
        for _ in 0..3 {
            pairs[0].kept.insert(&[1]).unwrap();
        }
        for p in &mut pairs {
            p.kept.seal();
            p.dropped.seal();
        }
        let batch = exec.close_batch(&rows, Some(&pairs)).unwrap();
        let row_refs: Vec<&[Row]> = rows.iter().map(|r| r.as_slice()).collect();
        let pair_refs: Vec<&SynPair> = pairs.iter().collect();
        let close = exec.close_ref(0, &row_refs, Some(&pair_refs)).unwrap();
        match (&batch[0], &close.payload) {
            (WindowPayload::Groups(a), WindowPayload::Groups(b)) => assert_eq!(a, b),
            other => panic!("{other:?}"),
        }
        // 3 exact + 2 estimated of the 5 merged: 40% estimated.
        assert!((close.exact_mass - 3.0).abs() < 1e-9);
        assert!((close.merged_mass - 5.0).abs() < 1e-9);
        assert!((close.estimated_share() - 0.4).abs() < 1e-9);
        // Wrong stream count is rejected.
        assert!(exec.close_ref(0, &[], None).is_err());
    }

    #[test]
    fn stream_count_mismatch_rejected() {
        let exec = QueryExecutor::new(
            vec![plan("SELECT a, COUNT(*) FROM R GROUP BY a")],
            ShedMode::DropOnly,
        )
        .unwrap();
        assert!(exec.close_batch(&[], None).is_err());
    }

    #[test]
    fn empty_plan_list_rejected() {
        assert!(QueryExecutor::new(vec![], ShedMode::DropOnly).is_err());
    }
}
