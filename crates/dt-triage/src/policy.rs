//! Victim-selection (drop) policies.

/// How a full triage queue chooses which tuple to shed.
///
/// The paper's current build uses [`DropPolicy::Random`]; §8.1
/// sketches the design space this enum fills out, including the
/// "synergistic" policy that prefers victims the synopsis can absorb
/// at zero marginal cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropPolicy {
    /// A victim uniformly at random from the buffered tuples (the
    /// paper's default).
    Random,
    /// Drop the oldest buffered tuple.
    Front,
    /// Drop the incoming tuple itself.
    Newest,
    /// Prefer a buffered victim whose row lands in an
    /// already-occupied region of the dropped-tuple synopsis
    /// (paper §8.1's "synergistic" policy); falls back to random.
    Synergistic,
}

impl DropPolicy {
    /// Short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            DropPolicy::Random => "random",
            DropPolicy::Front => "front",
            DropPolicy::Newest => "newest",
            DropPolicy::Synergistic => "synergistic",
        }
    }

    /// All policies, for ablation sweeps.
    pub fn all() -> [DropPolicy; 4] {
        [
            DropPolicy::Random,
            DropPolicy::Front,
            DropPolicy::Newest,
            DropPolicy::Synergistic,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<&str> =
            DropPolicy::all().iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
