//! Multi-query shared processing (paper §8.1).
//!
//! "An ambitious aspect of TelegraphCQ is its support for sharing
//! processing across multiple continuous queries … we have not
//! explored the possibility of sharing synopses of the dropped tuples
//! across queries." This module explores exactly that: a
//! [`SharedPipeline`] runs any number of planned queries over one set
//! of *physical* streams with
//!
//! * **one triage queue per physical stream** (a tuple is queued,
//!   shed, or delivered once, for all queries),
//! * **one kept/dropped synopsis pair per physical stream per
//!   window**, shared by every query's shadow plan, and
//! * **one engine pull per tuple** — the shared-scan discipline of
//!   TelegraphCQ, so adding a query does not multiply ingest cost.
//!
//! Queries may alias the same stream several times (self-joins); all
//! aliases read the same shared rows and the same shared synopses.
//!
//! The single-query [`crate::Pipeline`] is a thin facade over this
//! type.

use dt_engine::{IncrementalWindow, WindowBuffers, WindowOutput};
use dt_query::QueryPlan;
use dt_rewrite::ShadowQuery;
use dt_types::{DtError, DtResult, Row, Timestamp, Tuple, WindowId, WindowSpec};

use dt_obs::MetricsRegistry;

use crate::controller::{LoadController, ShedDecision};
use crate::executor::{QueryExecutor, SynPair};
use crate::obs::{ControllerGauges, TriageObs};
use crate::pipeline::{ExecStrategy, PipelineConfig, RunReport, RunTotals, WindowResult};
use crate::policy::DropPolicy;
use crate::queue::TriageQueue;
use crate::shed::ShedMode;
use crate::winmap::WinMap;

pub use crate::executor::SharedStream;

#[derive(Debug, Clone, Copy, Default)]
struct WinStats {
    arrived: u64,
    kept: u64,
    dropped: u64,
}

/// Columnar accumulation of synopsis points awaiting a batched flush:
/// one `Vec<i64>` per dimension, in row order. The per-tuple hot path
/// only pushes integers here; the actual synopsis inserts happen once
/// per window close via [`dt_synopsis::Synopsis::insert_columns`],
/// which vectorizes bucket arithmetic over whole columns.
#[derive(Debug, Clone, Default)]
pub(crate) struct PointCols {
    cols: Vec<Vec<i64>>,
    rows: usize,
    /// Arrival tags parallel to the buffered rows, filled by
    /// [`PointCols::push_tagged`] (sharded triage). Either every row
    /// is tagged or none is; `flush_into` picks the tagged synopsis
    /// kernel when tags are present.
    tags: Vec<u64>,
}

impl PointCols {
    /// Append one point (the row count is tracked separately so
    /// zero-dimension points still flush correctly).
    #[inline]
    pub(crate) fn push(&mut self, point: &[i64]) {
        if self.cols.len() != point.len() {
            self.cols.resize_with(point.len(), Vec::new);
        }
        for (col, &v) in self.cols.iter_mut().zip(point) {
            col.push(v);
        }
        self.rows += 1;
    }

    /// Append one point carrying its per-stream arrival sequence tag.
    #[inline]
    pub(crate) fn push_tagged(&mut self, point: &[i64], tag: u64) {
        self.push(point);
        self.tags.push(tag);
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Insert every buffered point into `syn` in row order (so
    /// order-sensitive synopsis kinds see exactly the per-tuple
    /// sequence), then clear the buffer keeping column capacity.
    pub(crate) fn flush_into(&mut self, syn: &mut dt_synopsis::Synopsis) -> DtResult<()> {
        if self.rows == 0 {
            return Ok(());
        }
        if !self.tags.is_empty() && self.tags.len() != self.rows {
            return Err(DtError::synopsis(
                "mixed tagged/untagged points in one pending buffer",
            ));
        }
        if self.cols.is_empty() {
            // Zero-arity points carry no columns; replay by count.
            if self.tags.is_empty() {
                for _ in 0..self.rows {
                    syn.insert(&[])?;
                }
            } else {
                for &tag in &self.tags {
                    syn.insert_tagged(&[], tag)?;
                }
            }
        } else if self.tags.is_empty() {
            syn.insert_columns(&self.cols)?;
        } else {
            syn.insert_columns_tagged(&self.cols, &self.tags)?;
        }
        for c in &mut self.cols {
            c.clear();
        }
        self.tags.clear();
        self.rows = 0;
        Ok(())
    }
}

/// One stream's pending kept/dropped point columns for one window.
#[derive(Debug, Clone, Default)]
pub(crate) struct PendPair {
    pub(crate) kept: PointCols,
    pub(crate) dropped: PointCols,
}

/// The multi-query pipeline. See the module docs.
pub struct SharedPipeline {
    exec: QueryExecutor,
    cfg: PipelineConfig,
    spec: WindowSpec,
    queues: Vec<TriageQueue>,
    buffers: WindowBuffers,
    syns: WinMap<Vec<SynPair>>,
    /// Per window: one pending kept/dropped point-column pair per
    /// physical stream, flushed into `syns` in one vectorized pass
    /// when the window closes (synopsis modes only).
    pending: WinMap<Vec<PendPair>>,
    /// Incremental execution state: per window, one
    /// [`IncrementalWindow`] per query (only under
    /// [`ExecStrategy::Incremental`]).
    inc: WinMap<Vec<IncrementalWindow>>,
    stats: WinMap<WinStats>,
    engine_free_at: Timestamp,
    now: Timestamp,
    /// `results[q]` collects query `q`'s windows.
    results: Vec<Vec<WindowResult>>,
    totals: RunTotals,
    /// Reusable synopsis-point buffer — the ingest and engine paths
    /// convert one row at a time, so a single scratch vector serves
    /// every per-tuple conversion without allocating.
    point_scratch: Vec<i64>,
    /// Triage instruments (default = every handle disabled).
    obs: TriageObs,
    /// Arrived/kept/dropped totals already pushed to `obs` — the hot
    /// path counts in plain fields ([`RunTotals`]) and the registry
    /// handles catch up at window boundaries ([`Self::flush_obs`]),
    /// keeping per-tuple atomics out of the offer/drain loops.
    obs_flushed: [u64; 3],
    /// Per-stream adaptive controllers, present only when the config
    /// carries a [`crate::DelayConstraint`] and the mode drives the
    /// engine. `None` keeps the fixed-capacity shed signal untouched.
    controllers: Option<Vec<LoadController>>,
}

impl SharedPipeline {
    /// Build a shared pipeline over one or more planned queries.
    ///
    /// Physical streams are derived from the plans' catalog stream
    /// names, in first-appearance order; queries referencing the same
    /// stream name share its queue, buffers, and synopses. All streams
    /// of all queries must use one window width; synopsis modes
    /// additionally require integer columns and rewritable queries.
    pub fn new(plans: Vec<QueryPlan>, cfg: PipelineConfig) -> DtResult<Self> {
        if plans.is_empty() {
            return Err(DtError::config("shared pipeline needs at least one query"));
        }
        // Stream discovery, validation, and shadow compilation live in
        // the (stateless) executor, shared with `dt-server`.
        let exec = QueryExecutor::new(plans, cfg.mode)?;
        let spec = exec.spec();
        let n = exec.streams().len();
        let queues = (0..n)
            .map(|i| {
                TriageQueue::new(
                    cfg.queue_capacity,
                    cfg.policy,
                    cfg.seed
                        .wrapping_add(i as u64)
                        .wrapping_mul(0x9E3779B97F4A7C15),
                )
            })
            .collect::<DtResult<Vec<_>>>()?;
        let num_queries = exec.num_queries();
        // Adaptive control: one controller per physical stream, its
        // cost EWMAs primed from the static cost model (DESIGN.md
        // §11) so the threshold is sensible before any measurement.
        let controllers = cfg.delay.filter(|_| cfg.mode.uses_engine()).map(|d| {
            let syn_us = cfg.cost.synopsis_insert_time.micros() as f64;
            let main_us = cfg.cost.service_time.micros() as f64
                + if cfg.mode == ShedMode::DataTriage {
                    syn_us
                } else {
                    0.0
                };
            let triage_us = if cfg.mode.uses_synopses() {
                syn_us
            } else {
                0.0
            };
            (0..n)
                .map(|_| LoadController::seeded(d, main_us, triage_us))
                .collect()
        });
        let arities: Vec<usize> = exec.streams().iter().map(|s| s.schema.arity()).collect();
        Ok(SharedPipeline {
            buffers: WindowBuffers::new(arities, spec),
            queues,
            exec,
            spec,
            cfg,
            syns: WinMap::new(),
            pending: WinMap::new(),
            inc: WinMap::new(),
            stats: WinMap::new(),
            engine_free_at: Timestamp::ZERO,
            now: Timestamp::ZERO,
            results: vec![Vec::new(); num_queries],
            totals: RunTotals::default(),
            point_scratch: Vec::new(),
            obs: TriageObs::default(),
            obs_flushed: [0; 3],
            controllers,
        })
    }

    /// Record triage and engine instruments on `reg`: per-stream
    /// queue-depth gauges, arrived/kept/dropped counters labeled by
    /// shed mode, window-execution latency, and sampled
    /// synopsis-insert latency.
    pub fn with_metrics(mut self, reg: &MetricsRegistry) -> Self {
        let names: Vec<&str> = self
            .exec
            .streams()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        self.obs = TriageObs::register(reg, self.cfg.mode, &names);
        if let Some(ctls) = self.controllers.as_mut() {
            for (ctl, name) in ctls.iter_mut().zip(&names) {
                *ctl = ctl
                    .clone()
                    .with_gauges(ControllerGauges::register(reg, name));
            }
        }
        self.exec = self.exec.with_metrics(reg);
        self
    }

    /// The shared physical streams, in index order.
    pub fn streams(&self) -> &[SharedStream] {
        self.exec.streams()
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.exec.num_queries()
    }

    /// Query `q`'s plan.
    pub fn plan(&self, q: usize) -> Option<&QueryPlan> {
        self.exec.plan(q)
    }

    /// Query `q`'s shadow query, when the mode uses one.
    pub fn shadow(&self, q: usize) -> Option<&ShadowQuery> {
        self.exec.shadow(q)
    }

    /// The stateless window-close executor (plans, shadows, merge),
    /// shareable with other runtimes.
    pub fn executor(&self) -> &QueryExecutor {
        &self.exec
    }

    /// Feed one arrival on a *shared* stream (index into
    /// [`SharedPipeline::streams`]). Arrivals must be time-ordered.
    pub fn offer(&mut self, stream: usize, tuple: Tuple) -> DtResult<()> {
        if stream >= self.queues.len() {
            return Err(DtError::config(format!("unknown shared stream {stream}")));
        }
        self.offer_inner(stream, tuple)
    }

    /// Feed a whole batch of time-ordered arrivals on one shared
    /// stream. Equivalent to calling [`SharedPipeline::offer`] once
    /// per tuple (same shed decisions, same results), but validates
    /// the stream index once and keeps per-tuple scratch buffers warm.
    pub fn offer_batch(
        &mut self,
        stream: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> DtResult<()> {
        if stream >= self.queues.len() {
            return Err(DtError::config(format!("unknown shared stream {stream}")));
        }
        for tuple in tuples {
            self.offer_inner(stream, tuple)?;
        }
        Ok(())
    }

    fn offer_inner(&mut self, stream: usize, tuple: Tuple) -> DtResult<()> {
        if tuple.ts < self.now {
            return Err(DtError::config(format!(
                "arrivals must be time-ordered: {} after {}",
                tuple.ts, self.now
            )));
        }
        let shared = &self.exec.streams()[stream];
        if tuple.arity() != shared.schema.arity() {
            return Err(DtError::schema(format!(
                "tuple arity {} does not match stream '{}' arity {}",
                tuple.arity(),
                shared.name,
                shared.schema.arity()
            )));
        }
        self.now = tuple.ts;
        if self.cfg.mode.uses_engine() {
            self.drain_engine(self.now)?;
        }

        // A tuple belongs to every window containing its timestamp
        // (one for tumbling specs, several for hopping ones).
        for w in self.spec.windows_of(tuple.ts) {
            self.stats.get_or_insert_with(w, WinStats::default).arrived += 1;
        }
        self.totals.arrived += 1;

        match self.cfg.mode {
            ShedMode::SummarizeOnly => {
                let t0 = self.sampled_insert_start();
                let mut point = std::mem::take(&mut self.point_scratch);
                row_point_into(&tuple.row, &mut point)?;
                for w in self.spec.windows_of(tuple.ts) {
                    self.pend_point(w, stream, false, &point);
                    self.stats.get_or_insert_with(w, WinStats::default).dropped += 1;
                }
                self.point_scratch = point;
                self.totals.dropped += 1;
                self.observe_sampled_insert(t0);
            }
            ShedMode::DropOnly | ShedMode::DataTriage => {
                let dropped_syn = if self.cfg.policy == DropPolicy::Synergistic
                    && self.cfg.mode.uses_synopses()
                {
                    // The synergy heuristic consults the latest
                    // window; pending points must be visible to it, so
                    // flush this stream's dropped buffer first (at most
                    // one point accumulates between consecutive offers,
                    // so this stays per-tuple-cheap).
                    let w = self.spec.window_of(tuple.ts);
                    self.flush_pending_dropped(w, stream)?;
                    self.syns.get(w).map(|pairs| &pairs[stream].dropped)
                } else {
                    None
                };
                // The adaptive controller may demand a shed *before*
                // the queue is full, so the backlog stays drainable
                // within the delay constraint; without a controller
                // (or while its verdict is Keep) the fixed capacity
                // remains the only shed signal. The engine is shared
                // by every physical stream, so the depth that predicts
                // drain time is the *total* backlog, not this stream's
                // queue alone.
                let forced = match self.controllers.as_mut() {
                    Some(ctls) => {
                        let depth = self.queues.iter().map(TriageQueue::len).sum();
                        ctls[stream].decide(depth) == ShedDecision::Shed
                    }
                    None => false,
                };
                let victim = if forced {
                    Some(self.queues[stream].shed(tuple, dropped_syn))
                } else {
                    self.queues[stream].push(tuple, dropped_syn)
                };
                if let Some(v) = victim {
                    let mut point = std::mem::take(&mut self.point_scratch);
                    let summarize = self.cfg.mode == ShedMode::DataTriage;
                    let t0 = if summarize {
                        self.sampled_insert_start()
                    } else {
                        None
                    };
                    if summarize {
                        row_point_into(&v.row, &mut point)?;
                    }
                    for vw in self.spec.windows_of(v.ts) {
                        self.stats.get_or_insert_with(vw, WinStats::default).dropped += 1;
                        if summarize {
                            self.pend_point(vw, stream, false, &point);
                        }
                    }
                    self.point_scratch = point;
                    self.totals.dropped += 1;
                    self.observe_sampled_insert(t0);
                    if summarize {
                        if let Some(ctls) = self.controllers.as_mut() {
                            ctls[stream]
                                .observe_triage(self.cfg.cost.synopsis_insert_time.micros() as f64);
                        }
                    }
                }
            }
        }

        self.close_ready_windows()?;
        Ok(())
    }

    /// Drain queues and close every remaining window; returns one
    /// report per registered query (same order as registration).
    pub fn finish(mut self) -> DtResult<Vec<RunReport>> {
        if self.cfg.mode.uses_engine() {
            self.drain_engine(Timestamp::from_micros(u64::MAX / 2))?;
            self.now = self.now.max(self.engine_free_at);
        }
        let remaining: Vec<WindowId> = self.stats.ids().collect();
        for w in remaining {
            self.close_window(w)?;
        }
        self.flush_obs();
        let spec = self.spec;
        let totals = self.totals.clone();
        Ok(self
            .results
            .into_iter()
            .map(|mut windows| {
                windows.sort_by_key(|r| r.window);
                RunReport {
                    windows,
                    totals: totals.clone(),
                    window_spec: spec,
                }
            })
            .collect())
    }

    /// Simulate all engine activity strictly before `until`. One pull
    /// serves every query (shared scan).
    fn drain_engine(&mut self, until: Timestamp) -> DtResult<()> {
        while let Some((qi, head_ts)) = self
            .queues
            .iter()
            .enumerate()
            .filter_map(|(i, q)| q.head_ts().map(|t| (i, t)))
            .min_by_key(|&(_, t)| t)
        {
            let start = self.engine_free_at.max(head_ts);
            if start >= until {
                break;
            }
            let tuple = self.queues[qi].pop().expect("nonempty queue");
            let mut busy = self.cfg.cost.service_time;
            if self.cfg.mode == ShedMode::DataTriage {
                busy += self.cfg.cost.synopsis_insert_time;
                let t0 = self.sampled_insert_start();
                let mut point = std::mem::take(&mut self.point_scratch);
                row_point_into(&tuple.row, &mut point)?;
                for w in self.spec.windows_of(tuple.ts) {
                    self.pend_point(w, qi, true, &point);
                }
                self.point_scratch = point;
                self.observe_sampled_insert(t0);
            }
            self.engine_free_at = start + busy;
            if let Some(ctls) = self.controllers.as_mut() {
                // The virtual engine's per-tuple cost is exactly
                // `busy`; feeding it keeps the EWMA honest if the
                // config's cost model is ever made time-varying.
                ctls[qi].observe_main(busy.micros() as f64);
            }
            for w in self.spec.windows_of(tuple.ts) {
                self.stats.get_or_insert_with(w, WinStats::default).kept += 1;
            }
            self.totals.kept += 1;
            match self.cfg.execution {
                ExecStrategy::Batch => self.buffers.push(qi, tuple)?,
                ExecStrategy::Incremental => {
                    for w in self.spec.windows_of(tuple.ts) {
                        let exec = &self.exec;
                        let states = self.inc.get_or_try_insert_with(w, || {
                            exec.queries()
                                .iter()
                                .map(|q| IncrementalWindow::new(q.plan.clone()))
                                .collect::<DtResult<Vec<_>>>()
                        })?;
                        for (q, state) in self.exec.queries().iter().zip(states.iter_mut()) {
                            // A shared tuple feeds every FROM position
                            // bound to this physical stream (self-joins
                            // read it on both sides).
                            for (pos, &si) in q.stream_map.iter().enumerate() {
                                if si == qi {
                                    state.insert(pos, tuple.row.clone())?;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn close_ready_windows(&mut self) -> DtResult<()> {
        let queue_min = self
            .queues
            .iter()
            .filter_map(TriageQueue::head_ts)
            .min()
            .unwrap_or(self.now);
        let limit = match self.cfg.mode {
            ShedMode::SummarizeOnly => self.now,
            _ => self.now.min(queue_min),
        };
        // Open windows close oldest-first: `stats` is ordered, so pop
        // from the front until the oldest window outlives the limit.
        // (This runs on every offer — no per-call allocation.)
        while let Some(w) = self.stats.first_id() {
            if self.spec.window_end(w) > limit {
                break;
            }
            self.close_window(w)?;
        }
        Ok(())
    }

    /// Catch the registry handles up with the plain-field totals and
    /// current queue depths. Runs at window boundaries and at finish —
    /// the offer/drain hot paths never touch an atomic, so an enabled
    /// registry observes counters that lag by at most one open window.
    fn flush_obs(&mut self) {
        let [a, k, d] = self.obs_flushed;
        self.obs.arrived.add(self.totals.arrived - a);
        self.obs.kept.add(self.totals.kept - k);
        self.obs.dropped.add(self.totals.dropped - d);
        self.obs_flushed = [self.totals.arrived, self.totals.kept, self.totals.dropped];
        for (g, q) in self.obs.queue_depth.iter().zip(&self.queues) {
            g.set(q.len() as i64);
        }
    }

    fn close_window(&mut self, w: WindowId) -> DtResult<()> {
        self.flush_obs();
        self.obs.windows_closed.inc();
        let stats = self.stats.remove(w).unwrap_or_default();
        let shared_cols = self.buffers.take_window(w);
        let mut inc_states = self.inc.remove(w);
        // Seal the shared synopses once; every query reads them.
        let pairs: Option<Vec<SynPair>> = if self.cfg.mode.uses_synopses() {
            self.flush_pending_window(w)?;
            let pairs = match self.syns.remove(w) {
                Some(mut pairs) => {
                    for p in &mut pairs {
                        p.kept.seal();
                        p.dropped.seal();
                    }
                    pairs
                }
                None => self.exec.empty_pairs(&self.cfg.synopsis)?,
            };
            let units: usize = pairs
                .iter()
                .map(|p| p.kept.memory_units() + p.dropped.memory_units())
                .sum();
            self.totals.peak_synopsis_units = self.totals.peak_synopsis_units.max(units);
            Some(pairs)
        } else {
            None
        };

        for qi in 0..self.exec.num_queries() {
            let exact: WindowOutput = match (&self.cfg.execution, &mut inc_states) {
                (ExecStrategy::Incremental, Some(states)) => {
                    // The streaming state already holds the finished
                    // answer.
                    let plan = self.exec.queries()[qi].plan.clone();
                    std::mem::replace(&mut states[qi], IncrementalWindow::new(plan)?).finish()
                }
                (ExecStrategy::Incremental, None) => {
                    // Window with no delivered tuples.
                    IncrementalWindow::new(self.exec.queries()[qi].plan.clone())?.finish()
                }
                // Route shared columnar batches to the query's FROM
                // positions (aliased self-joins read the same batch).
                (ExecStrategy::Batch, _) => self.exec.exact_batch_cols(qi, &shared_cols)?,
            };

            let payload = self.exec.payload(qi, exact, pairs.as_deref())?;

            self.results[qi].push(WindowResult {
                window: w,
                payload,
                emitted_at: self.now.max(self.spec.window_end(w)),
                arrived: stats.arrived,
                kept: stats.kept,
                dropped: stats.dropped,
                degraded: false,
            });
        }
        Ok(())
    }

    /// `Some(now)` when this synopsis insert should be timed (1 in
    /// [`crate::obs::SYNOPSIS_SAMPLE`]); reading the clock on every
    /// insert would cost a visible slice of the ~1 µs/tuple budget.
    fn sampled_insert_start(&mut self) -> Option<std::time::Instant> {
        self.obs.sample_synopsis().then(std::time::Instant::now)
    }

    fn observe_sampled_insert(&self, t0: Option<std::time::Instant>) {
        if let Some(t0) = t0 {
            self.obs
                .synopsis_insert_us
                .observe(t0.elapsed().as_micros() as u64);
        }
    }

    fn syn_pair(&mut self, w: WindowId, stream: usize) -> DtResult<&mut SynPair> {
        let exec = &self.exec;
        let cfg = &self.cfg.synopsis;
        let pairs = self
            .syns
            .get_or_try_insert_with(w, || exec.empty_pairs(cfg))?;
        Ok(&mut pairs[stream])
    }

    /// Buffer one synopsis point for `(w, stream)` — the per-tuple hot
    /// path's only synopsis work; the actual inserts run batched at
    /// window close.
    #[inline]
    fn pend_point(&mut self, w: WindowId, stream: usize, kept: bool, point: &[i64]) {
        let n = self.queues.len();
        let pairs = self
            .pending
            .get_or_insert_with(w, || vec![PendPair::default(); n]);
        let cols = if kept {
            &mut pairs[stream].kept
        } else {
            &mut pairs[stream].dropped
        };
        cols.push(point);
    }

    /// Flush every pending point of window `w` into its synopses in
    /// one vectorized pass per (stream, side). Runs once per window
    /// close, timed unsampled.
    fn flush_pending_window(&mut self, w: WindowId) -> DtResult<()> {
        let Some(mut pend) = self.pending.remove(w) else {
            return Ok(());
        };
        let t0 = self
            .obs
            .synopsis_batch_insert_us
            .is_enabled()
            .then(std::time::Instant::now);
        for (stream, pair) in pend.iter_mut().enumerate() {
            if pair.kept.is_empty() && pair.dropped.is_empty() {
                continue;
            }
            let syn = self.syn_pair(w, stream)?;
            pair.kept.flush_into(&mut syn.kept)?;
            pair.dropped.flush_into(&mut syn.dropped)?;
        }
        if let Some(t0) = t0 {
            self.obs
                .synopsis_batch_insert_us
                .observe(t0.elapsed().as_micros() as u64);
        }
        Ok(())
    }

    /// Make `(w, stream)`'s pending *dropped* points visible in the
    /// live synopsis (the Synergistic policy reads it mid-window).
    fn flush_pending_dropped(&mut self, w: WindowId, stream: usize) -> DtResult<()> {
        let Some(mut cols) = self
            .pending
            .get_mut(w)
            .map(|p| std::mem::take(&mut p[stream].dropped))
        else {
            return Ok(());
        };
        if !cols.is_empty() {
            cols.flush_into(&mut self.syn_pair(w, stream)?.dropped)?;
        }
        // Hand the (cleared) column buffers back so their capacity is
        // reused by the next drop.
        if let Some(p) = self.pending.get_mut(w) {
            p[stream].dropped = cols;
        }
        Ok(())
    }
}

/// Convert a row of integer values to a synopsis point, writing into
/// a caller-owned buffer so hot loops convert one row per iteration
/// without allocating.
pub(crate) fn row_point_into(row: &Row, out: &mut Vec<i64>) -> DtResult<()> {
    out.clear();
    out.reserve(row.values().len());
    for v in row.values() {
        out.push(
            v.as_i64().ok_or_else(|| {
                DtError::engine(format!("non-integer value {v} in synopsis path"))
            })?,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_engine::CostModel;
    use dt_query::{parse_select, Catalog, Planner};
    use dt_synopsis::SynopsisConfig;
    use dt_types::{DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        c.add_stream(
            "S",
            Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
        );
        c
    }

    fn plan(sql: &str) -> QueryPlan {
        Planner::new(&catalog())
            .plan(&parse_select(sql).unwrap())
            .unwrap()
    }

    fn cfg() -> PipelineConfig {
        let mut c = PipelineConfig::new(ShedMode::DataTriage);
        c.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
        c.cost = CostModel::from_capacity(50.0).unwrap();
        c.queue_capacity = 10;
        c
    }

    fn tup(vals: &[i64], us: u64) -> Tuple {
        Tuple::new(Row::from_ints(vals), Timestamp::from_micros(us))
    }

    #[test]
    fn two_queries_share_streams() {
        let q1 = plan("SELECT a, COUNT(*) FROM R GROUP BY a");
        let q2 = plan("SELECT a, COUNT(*) FROM R, S WHERE R.a = S.b GROUP BY a");
        let mut p = SharedPipeline::new(vec![q1, q2], cfg()).unwrap();
        assert_eq!(p.num_queries(), 2);
        // Shared streams: R (from both), S — two physical streams.
        assert_eq!(p.streams().len(), 2);
        assert_eq!(p.streams()[0].name, "R");
        assert_eq!(p.streams()[1].name, "S");
        // Feed both shared streams.
        for i in 0..40u64 {
            p.offer(0, tup(&[(i % 3) as i64], 1_000 * (i + 1))).unwrap();
            p.offer(1, tup(&[(i % 3) as i64, 5], 1_000 * (i + 1)))
                .unwrap();
        }
        let reports = p.finish().unwrap();
        assert_eq!(reports.len(), 2);
        // Shared counters are identical across reports…
        assert_eq!(reports[0].totals, reports[1].totals);
        assert!(reports[0].totals.dropped > 0);
        // …but the per-query results differ (different queries).
        let total_q1: f64 = reports[0]
            .windows
            .iter()
            .flat_map(|w| w.groups().unwrap().values())
            .map(|v| v[0])
            .sum();
        let total_q2: f64 = reports[1]
            .windows
            .iter()
            .flat_map(|w| w.groups().unwrap().values())
            .map(|v| v[0])
            .sum();
        // q1 counts R tuples (lossless at w=1): exactly 40.
        assert!((total_q1 - 40.0).abs() < 1e-6, "{total_q1}");
        // q2 counts join results — more than q1 here (every R tuple
        // matches ~13 S tuples per window value group).
        assert!(total_q2 > total_q1);
    }

    #[test]
    fn self_join_aliases_share_one_physical_stream() {
        let q = plan("SELECT x.a, COUNT(*) FROM R x, R y WHERE x.a = y.a GROUP BY x.a");
        let p = SharedPipeline::new(vec![q], cfg()).unwrap();
        assert_eq!(p.streams().len(), 1, "both aliases share stream R");
        let mut p = p;
        for i in 0..10u64 {
            p.offer(0, tup(&[1], 1_000 * (i + 1))).unwrap();
        }
        let reports = p.finish().unwrap();
        // 10 tuples of a=1 self-joined: count = 10*10 = 100 (lossless
        // synopses keep it exact under shedding).
        let total: f64 = reports[0]
            .windows
            .iter()
            .flat_map(|w| w.groups().unwrap().values())
            .map(|v| v[0])
            .sum();
        assert!((total - 100.0).abs() < 1e-6, "{total}");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let q = plan("SELECT a, COUNT(*) FROM R GROUP BY a");
        let mut p = SharedPipeline::new(vec![q], cfg()).unwrap();
        assert!(p.offer(0, tup(&[1, 2], 1_000)).is_err());
    }

    #[test]
    fn conflicting_window_widths_rejected() {
        let q1 = plan("SELECT a, COUNT(*) FROM R GROUP BY a WINDOW R['1 second']");
        let q2 = plan("SELECT a, COUNT(*) FROM R GROUP BY a WINDOW R['2 seconds']");
        assert!(SharedPipeline::new(vec![q1, q2], cfg()).is_err());
    }

    #[test]
    fn empty_query_list_rejected() {
        assert!(SharedPipeline::new(vec![], cfg()).is_err());
    }

    #[test]
    fn shared_synopses_are_built_once_per_stream() {
        // Indirect check: a drop-only shared pipeline over two queries
        // must not error on a non-rewritable query…
        let q1 = plan("SELECT a, COUNT(*) FROM R GROUP BY a");
        let q2 = plan(
            "SELECT x.a, COUNT(*) FROM R x, R y \
                       WHERE x.a = y.a AND x.a = y.a GROUP BY x.a",
        );
        let mut c = cfg();
        c.mode = ShedMode::DropOnly;
        assert!(SharedPipeline::new(vec![q1.clone(), q2.clone()], c).is_ok());
        // …while a synopsis mode rejects it at construction.
        assert!(SharedPipeline::new(vec![q1, q2], cfg()).is_err());
    }
}
