//! Triage-layer instruments.
//!
//! Two bundles, one per execution style:
//!
//! * [`TriageObs`] — owned by the single-threaded simulation
//!   ([`crate::SharedPipeline`]): per-stream queue-depth gauges,
//!   arrived/kept/dropped counters labeled by [`ShedMode`], a
//!   windows-closed counter, and a *sampled* synopsis-insert latency
//!   histogram.
//! * [`StreamObs`] — owned by one server worker's
//!   [`crate::StreamTriage`]: kept/shed/late counters per stream,
//!   sharing the mode-labeled families with every other stream.
//!
//! The synopsis-insert histogram is sampled 1-in-[`SYNOPSIS_SAMPLE`]
//! because reading the clock costs a meaningful fraction of the
//! ~1 µs/tuple pipeline budget; counters and gauges are cheap enough
//! to run unsampled.

use dt_obs::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::shed::ShedMode;

/// Sampling interval for synopsis-insert timing: 1 in 64 inserts.
pub const SYNOPSIS_SAMPLE: u64 = 64;

/// Instruments for the simulation pipeline. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct TriageObs {
    /// Current depth of each physical stream's triage queue.
    pub queue_depth: Vec<Gauge>,
    /// Tuples offered to the pipeline.
    pub arrived: Counter,
    /// Tuples delivered to the exact engine.
    pub kept: Counter,
    /// Tuples shed.
    pub dropped: Counter,
    /// Windows closed and emitted.
    pub windows_closed: Counter,
    /// Sampled latency of folding one tuple into its windows'
    /// synopses, µs.
    pub synopsis_insert_us: Histogram,
    /// Latency of one batched (columnar) synopsis flush at window
    /// close, µs. Flushes happen once per window per stream, so this
    /// is timed unsampled.
    pub synopsis_batch_insert_us: Histogram,
    tick: u64,
}

impl TriageObs {
    /// Register the simulation instruments for `streams` (by name)
    /// under `mode`.
    pub fn register(reg: &MetricsRegistry, mode: ShedMode, streams: &[&str]) -> Self {
        let mode_label = mode.label();
        TriageObs {
            queue_depth: streams
                .iter()
                .map(|s| {
                    reg.gauge(
                        "dt_triage_queue_depth",
                        "Current depth of the stream's triage queue (tuples)",
                        &[("stream", s)],
                    )
                })
                .collect(),
            arrived: reg.counter(
                "dt_triage_tuples_total",
                "Tuples by triage outcome",
                &[("mode", mode_label), ("outcome", "arrived")],
            ),
            kept: reg.counter(
                "dt_triage_tuples_total",
                "Tuples by triage outcome",
                &[("mode", mode_label), ("outcome", "kept")],
            ),
            dropped: reg.counter(
                "dt_triage_tuples_total",
                "Tuples by triage outcome",
                &[("mode", mode_label), ("outcome", "dropped")],
            ),
            windows_closed: reg.counter(
                "dt_triage_windows_closed_total",
                "Windows closed and emitted",
                &[("mode", mode_label)],
            ),
            synopsis_insert_us: reg.histogram(
                "dt_triage_synopsis_insert_us",
                "Sampled latency of folding one tuple into its windows' synopses, microseconds",
                &[],
            ),
            synopsis_batch_insert_us: reg.histogram(
                "dt_triage_synopsis_batch_insert_us",
                "Latency of one batched columnar synopsis flush at window close, microseconds",
                &[],
            ),
            tick: 0,
        }
    }

    /// True on every [`SYNOPSIS_SAMPLE`]-th call — the caller should
    /// time this synopsis insert.
    #[inline]
    pub fn sample_synopsis(&mut self) -> bool {
        if !self.synopsis_insert_us.is_enabled() {
            return false;
        }
        self.tick = self.tick.wrapping_add(1);
        self.tick.is_multiple_of(SYNOPSIS_SAMPLE)
    }
}

/// Gauges publishing one adaptive controller's state (see
/// [`crate::LoadController`] / [`crate::SharedController`]). Default
/// handles are disabled no-ops, so a controller can publish
/// unconditionally; registration is opt-in per stream.
#[derive(Debug, Clone, Default)]
pub struct ControllerGauges {
    /// The dynamic triage threshold, tuples.
    pub threshold: Gauge,
    /// Estimated queue-drain delay at the last observed depth, ms.
    pub estimated_delay_ms: Gauge,
    /// Shed fraction applied at the last decision, per-mille (0–1000).
    pub shed_fraction: Gauge,
}

impl ControllerGauges {
    /// Register the controller gauges for `stream` (by name).
    pub fn register(reg: &MetricsRegistry, stream: &str) -> Self {
        ControllerGauges {
            threshold: reg.gauge(
                "dt_triage_threshold",
                "Dynamic triage threshold derived from the delay constraint (tuples)",
                &[("stream", stream)],
            ),
            estimated_delay_ms: reg.gauge(
                "dt_triage_estimated_delay_ms",
                "Estimated queue-drain delay at the current depth (milliseconds)",
                &[("stream", stream)],
            ),
            shed_fraction: reg.gauge(
                "dt_triage_shed_fraction",
                "Controller shed fraction at the last decision (per-mille, 0-1000)",
                &[("stream", stream)],
            ),
        }
    }

    /// Publish one controller state snapshot.
    pub fn publish(&self, state: &crate::controller::ControllerState) {
        // An unbounded threshold (cold estimates) is published as -1
        // rather than a saturated i64, so dashboards can tell
        // "disabled" from "astronomically large".
        self.threshold.set(if state.threshold == u64::MAX {
            -1
        } else {
            state.threshold.min(i64::MAX as u64) as i64
        });
        self.estimated_delay_ms
            .set((state.estimated_delay.micros() / 1_000) as i64);
        self.shed_fraction
            .set((state.shed_fraction * 1000.0).round() as i64);
    }
}

/// Instruments for one server worker's per-stream triage state.
#[derive(Debug, Clone, Default)]
pub struct StreamObs {
    /// Tuples folded as kept on this stream.
    pub kept: Counter,
    /// Tuples folded as shed on this stream.
    pub dropped: Counter,
    /// Stragglers whose windows were already sealed.
    pub late: Counter,
    /// Synopsis inserts performed on this stream (kept + dropped,
    /// one per containing window). This is the shared-triage
    /// invariant's witness: the count depends only on the stream's
    /// traffic and window overlap, never on how many queries read the
    /// stream.
    pub synopsis_inserts: Counter,
    /// Shared sampled synopsis-insert latency, µs.
    pub synopsis_insert_us: Histogram,
    /// Latency of one batched (columnar) synopsis flush at seal, µs.
    pub synopsis_batch_insert_us: Histogram,
    tick: u64,
}

impl StreamObs {
    /// Register the per-stream triage instruments for `stream` under
    /// `mode`.
    pub fn register(reg: &MetricsRegistry, mode: ShedMode, stream: &str) -> Self {
        let mode_label = mode.label();
        StreamObs {
            kept: reg.counter(
                "dt_triage_stream_tuples_total",
                "Tuples folded per stream by triage outcome",
                &[
                    ("stream", stream),
                    ("mode", mode_label),
                    ("outcome", "kept"),
                ],
            ),
            dropped: reg.counter(
                "dt_triage_stream_tuples_total",
                "Tuples folded per stream by triage outcome",
                &[
                    ("stream", stream),
                    ("mode", mode_label),
                    ("outcome", "dropped"),
                ],
            ),
            late: reg.counter(
                "dt_triage_stream_tuples_total",
                "Tuples folded per stream by triage outcome",
                &[
                    ("stream", stream),
                    ("mode", mode_label),
                    ("outcome", "late"),
                ],
            ),
            synopsis_inserts: reg.counter(
                "dt_triage_synopsis_inserts_total",
                "Synopsis inserts performed per stream (independent of attached query count)",
                &[("stream", stream)],
            ),
            synopsis_insert_us: reg.histogram(
                "dt_triage_synopsis_insert_us",
                "Sampled latency of folding one tuple into its windows' synopses, microseconds",
                &[],
            ),
            synopsis_batch_insert_us: reg.histogram(
                "dt_triage_synopsis_batch_insert_us",
                "Latency of one batched columnar synopsis flush at window close, microseconds",
                &[],
            ),
            tick: 0,
        }
    }

    /// True on every [`SYNOPSIS_SAMPLE`]-th call.
    #[inline]
    pub fn sample_synopsis(&mut self) -> bool {
        if !self.synopsis_insert_us.is_enabled() {
            return false;
        }
        self.tick = self.tick.wrapping_add(1);
        self.tick.is_multiple_of(SYNOPSIS_SAMPLE)
    }
}
