//! The single-query Data Triage pipeline (paper Fig. 1, end to end),
//! plus the configuration and result types shared with the
//! multi-query [`crate::SharedPipeline`].
//!
//! Arrivals (in timestamp order) flow into per-stream
//! [`crate::TriageQueue`]s.
//! The engine consumes queued tuples at its [`CostModel`] service
//! rate; tuples it cannot absorb are shed by the queue's
//! [`DropPolicy`] and — in Data Triage mode — folded into the current
//! window's *dropped* synopsis, while every processed tuple is also
//! folded into the *kept* synopsis (so the shadow query never joins a
//! synopsis against raw tuples, exactly as §5.1 arranges).
//!
//! A window `w` closes once neither future arrivals nor queued
//! backlog can contribute to it; the pipeline then runs the exact
//! engine on the kept rows, evaluates the shadow plan over the sealed
//! synopses, merges the two, and emits a [`WindowResult`].
//!
//! [`Pipeline`] is the one-query facade over [`crate::SharedPipeline`]
//! — the multi-query engine that §8.1's shared-synopses discussion
//! asks for.

use dt_engine::CostModel;

use dt_query::QueryPlan;
use dt_rewrite::ShadowQuery;
use dt_synopsis::{Synopsis, SynopsisConfig};
use dt_types::{DtResult, Row, Timestamp, Tuple, WindowId, WindowSpec};

use crate::controller::DelayConstraint;
use crate::merge::MergedGroups;
use crate::policy::DropPolicy;
use crate::shared::SharedPipeline;
use crate::shed::ShedMode;

/// How the exact engine evaluates each window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecStrategy {
    /// Buffer delivered rows and join once at window close (simple;
    /// close-time CPU spikes with the window's result size).
    #[default]
    Batch,
    /// Maintain a symmetric multiway join incrementally as tuples are
    /// delivered ([`dt_engine::IncrementalWindow`]); the result is
    /// ready the moment the window closes. Identical output — the
    /// engine's property tests pin the two strategies together.
    Incremental,
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Which load-shedding methodology to run.
    pub mode: ShedMode,
    /// Victim selection when a queue overflows.
    pub policy: DropPolicy,
    /// Per-stream triage queue capacity (tuples).
    pub queue_capacity: usize,
    /// The engine's virtual-time cost model.
    pub cost: CostModel,
    /// Synopsis structure used for kept/dropped summaries.
    pub synopsis: SynopsisConfig,
    /// Seed for every stochastic choice (drop victims, reservoirs).
    pub seed: u64,
    /// Batch vs incremental exact execution.
    pub execution: ExecStrategy,
    /// Optional per-query delay constraint. When set (and the mode
    /// uses the engine), a [`crate::LoadController`] per stream
    /// derives a dynamic triage threshold from the constraint and the
    /// EWMA-estimated per-tuple costs, shedding *before* the fixed
    /// queue capacity is reached so windows seal within the
    /// constraint. `None` (the default) keeps the fixed-capacity
    /// overflow signal as the only shed trigger — bit-identical to the
    /// pre-controller behavior.
    pub delay: Option<DelayConstraint>,
}

impl PipelineConfig {
    /// The paper's defaults: random drops, queue of 100 tuples,
    /// sparse histogram with cell width 10, engine capacity 1000
    /// tuples/s. Infallible — the defaults are compile-time constants,
    /// so library code never panics building a config.
    pub fn new(mode: ShedMode) -> Self {
        PipelineConfig {
            mode,
            policy: DropPolicy::Random,
            queue_capacity: 100,
            cost: CostModel::default(),
            synopsis: SynopsisConfig::default_sparse(),
            seed: 0,
            execution: ExecStrategy::Batch,
            delay: None,
        }
    }
}

/// What a closed window produced.
///
/// (One payload exists per closed window; the size difference between
/// variants is irrelevant at that count.)
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum WindowPayload {
    /// Aggregating query: merged per-group aggregates.
    Groups(MergedGroups),
    /// Non-aggregating query: exact output rows plus (when synopses
    /// are in play) the estimate of the lost results — the two layers
    /// of the paper's Fig. 3 visualization.
    Rows {
        /// Exact output rows from kept tuples.
        rows: Vec<Row>,
        /// Shadow-plan estimate of lost result tuples.
        lost: Option<Synopsis>,
    },
}

/// One closed window's outcome.
#[derive(Debug, Clone)]
pub struct WindowResult {
    /// Which window.
    pub window: WindowId,
    /// Results.
    pub payload: WindowPayload,
    /// Virtual time at which the result was emitted.
    pub emitted_at: Timestamp,
    /// Tuples that arrived with timestamps in this window.
    pub arrived: u64,
    /// Tuples delivered to the exact engine.
    pub kept: u64,
    /// Tuples shed (and, outside drop-only mode, synopsized).
    pub dropped: u64,
    /// True when part of this window's state was lost to a fault
    /// (worker crash, forced seal of a stalled stream) rather than
    /// shed by policy. The payload is still the best available
    /// answer, but the shedding error bounds no longer apply — see
    /// DESIGN.md §10. Always `false` in the simulation pipeline.
    pub degraded: bool,
}

impl WindowResult {
    /// The merged groups, if aggregating.
    pub fn groups(&self) -> Option<&MergedGroups> {
        match &self.payload {
            WindowPayload::Groups(g) => Some(g),
            WindowPayload::Rows { .. } => None,
        }
    }

    /// Result latency relative to the window's end.
    pub fn latency(&self, spec: WindowSpec) -> dt_types::VDuration {
        self.emitted_at.saturating_sub(spec.window_end(self.window))
    }
}

/// Whole-run statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunTotals {
    /// Tuples offered to the pipeline.
    pub arrived: u64,
    /// Tuples processed exactly.
    pub kept: u64,
    /// Tuples shed.
    pub dropped: u64,
    /// Largest combined memory footprint (cells / buckets / rows /
    /// coefficients) of one window's sealed kept+dropped synopses —
    /// the §5.2.2 "compact synopses" requirement, measured.
    pub peak_synopsis_units: usize,
}

/// The outcome of a pipeline run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-window results, oldest first.
    pub windows: Vec<WindowResult>,
    /// Whole-run counters.
    pub totals: RunTotals,
    /// The window spec the run used (for latency computations).
    pub window_spec: WindowSpec,
}

/// The single-query simulation pipeline. Feed arrivals with
/// [`Pipeline::offer`], then call [`Pipeline::finish`]; or use
/// [`Pipeline::run`].
///
/// Stream indices passed to `offer` address the pipeline's *physical*
/// streams: the distinct catalog streams of the plan's FROM list, in
/// first-appearance order. For queries without self-joins this equals
/// the FROM position; a self-joined stream has **one** physical index
/// and both aliases read the same tuples (as in TelegraphCQ).
pub struct Pipeline {
    inner: SharedPipeline,
}

impl Pipeline {
    /// Build a pipeline for a planned query.
    ///
    /// Requirements checked here: at least one stream; all streams
    /// share one window width (the experiments' setting); when the
    /// mode builds synopses, every stream column must be an integer
    /// and the query must be rewritable (see
    /// [`dt_rewrite::rewrite_dropped`]).
    pub fn new(plan: QueryPlan, cfg: PipelineConfig) -> DtResult<Self> {
        Ok(Pipeline {
            inner: SharedPipeline::new(vec![plan], cfg)?,
        })
    }

    /// The plan this pipeline executes.
    pub fn plan(&self) -> &QueryPlan {
        self.inner.plan(0).expect("single query")
    }

    /// The shadow query, when the mode uses one.
    pub fn shadow(&self) -> Option<&ShadowQuery> {
        self.inner.shadow(0)
    }

    /// Record triage and engine instruments on `reg` (see
    /// [`crate::SharedPipeline::with_metrics`]).
    pub fn with_metrics(mut self, reg: &dt_obs::MetricsRegistry) -> Self {
        self.inner = self.inner.with_metrics(reg);
        self
    }

    /// Run a whole arrival sequence and finish.
    pub fn run(
        plan: QueryPlan,
        cfg: PipelineConfig,
        arrivals: impl IntoIterator<Item = (usize, Tuple)>,
    ) -> DtResult<RunReport> {
        let mut p = Pipeline::new(plan, cfg)?;
        for (stream, tuple) in arrivals {
            p.offer(stream, tuple)?;
        }
        p.finish()
    }

    /// [`Pipeline::run`] with instruments recorded on `reg`.
    pub fn run_with_metrics(
        plan: QueryPlan,
        cfg: PipelineConfig,
        arrivals: impl IntoIterator<Item = (usize, Tuple)>,
        reg: &dt_obs::MetricsRegistry,
    ) -> DtResult<RunReport> {
        let mut p = Pipeline::new(plan, cfg)?.with_metrics(reg);
        for (stream, tuple) in arrivals {
            p.offer(stream, tuple)?;
        }
        p.finish()
    }

    /// Feed one arrival. Arrivals must be in non-decreasing timestamp
    /// order across all streams.
    pub fn offer(&mut self, stream: usize, tuple: Tuple) -> DtResult<()> {
        self.inner.offer(stream, tuple)
    }

    /// Feed a batch of time-ordered arrivals on one stream. Produces
    /// exactly the same shed decisions and results as per-tuple
    /// [`Pipeline::offer`] calls, while validating the stream once.
    pub fn offer_batch(
        &mut self,
        stream: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> DtResult<()> {
        self.inner.offer_batch(stream, tuples)
    }

    /// Drain queues and close every remaining window, returning the
    /// report.
    pub fn finish(self) -> DtResult<RunReport> {
        let mut reports = self.inner.finish()?;
        Ok(reports.pop().expect("single query"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_query::{parse_select, Catalog, Planner};
    use dt_types::{DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        c.add_stream(
            "S",
            Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
        );
        c
    }

    fn plan(sql: &str) -> QueryPlan {
        Planner::new(&catalog())
            .plan(&parse_select(sql).unwrap())
            .unwrap()
    }

    fn cfg(mode: ShedMode) -> PipelineConfig {
        let mut c = PipelineConfig::new(mode);
        c.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
        c
    }

    fn tup(vals: &[i64], us: u64) -> Tuple {
        Tuple::new(Row::from_ints(vals), Timestamp::from_micros(us))
    }

    /// Under light load every mode except summarize-only is exact.
    #[test]
    fn light_load_is_exact() {
        let arrivals = |_: ()| {
            vec![
                (0usize, tup(&[1], 100_000)),
                (1usize, tup(&[1, 5], 200_000)),
                (0usize, tup(&[2], 300_000)),
                (1usize, tup(&[2, 5], 400_000)),
            ]
        };
        for mode in [ShedMode::DropOnly, ShedMode::DataTriage] {
            let report = Pipeline::run(
                plan("SELECT a, COUNT(*) FROM R, S WHERE R.a = S.b GROUP BY a"),
                cfg(mode),
                arrivals(()),
            )
            .unwrap();
            assert_eq!(report.totals.dropped, 0, "{mode:?}");
            assert_eq!(report.totals.kept, 4, "{mode:?}");
            assert_eq!(report.windows.len(), 1, "{mode:?}");
            let g = report.windows[0].groups().unwrap();
            assert_eq!(g[&Row::from_ints(&[1])], vec![1.0], "{mode:?}");
            assert_eq!(g[&Row::from_ints(&[2])], vec![1.0], "{mode:?}");
        }
    }

    /// Summarize-only at exact synopsis resolution reproduces the
    /// whole answer approximately-exactly.
    #[test]
    fn summarize_only_estimates_everything() {
        let report = Pipeline::run(
            plan("SELECT a, COUNT(*) FROM R, S WHERE R.a = S.b GROUP BY a"),
            cfg(ShedMode::SummarizeOnly),
            vec![
                (0usize, tup(&[1], 100_000)),
                (1usize, tup(&[1, 5], 200_000)),
            ],
        )
        .unwrap();
        assert_eq!(report.totals.kept, 0);
        assert_eq!(report.totals.dropped, 2);
        let g = report.windows[0].groups().unwrap();
        assert!((g[&Row::from_ints(&[1])][0] - 1.0).abs() < 1e-9);
    }

    /// Overload forces drops; Data Triage recovers the lost counts at
    /// exact synopsis resolution (single-stream query: no join error).
    #[test]
    fn overload_data_triage_recovers_counts() {
        // Engine: 10 tuples/sec. 50 tuples arrive in one 1 s window at
        // 1 ms spacing — massive overload with queue capacity 5.
        let mut c = cfg(ShedMode::DataTriage);
        c.cost = CostModel::from_capacity(10.0).unwrap();
        c.queue_capacity = 5;
        let arrivals: Vec<(usize, Tuple)> = (0..50)
            .map(|i| (0usize, tup(&[i % 4], 1_000 * (i as u64 + 1))))
            .collect();
        let report =
            Pipeline::run(plan("SELECT a, COUNT(*) FROM R GROUP BY a"), c, arrivals).unwrap();
        assert!(report.totals.dropped > 0, "expected shedding");
        assert_eq!(report.totals.kept + report.totals.dropped, 50);
        // Merged counts must equal the true per-group counts, because
        // a width-1 histogram of a single stream is lossless for
        // GROUP BY/COUNT.
        let mut total = 0.0;
        for w in &report.windows {
            for v in w.groups().unwrap().values() {
                total += v[0];
            }
        }
        assert!((total - 50.0).abs() < 1e-6, "merged total {total}");
    }

    /// Drop-only loses what it drops.
    #[test]
    fn overload_drop_only_undercounts() {
        let mut c = cfg(ShedMode::DropOnly);
        c.cost = CostModel::from_capacity(10.0).unwrap();
        c.queue_capacity = 5;
        let arrivals: Vec<(usize, Tuple)> = (0..50)
            .map(|i| (0usize, tup(&[i % 4], 1_000 * (i as u64 + 1))))
            .collect();
        let report =
            Pipeline::run(plan("SELECT a, COUNT(*) FROM R GROUP BY a"), c, arrivals).unwrap();
        let mut total = 0.0;
        for w in &report.windows {
            for v in w.groups().unwrap().values() {
                total += v[0];
            }
        }
        assert!(
            total < 50.0 - 1e-6,
            "drop-only must undercount, got {total}"
        );
        assert!((total - report.totals.kept as f64).abs() < 1e-6);
    }

    #[test]
    fn non_aggregating_payload_carries_rows_and_estimate() {
        let mut c = cfg(ShedMode::DataTriage);
        c.cost = CostModel::from_capacity(10.0).unwrap();
        c.queue_capacity = 2;
        let arrivals: Vec<(usize, Tuple)> = (0..20)
            .map(|i| (0usize, tup(&[i], 1_000 * (i as u64 + 1))))
            .collect();
        let report = Pipeline::run(plan("SELECT a FROM R"), c, arrivals).unwrap();
        let w = &report.windows[0];
        match &w.payload {
            WindowPayload::Rows { rows, lost } => {
                assert!(!rows.is_empty());
                let lost = lost.as_ref().unwrap();
                assert!(lost.total_mass() > 0.0);
                // Conservation: kept rows + estimated lost = arrivals.
                assert!(
                    (rows.len() as f64 + lost.total_mass() - 20.0).abs() < 1e-6,
                    "{} + {}",
                    rows.len(),
                    lost.total_mass()
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn out_of_order_arrivals_rejected() {
        let mut p = Pipeline::new(
            plan("SELECT a, COUNT(*) FROM R GROUP BY a"),
            cfg(ShedMode::DataTriage),
        )
        .unwrap();
        p.offer(0, tup(&[1], 2_000)).unwrap();
        assert!(p.offer(0, tup(&[1], 1_000)).is_err());
    }

    #[test]
    fn unknown_stream_rejected() {
        let mut p = Pipeline::new(
            plan("SELECT a, COUNT(*) FROM R GROUP BY a"),
            cfg(ShedMode::DataTriage),
        )
        .unwrap();
        assert!(p.offer(5, tup(&[1], 0)).is_err());
    }

    #[test]
    fn mismatched_window_widths_rejected() {
        let p = plan(
            "SELECT a, COUNT(*) FROM R, S WHERE R.a = S.b GROUP BY a \
             WINDOW R['1 second'], S['2 seconds']",
        );
        assert!(Pipeline::new(p, cfg(ShedMode::DataTriage)).is_err());
    }

    #[test]
    fn results_sorted_and_stats_consistent() {
        let mut c = cfg(ShedMode::DataTriage);
        c.cost = CostModel::from_capacity(100.0).unwrap();
        c.queue_capacity = 3;
        // Three windows of 20 tuples each at 5 ms spacing.
        let arrivals: Vec<(usize, Tuple)> = (0..60)
            .map(|i| (0usize, tup(&[i % 7], 50_000 * (i as u64 + 1))))
            .collect();
        let report =
            Pipeline::run(plan("SELECT a, COUNT(*) FROM R GROUP BY a"), c, arrivals).unwrap();
        let windows: Vec<WindowId> = report.windows.iter().map(|w| w.window).collect();
        let mut sorted = windows.clone();
        sorted.sort_unstable();
        assert_eq!(windows, sorted);
        let arrived: u64 = report.windows.iter().map(|w| w.arrived).sum();
        let kept: u64 = report.windows.iter().map(|w| w.kept).sum();
        let dropped: u64 = report.windows.iter().map(|w| w.dropped).sum();
        assert_eq!(arrived, 60);
        assert_eq!(kept + dropped, arrived);
        assert_eq!(report.totals.arrived, arrived);
        assert_eq!(report.totals.kept, kept);
        assert_eq!(report.totals.dropped, dropped);
        for w in &report.windows {
            assert!(w.emitted_at >= report.window_spec.window_end(w.window));
        }
    }

    /// Instruments must never change results, and an enabled registry
    /// must agree with the run's own totals.
    #[test]
    fn metrics_instrumented_run_matches_and_records() {
        use dt_obs::{MetricValue, MetricsRegistry};
        let mut c = cfg(ShedMode::DataTriage);
        c.cost = CostModel::from_capacity(10.0).unwrap();
        c.queue_capacity = 5;
        let arrivals: Vec<(usize, Tuple)> = (0..50)
            .map(|i| (0usize, tup(&[i % 4], 1_000 * (i as u64 + 1))))
            .collect();
        let sql = "SELECT a, COUNT(*) FROM R GROUP BY a";
        let plain = Pipeline::run(plan(sql), c, arrivals.clone()).unwrap();
        let reg = MetricsRegistry::new();
        let wired = Pipeline::run_with_metrics(plan(sql), c, arrivals, &reg).unwrap();
        assert_eq!(plain.totals, wired.totals);
        assert_eq!(plain.windows.len(), wired.windows.len());

        let snap = reg.snapshot();
        let count = |outcome: &str| match snap
            .find(
                "dt_triage_tuples_total",
                &[("mode", "data-triage"), ("outcome", outcome)],
            )
            .unwrap()
            .value
        {
            MetricValue::Counter(v) => v,
            ref other => panic!("{other:?}"),
        };
        assert_eq!(count("arrived"), wired.totals.arrived);
        assert_eq!(count("kept"), wired.totals.kept);
        assert_eq!(count("dropped"), wired.totals.dropped);
        assert!(snap
            .find("dt_triage_queue_depth", &[("stream", "R")])
            .is_some());
        match snap.find("dt_engine_window_exec_us", &[]).unwrap().value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, wired.windows.len() as u64)
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut c = cfg(ShedMode::DataTriage);
            c.cost = CostModel::from_capacity(20.0).unwrap();
            c.queue_capacity = 4;
            c.seed = seed;
            let arrivals: Vec<(usize, Tuple)> = (0..40)
                .map(|i| (0usize, tup(&[i % 5], 2_000 * (i as u64 + 1))))
                .collect();
            let report =
                Pipeline::run(plan("SELECT a, COUNT(*) FROM R GROUP BY a"), c, arrivals).unwrap();
            report
                .windows
                .iter()
                .map(|w| {
                    let mut g: Vec<(Row, f64)> = w
                        .groups()
                        .unwrap()
                        .iter()
                        .map(|(k, v)| (k.clone(), v[0]))
                        .collect();
                    g.sort_by(|a, b| a.0.cmp(&b.0));
                    g
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
    }
}
