//! Bounded out-of-order absorption.
//!
//! The pipeline requires time-ordered arrivals (its window-close
//! barrier reasons about the oldest possible pending timestamp). Real
//! feeds are rarely perfectly ordered; TelegraphCQ's wrappers absorbed
//! small disorder before tuples reached the engine. [`ReorderBuffer`]
//! provides the same service: it holds arrivals in a min-heap and
//! releases them in timestamp order once they are older than the
//! newest timestamp seen minus a configured *disorder bound*. Tuples
//! arriving later than the bound allows (i.e. older than something
//! already released) are rejected individually, keeping the output
//! stream ordered.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dt_types::{DtError, DtResult, Timestamp, Tuple, VDuration};

/// A min-heap entry ordered by timestamp, tie-broken by insertion
/// sequence so equal-timestamp tuples keep arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    ts: Timestamp,
    seq: u64,
    stream: usize,
    tuple: Tuple,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ts, self.seq).cmp(&(other.ts, other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Absorbs out-of-order arrivals up to a disorder bound, emitting a
/// time-ordered stream.
#[derive(Debug, Clone)]
pub struct ReorderBuffer {
    bound: VDuration,
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
    /// Highest timestamp ever offered.
    high_water: Timestamp,
    /// Timestamp of the last released tuple.
    released_up_to: Timestamp,
    /// Arrivals rejected as too late.
    late_dropped: u64,
}

impl ReorderBuffer {
    /// A buffer absorbing disorder up to `bound` (a tuple may arrive
    /// up to `bound` later than any newer-stamped tuple).
    pub fn new(bound: VDuration) -> Self {
        ReorderBuffer {
            bound,
            heap: BinaryHeap::new(),
            seq: 0,
            high_water: Timestamp::ZERO,
            released_up_to: Timestamp::ZERO,
            late_dropped: 0,
        }
    }

    /// Buffered arrivals not yet released.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Arrivals rejected because they were older than the disorder
    /// bound allows.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Offer one (possibly out-of-order) arrival and collect every
    /// arrival that is now safe to release, in timestamp order.
    ///
    /// A tuple older than the last *released* timestamp cannot be
    /// emitted without breaking order; it is counted in
    /// [`ReorderBuffer::late_dropped`] and reported as an error so the
    /// caller can decide (a production wrapper might route it to a
    /// dead-letter stream — the Data Triage answer would be to
    /// synopsize it).
    pub fn offer(&mut self, stream: usize, tuple: Tuple) -> DtResult<Vec<(usize, Tuple)>> {
        if tuple.ts < self.released_up_to {
            self.late_dropped += 1;
            return Err(DtError::config(format!(
                "arrival at {} is older than the released watermark {} \
                 (disorder bound {} exceeded)",
                tuple.ts, self.released_up_to, self.bound
            )));
        }
        self.high_water = self.high_water.max(tuple.ts);
        self.heap.push(Reverse(Entry {
            ts: tuple.ts,
            seq: self.seq,
            stream,
            tuple,
        }));
        self.seq += 1;
        // Watermark: nothing older than (newest − bound) can still be
        // waiting without violating the bound.
        let watermark =
            Timestamp::from_micros(self.high_water.micros().saturating_sub(self.bound.micros()));
        Ok(self.release(watermark))
    }

    /// Flush everything still buffered, in order.
    pub fn drain(&mut self) -> Vec<(usize, Tuple)> {
        self.release_all()
    }

    /// Release every buffered arrival with `ts <= watermark`.
    fn release(&mut self, watermark: Timestamp) -> Vec<(usize, Tuple)> {
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.ts > watermark {
                break;
            }
            let Reverse(e) = self.heap.pop().expect("peeked");
            self.released_up_to = e.ts;
            out.push((e.stream, e.tuple));
        }
        out
    }

    fn release_all(&mut self) -> Vec<(usize, Tuple)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(Reverse(e)) = self.heap.pop() {
            self.released_up_to = e.ts;
            out.push((e.stream, e.tuple));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_types::Row;

    fn tup(v: i64, us: u64) -> Tuple {
        Tuple::new(Row::from_ints(&[v]), Timestamp::from_micros(us))
    }

    fn offer_all(buf: &mut ReorderBuffer, arrivals: &[(usize, u64)]) -> (Vec<(usize, Tuple)>, u64) {
        let mut out = Vec::new();
        let mut rejected = 0;
        for &(s, us) in arrivals {
            match buf.offer(s, tup(us as i64, us)) {
                Ok(mut released) => out.append(&mut released),
                Err(_) => rejected += 1,
            }
        }
        out.append(&mut buf.drain());
        (out, rejected)
    }

    #[test]
    fn reorders_within_bound() {
        let mut buf = ReorderBuffer::new(VDuration::from_millis(10));
        let arrivals = [
            (0, 5_000u64),
            (0, 1_000),
            (0, 9_000),
            (0, 3_000),
            (0, 12_000),
        ];
        let (out, rejected) = offer_all(&mut buf, &arrivals);
        assert_eq!(rejected, 0);
        let ts: Vec<u64> = out.iter().map(|(_, t)| t.ts.micros()).collect();
        assert_eq!(ts, vec![1_000, 3_000, 5_000, 9_000, 12_000]);
    }

    #[test]
    fn releases_eagerly_behind_watermark() {
        let mut buf = ReorderBuffer::new(VDuration::from_millis(1));
        // At 5ms the watermark is 4ms: the 1ms tuple is released.
        buf.offer(0, tup(1, 1_000)).unwrap();
        let released = buf.offer(0, tup(5, 5_000)).unwrap();
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].1.ts, Timestamp::from_micros(1_000));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn rejects_tuples_older_than_released_watermark() {
        let mut buf = ReorderBuffer::new(VDuration::from_millis(1));
        buf.offer(0, tup(1, 1_000)).unwrap();
        buf.offer(0, tup(9, 9_000)).unwrap(); // releases the 1ms tuple
                                              // A 500µs tuple is now unreleasable in order.
        assert!(buf.offer(0, tup(0, 500)).is_err());
        assert_eq!(buf.late_dropped(), 1);
        // But a tuple inside the bound is fine.
        assert!(buf.offer(0, tup(8, 8_500)).is_ok());
    }

    #[test]
    fn equal_timestamps_keep_arrival_order() {
        let mut buf = ReorderBuffer::new(VDuration::from_millis(10));
        buf.offer(0, tup(1, 5_000)).unwrap();
        buf.offer(1, tup(2, 5_000)).unwrap();
        buf.offer(0, tup(3, 5_000)).unwrap();
        let out = buf.drain();
        let vals: Vec<i64> = out
            .iter()
            .map(|(_, t)| t.row[0].as_i64().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn drain_empties() {
        let mut buf = ReorderBuffer::new(VDuration::from_millis(10));
        buf.offer(0, tup(1, 1_000)).unwrap();
        assert!(!buf.is_empty());
        assert_eq!(buf.drain().len(), 1);
        assert!(buf.is_empty());
        assert!(buf.drain().is_empty());
    }

    #[test]
    fn feeds_a_pipeline_in_valid_order() {
        use crate::{Pipeline, PipelineConfig, ShedMode};
        use dt_query::{parse_select, Catalog, Planner};
        use dt_synopsis::SynopsisConfig;
        use dt_types::{DataType, Schema};

        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        let plan = Planner::new(&c)
            .plan(&parse_select("SELECT a, COUNT(*) FROM R GROUP BY a").unwrap())
            .unwrap();
        let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
        cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
        let mut pipeline = Pipeline::new(plan, cfg).unwrap();

        // Jittered arrivals: each up to 2ms out of order.
        let mut buf = ReorderBuffer::new(VDuration::from_millis(2));
        let mut fed = 0u64;
        for i in 0..200u64 {
            let base = 1_000 * (i + 1);
            let jitter = if i % 3 == 0 { 1_500 } else { 0 };
            let ts = base + jitter;
            for (s, t) in buf.offer(0, tup((i % 5) as i64, ts)).unwrap() {
                pipeline.offer(s, t).unwrap();
                fed += 1;
            }
        }
        for (s, t) in buf.drain() {
            pipeline.offer(s, t).unwrap();
            fed += 1;
        }
        assert_eq!(fed, 200);
        let report = pipeline.finish().unwrap();
        assert_eq!(report.totals.arrived, 200);
    }
}
