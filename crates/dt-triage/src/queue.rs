//! The triage queue (paper Fig. 1).
//!
//! A bounded FIFO between a data source and the engine. During normal
//! operation it is a plain queue; when it is full and another tuple
//! arrives, the [`DropPolicy`] selects a victim, which the caller may
//! synopsize (Data Triage) or discard (drop-only).

use std::collections::VecDeque;

use dt_synopsis::Synopsis;
use dt_types::{DtError, DtResult, Timestamp, Tuple, Value};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::policy::DropPolicy;

/// Number of random candidates the synergistic policy inspects.
const SYNERGY_CANDIDATES: usize = 16;

/// A bounded triage queue with pluggable victim selection.
///
/// ```
/// use dt_triage::{DropPolicy, TriageQueue};
/// use dt_types::{Row, Timestamp, Tuple};
///
/// let mut q = TriageQueue::new(2, DropPolicy::Front, 0)?;
/// let t = |v: i64, us: u64| Tuple::new(Row::from_ints(&[v]), Timestamp::from_micros(us));
/// assert!(q.push(t(1, 10), None).is_none());
/// assert!(q.push(t(2, 20), None).is_none());
/// // Full: the front policy sheds the oldest tuple.
/// let victim = q.push(t(3, 30), None).expect("overflow sheds");
/// assert_eq!(victim.row, Row::from_ints(&[1]));
/// assert_eq!(q.len(), 2);
/// # Ok::<(), dt_types::DtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TriageQueue {
    capacity: usize,
    items: VecDeque<Tuple>,
    policy: DropPolicy,
    rng: ChaCha8Rng,
    /// Cumulative statistics.
    pushed: u64,
    dropped: u64,
}

impl TriageQueue {
    /// A queue holding at most `capacity` tuples.
    pub fn new(capacity: usize, policy: DropPolicy, seed: u64) -> DtResult<Self> {
        if capacity == 0 {
            return Err(DtError::config("triage queue capacity must be >= 1"));
        }
        Ok(TriageQueue {
            capacity,
            items: VecDeque::with_capacity(capacity + 1),
            policy,
            rng: ChaCha8Rng::seed_from_u64(seed),
            pushed: 0,
            dropped: 0,
        })
    }

    /// Buffered tuple count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Timestamp of the oldest buffered tuple.
    pub fn head_ts(&self) -> Option<Timestamp> {
        self.items.front().map(|t| t.ts)
    }

    /// Total tuples ever offered to the queue.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total victims shed.
    pub fn total_dropped(&self) -> u64 {
        self.dropped
    }

    /// Offer a tuple. If the queue is full, the drop policy selects
    /// and returns a victim (possibly the offered tuple itself); the
    /// caller decides the victim's fate. `dropped_synopsis` is the
    /// current window's dropped-tuple synopsis, consulted only by the
    /// synergistic policy.
    pub fn push(&mut self, tuple: Tuple, dropped_synopsis: Option<&Synopsis>) -> Option<Tuple> {
        self.pushed += 1;
        if self.items.len() < self.capacity {
            self.items.push_back(tuple);
            return None;
        }
        self.dropped += 1;
        let victim_idx = match self.policy {
            DropPolicy::Newest => return Some(tuple),
            DropPolicy::Front => 0,
            DropPolicy::Random => self.rng.gen_range(0..self.items.len()),
            DropPolicy::Synergistic => self.pick_synergistic(dropped_synopsis),
        };
        let victim = self
            .items
            .remove(victim_idx)
            .expect("victim index in range");
        self.items.push_back(tuple);
        Some(victim)
    }

    /// Pull the oldest buffered tuple.
    pub fn pop(&mut self) -> Option<Tuple> {
        self.items.pop_front()
    }

    /// Shed by policy *now*, regardless of occupancy — the adaptive
    /// controller's path ([`crate::LoadController`]): the drop policy
    /// picks a victim among the buffered tuples plus the incoming one
    /// (the `Newest` policy, or an empty queue, sheds the incoming
    /// tuple itself), the incoming tuple takes the victim's place, and
    /// the victim is returned for the caller to synopsize or discard.
    /// Counts as one offered and one dropped tuple, exactly like an
    /// overflow shed in [`TriageQueue::push`].
    pub fn shed(&mut self, tuple: Tuple, dropped_synopsis: Option<&Synopsis>) -> Tuple {
        self.pushed += 1;
        self.dropped += 1;
        if self.items.is_empty() {
            return tuple;
        }
        let victim_idx = match self.policy {
            DropPolicy::Newest => return tuple,
            DropPolicy::Front => 0,
            DropPolicy::Random => self.rng.gen_range(0..self.items.len()),
            DropPolicy::Synergistic => self.pick_synergistic(dropped_synopsis),
        };
        let victim = self
            .items
            .remove(victim_idx)
            .expect("victim index in range");
        self.items.push_back(tuple);
        victim
    }

    /// Offer a whole batch of tuples in order, appending every victim
    /// (in shed order) to `victims` — the caller owns and reuses the
    /// buffer across batches. Returns the number of victims appended.
    ///
    /// Bit-identical to one [`TriageQueue::push`] call per tuple: the
    /// same drop policy decisions are made against the same RNG
    /// stream, so batched and per-tuple ingest shed exactly the same
    /// tuples.
    pub fn push_batch(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
        dropped_synopsis: Option<&Synopsis>,
        victims: &mut Vec<Tuple>,
    ) -> usize {
        let before = victims.len();
        for t in tuples {
            if let Some(v) = self.push(t, dropped_synopsis) {
                victims.push(v);
            }
        }
        victims.len() - before
    }

    /// Drain up to `max` buffered tuples, oldest first, appending them
    /// to `out` (a caller-owned reusable buffer). Returns how many
    /// were drained.
    pub fn drain_into(&mut self, max: usize, out: &mut Vec<Tuple>) -> usize {
        let n = max.min(self.items.len());
        out.reserve(n);
        out.extend(self.items.drain(..n));
        n
    }

    /// The synergistic policy: sample a few candidates and prefer one
    /// whose row the synopsis already covers (costs no new cell /
    /// bucket / sample slot); otherwise fall back to a random victim.
    fn pick_synergistic(&mut self, dropped_synopsis: Option<&Synopsis>) -> usize {
        let n = self.items.len();
        let fallback = self.rng.gen_range(0..n);
        let Some(syn) = dropped_synopsis else {
            return fallback;
        };
        for _ in 0..SYNERGY_CANDIDATES.min(n) {
            let idx = self.rng.gen_range(0..n);
            let tuple = &self.items[idx];
            let point: Option<Vec<i64>> = tuple.row.values().iter().map(Value::as_i64).collect();
            if let Some(p) = point {
                if syn.covers(&p) {
                    return idx;
                }
            }
        }
        fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_synopsis::SynopsisConfig;
    use dt_types::Row;

    fn tup(v: i64, us: u64) -> Tuple {
        Tuple::new(Row::from_ints(&[v]), Timestamp::from_micros(us))
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(TriageQueue::new(0, DropPolicy::Random, 0).is_err());
    }

    #[test]
    fn fifo_below_capacity() {
        let mut q = TriageQueue::new(3, DropPolicy::Random, 0).unwrap();
        assert!(q.push(tup(1, 10), None).is_none());
        assert!(q.push(tup(2, 20), None).is_none());
        assert_eq!(q.len(), 2);
        assert_eq!(q.head_ts(), Some(Timestamp::from_micros(10)));
        assert_eq!(q.pop().unwrap().row, Row::from_ints(&[1]));
        assert_eq!(q.pop().unwrap().row, Row::from_ints(&[2]));
        assert!(q.pop().is_none());
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_dropped(), 0);
    }

    #[test]
    fn overflow_sheds_exactly_one() {
        let mut q = TriageQueue::new(2, DropPolicy::Random, 7).unwrap();
        q.push(tup(1, 10), None);
        q.push(tup(2, 20), None);
        let victim = q.push(tup(3, 30), None);
        assert!(victim.is_some());
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_dropped(), 1);
    }

    #[test]
    fn front_policy_drops_oldest() {
        let mut q = TriageQueue::new(2, DropPolicy::Front, 0).unwrap();
        q.push(tup(1, 10), None);
        q.push(tup(2, 20), None);
        let victim = q.push(tup(3, 30), None).unwrap();
        assert_eq!(victim.row, Row::from_ints(&[1]));
        // The incoming tuple is buffered.
        assert_eq!(q.pop().unwrap().row, Row::from_ints(&[2]));
        assert_eq!(q.pop().unwrap().row, Row::from_ints(&[3]));
    }

    #[test]
    fn newest_policy_drops_incoming() {
        let mut q = TriageQueue::new(1, DropPolicy::Newest, 0).unwrap();
        q.push(tup(1, 10), None);
        let victim = q.push(tup(2, 20), None).unwrap();
        assert_eq!(victim.row, Row::from_ints(&[2]));
        assert_eq!(q.pop().unwrap().row, Row::from_ints(&[1]));
    }

    #[test]
    fn random_policy_preserves_arrival_order_of_survivors() {
        let mut q = TriageQueue::new(4, DropPolicy::Random, 42).unwrap();
        for i in 0..20 {
            q.push(tup(i, 10 * (i as u64 + 1)), None);
        }
        let mut last = Timestamp::ZERO;
        while let Some(t) = q.pop() {
            assert!(t.ts >= last, "queue must stay time-ordered");
            last = t.ts;
        }
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed| {
            let mut q = TriageQueue::new(3, DropPolicy::Random, seed).unwrap();
            let mut victims = Vec::new();
            for i in 0..10 {
                if let Some(v) = q.push(tup(i, i as u64), None) {
                    victims.push(v.row[0].as_i64().unwrap());
                }
            }
            victims
        };
        assert_eq!(run(1), run(1));
        // Overwhelmingly likely to differ for different seeds.
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn synergistic_prefers_covered_victims() {
        // Synopsis already has mass at value 5 (cell width 1).
        let mut syn = SynopsisConfig::Sparse { cell_width: 1 }.build(1).unwrap();
        syn.insert(&[5]).unwrap();
        let mut q = TriageQueue::new(8, DropPolicy::Synergistic, 3).unwrap();
        // Fill: one tuple with value 5 among seven others.
        q.push(tup(5, 1), Some(&syn));
        for i in 0..7 {
            q.push(tup(100 + i, 2 + i as u64), Some(&syn));
        }
        // Overflow several times: the value-5 tuple should be an early
        // victim (it is the only covered candidate).
        let mut victims = Vec::new();
        for i in 0..3 {
            if let Some(v) = q.push(tup(200 + i, 50 + i as u64), Some(&syn)) {
                victims.push(v.row[0].as_i64().unwrap());
            }
        }
        assert!(
            victims.contains(&5),
            "expected the covered tuple to be shed, victims: {victims:?}"
        );
    }

    #[test]
    fn shed_below_capacity_applies_policy() {
        // Front policy: the oldest buffered tuple is the victim even
        // though the queue is nowhere near full.
        let mut q = TriageQueue::new(10, DropPolicy::Front, 0).unwrap();
        q.push(tup(1, 10), None);
        q.push(tup(2, 20), None);
        let victim = q.shed(tup(3, 30), None);
        assert_eq!(victim.row, Row::from_ints(&[1]));
        assert_eq!(q.len(), 2, "incoming replaced the victim");
        assert_eq!(q.total_dropped(), 1);
        assert_eq!(q.total_pushed(), 3);
        // Newest policy sheds the incoming tuple itself.
        let mut q = TriageQueue::new(10, DropPolicy::Newest, 0).unwrap();
        q.push(tup(1, 10), None);
        let victim = q.shed(tup(2, 20), None);
        assert_eq!(victim.row, Row::from_ints(&[2]));
        assert_eq!(q.len(), 1);
        // An empty queue sheds the incoming tuple under any policy.
        let mut q = TriageQueue::new(10, DropPolicy::Front, 0).unwrap();
        let victim = q.shed(tup(9, 5), None);
        assert_eq!(victim.row, Row::from_ints(&[9]));
        assert!(q.is_empty());
    }

    #[test]
    fn shed_keeps_queue_time_ordered() {
        let mut q = TriageQueue::new(8, DropPolicy::Random, 11).unwrap();
        for i in 0..5 {
            q.push(tup(i, 10 * (i as u64 + 1)), None);
        }
        for i in 5..15 {
            q.shed(tup(i, 10 * (i as u64 + 1)), None);
        }
        let mut last = Timestamp::ZERO;
        while let Some(t) = q.pop() {
            assert!(t.ts >= last, "queue must stay time-ordered");
            last = t.ts;
        }
    }

    #[test]
    fn synergistic_without_synopsis_falls_back() {
        let mut q = TriageQueue::new(1, DropPolicy::Synergistic, 3).unwrap();
        q.push(tup(1, 1), None);
        assert!(q.push(tup(2, 2), None).is_some());
    }
}
