//! Merging exact window results with shadow-query estimates.
//!
//! The paper merges "the aggregates computed from a SQL GROUP BY
//! statement with approximate aggregates computed from synopses" in
//! its web front-end; this module is that logic as a library function.
//!
//! Merge rules per aggregate:
//!
//! * `COUNT`  — exact + estimated group count.
//! * `SUM`    — exact + estimated group sum.
//! * `AVG`    — re-weighted: `(exact·n + est_sum) / (n + est_count)`.
//! * `MIN`/`MAX` — exact value only (a histogram could bound these by
//!   bucket edges, but the paper does not attempt it and neither do
//!   we; a group seen *only* in the estimate reports NaN for them).

use dt_types::FxHashMap;

use dt_engine::WindowOutput;
use dt_query::{Aggregate, QueryPlan};
use dt_rewrite::ShadowQuery;
use dt_synopsis::{GroupEstimate, Synopsis};
use dt_types::{DtError, DtResult, Row, Value};

/// Final merged per-group aggregate values, in
/// [`QueryPlan::aggregates`] order.
pub type MergedGroups = FxHashMap<Row, Vec<f64>>;

/// Estimated masses below this threshold are treated as zero (they
/// arise from floating-point dust in histogram arithmetic).
const MASS_EPSILON: f64 = 1e-9;

/// Merge one window's exact grouped output with the shadow plan's
/// estimate of the lost results.
///
/// `estimate == None` (drop-only mode) returns the exact values
/// unchanged. Estimation supports zero or one GROUP BY column (the
/// paper's workload); multi-column grouping with an estimate is
/// rejected.
pub fn merge_window(
    plan: &QueryPlan,
    shadow: &ShadowQuery,
    exact: &WindowOutput,
    estimate: Option<&Synopsis>,
) -> DtResult<MergedGroups> {
    let exact_groups = exact
        .groups()
        .ok_or_else(|| DtError::engine("merge_window requires an aggregating query"))?;

    // Fast path: no estimate to fold in.
    let Some(est) = estimate else {
        return Ok(exact_groups
            .iter()
            .map(|(k, v)| (k.clone(), v.iter().map(|a| a.value).collect()))
            .collect());
    };

    if plan.group_by.len() > 1 {
        return Err(DtError::engine(
            "shadow estimation supports at most one GROUP BY column",
        ));
    }

    // Per-group estimated counts (and, lazily, sums per aggregate).
    let group_dim = plan.group_by.first().map(|&col| shadow.column_dims[col]);
    let est_counts: GroupEstimate = match group_dim {
        Some(d) => est.group_counts(d)?,
        None => {
            let mut m = GroupEstimate::default();
            m.insert(0, est.total_mass());
            m
        }
    };
    let est_sums_for = |arg: usize| -> DtResult<GroupEstimate> {
        let sum_dim = shadow.column_dims[arg];
        match group_dim {
            Some(d) => est.group_sums(d, sum_dim),
            None => {
                // Global sum: group on the sum dim itself, then total.
                let per_value = est.group_counts(sum_dim)?;
                let total: f64 = per_value.iter().map(|(v, m)| *v as f64 * m).sum();
                let mut m = GroupEstimate::default();
                m.insert(0, total);
                Ok(m)
            }
        }
    };
    // Pre-compute sums per distinct aggregate argument.
    let mut sums_cache: FxHashMap<usize, GroupEstimate> = FxHashMap::default();
    for agg in &plan.aggregates {
        if matches!(agg.func, Aggregate::Sum | Aggregate::Avg) {
            if let Some(arg) = agg.arg {
                if let std::collections::hash_map::Entry::Vacant(e) = sums_cache.entry(arg) {
                    e.insert(est_sums_for(arg)?);
                }
            }
        }
    }

    // The union of group keys: exact ∪ estimated.
    let key_of = |v: i64| -> Row {
        match group_dim {
            Some(_) => Row::new(vec![Value::Int(v)]),
            None => Row::new(vec![]),
        }
    };
    let mut keys: Vec<Row> = exact_groups.keys().cloned().collect();
    for (&v, &mass) in &est_counts {
        if mass > MASS_EPSILON {
            let k = key_of(v);
            if !exact_groups.contains_key(&k) {
                keys.push(k);
            }
        }
    }

    // The integer group value for a key (None for the global group).
    let group_value = |key: &Row| -> DtResult<Option<i64>> {
        match group_dim {
            None => Ok(None),
            Some(_) => {
                let v = key.get(0).and_then(Value::as_i64).ok_or_else(|| {
                    DtError::engine("estimated GROUP BY column must be an integer")
                })?;
                Ok(Some(v))
            }
        }
    };

    let mut merged = MergedGroups::with_capacity_and_hasher(keys.len(), Default::default());
    for key in keys {
        let gv = group_value(&key)?.unwrap_or(0);
        let e_count = est_counts.get(&gv).copied().unwrap_or(0.0).max(0.0);
        let exact_aggs = exact_groups.get(&key);
        let mut vals = Vec::with_capacity(plan.aggregates.len());
        for (i, agg) in plan.aggregates.iter().enumerate() {
            let (x_val, x_n) = exact_aggs
                .map(|a| (a[i].value, a[i].n))
                .unwrap_or((f64::NAN, 0));
            let x_val0 = if x_n == 0 { 0.0 } else { x_val };
            let v = match agg.func {
                Aggregate::Count => x_val0 + e_count,
                Aggregate::Sum => {
                    let e_sum = agg
                        .arg
                        .and_then(|arg| sums_cache.get(&arg))
                        .and_then(|m| m.get(&gv))
                        .copied()
                        .unwrap_or(0.0);
                    x_val0 + e_sum
                }
                Aggregate::Avg => {
                    let e_sum = agg
                        .arg
                        .and_then(|arg| sums_cache.get(&arg))
                        .and_then(|m| m.get(&gv))
                        .copied()
                        .unwrap_or(0.0);
                    let denom = x_n as f64 + e_count;
                    if denom <= MASS_EPSILON {
                        f64::NAN
                    } else {
                        (x_val0 * x_n as f64 + e_sum) / denom
                    }
                }
                // MIN/MAX: exact only (NaN for estimate-only groups).
                Aggregate::Min | Aggregate::Max => x_val,
            };
            vals.push(v);
        }
        merged.insert(key, vals);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_engine::execute_window;
    use dt_query::{parse_select, Catalog, Planner};
    use dt_rewrite::rewrite_dropped;
    use dt_synopsis::SynopsisConfig;
    use dt_types::{DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream(
            "S",
            Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
        );
        c
    }

    fn setup(sql: &str) -> (QueryPlan, ShadowQuery) {
        let plan = Planner::new(&catalog())
            .plan(&parse_select(sql).unwrap())
            .unwrap();
        let shadow = rewrite_dropped(&plan).unwrap();
        (plan, shadow)
    }

    fn syn(points: &[&[i64]]) -> Synopsis {
        let mut s = SynopsisConfig::Sparse { cell_width: 1 }.build(2).unwrap();
        for p in points {
            s.insert(p).unwrap();
        }
        s.seal();
        s
    }

    fn rows(data: &[&[i64]]) -> Vec<Row> {
        data.iter().map(|r| Row::from_ints(r)).collect()
    }

    #[test]
    fn count_merges_additively() {
        let (plan, shadow) = setup("SELECT b, COUNT(*) FROM S GROUP BY b");
        // Exact: b=1 ×2. Estimate (dropped): b=1 ×1, b=2 ×3.
        let exact = execute_window(&plan, &[rows(&[&[1, 10], &[1, 20]])]).unwrap();
        let est = syn(&[&[1, 30], &[2, 1], &[2, 2], &[2, 3]]);
        let merged = merge_window(&plan, &shadow, &exact, Some(&est)).unwrap();
        assert_eq!(merged[&Row::from_ints(&[1])], vec![3.0]);
        assert_eq!(merged[&Row::from_ints(&[2])], vec![3.0]);
    }

    #[test]
    fn without_estimate_returns_exact() {
        let (plan, shadow) = setup("SELECT b, COUNT(*) FROM S GROUP BY b");
        let exact = execute_window(&plan, &[rows(&[&[1, 10]])]).unwrap();
        let merged = merge_window(&plan, &shadow, &exact, None).unwrap();
        assert_eq!(merged[&Row::from_ints(&[1])], vec![1.0]);
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn sum_and_avg_merge() {
        let (plan, shadow) = setup("SELECT b, SUM(c), AVG(c) FROM S GROUP BY b");
        // Exact: b=1 rows c=10,20 => sum 30, avg 15, n=2.
        let exact = execute_window(&plan, &[rows(&[&[1, 10], &[1, 20]])]).unwrap();
        // Estimate: b=1 one dropped row with c=60.
        let est = syn(&[&[1, 60]]);
        let merged = merge_window(&plan, &shadow, &exact, Some(&est)).unwrap();
        let v = &merged[&Row::from_ints(&[1])];
        assert!((v[0] - 90.0).abs() < 1e-9, "sum {}", v[0]);
        assert!((v[1] - 30.0).abs() < 1e-9, "avg {}", v[1]);
    }

    #[test]
    fn estimate_only_groups_appear() {
        let (plan, shadow) = setup("SELECT b, COUNT(*), MIN(c) FROM S GROUP BY b");
        let exact = execute_window(&plan, &[vec![]]).unwrap();
        let est = syn(&[&[7, 1], &[7, 2]]);
        let merged = merge_window(&plan, &shadow, &exact, Some(&est)).unwrap();
        let v = &merged[&Row::from_ints(&[7])];
        assert_eq!(v[0], 2.0);
        assert!(v[1].is_nan(), "MIN of an estimate-only group is NaN");
    }

    #[test]
    fn global_aggregate_merges_total_mass() {
        let (plan, shadow) = setup("SELECT COUNT(*), SUM(c) FROM S");
        let exact = execute_window(&plan, &[rows(&[&[1, 10]])]).unwrap();
        let est = syn(&[&[2, 5], &[3, 7]]);
        let merged = merge_window(&plan, &shadow, &exact, Some(&est)).unwrap();
        let v = &merged[&Row::new(vec![])];
        assert_eq!(v[0], 3.0);
        assert!((v[1] - 22.0).abs() < 1e-9, "sum {}", v[1]);
    }

    #[test]
    fn min_max_stay_exact() {
        let (plan, shadow) = setup("SELECT b, MIN(c), MAX(c) FROM S GROUP BY b");
        let exact = execute_window(&plan, &[rows(&[&[1, 10], &[1, 30]])]).unwrap();
        let est = syn(&[&[1, 999]]);
        let merged = merge_window(&plan, &shadow, &exact, Some(&est)).unwrap();
        let v = &merged[&Row::from_ints(&[1])];
        assert_eq!(v[0], 10.0);
        assert_eq!(v[1], 30.0);
    }

    #[test]
    fn non_aggregating_query_rejected() {
        let (plan, shadow) = setup("SELECT b FROM S");
        let exact = execute_window(&plan, &[rows(&[&[1, 2]])]).unwrap();
        assert!(merge_window(&plan, &shadow, &exact, None).is_err());
    }
}
