//! A tiny ordered map keyed by [`WindowId`], tuned for the pipeline's
//! access pattern.
//!
//! The pipeline keeps per-window state (stats, synopsis pairs,
//! incremental join states) for the handful of windows that are open
//! at once — almost always one or two, a few for hopping specs. Every
//! arriving tuple touches this state two or three times, so the
//! generic `BTreeMap` it used to live in paid a tree descent per
//! touch. A sorted vector with a last-entry fast path makes the
//! common case (time-ordered arrivals hitting the newest window) one
//! comparison, while keeping oldest-first iteration for window close.

use dt_types::{DtResult, WindowId};

/// Sorted-by-id vector map. All operations assume (and preserve)
/// ascending id order.
#[derive(Debug, Clone, Default)]
pub(crate) struct WinMap<T> {
    entries: Vec<(WindowId, T)>,
}

impl<T> WinMap<T> {
    pub fn new() -> Self {
        WinMap {
            entries: Vec::new(),
        }
    }

    /// Locate `w`: `Ok(index)` if present, `Err(insertion index)` if
    /// not. Fast-paths the newest window before binary-searching.
    #[inline]
    fn pos(&self, w: WindowId) -> Result<usize, usize> {
        match self.entries.last() {
            Some(&(last, _)) if last == w => Ok(self.entries.len() - 1),
            Some(&(last, _)) if last < w => Err(self.entries.len()),
            None => Err(0),
            _ => self.entries.binary_search_by_key(&w, |&(id, _)| id),
        }
    }

    pub fn get(&self, w: WindowId) -> Option<&T> {
        self.pos(w).ok().map(|i| &self.entries[i].1)
    }

    pub fn get_mut(&mut self, w: WindowId) -> Option<&mut T> {
        self.pos(w).ok().map(|i| &mut self.entries[i].1)
    }

    /// Mutable access, inserting `make()` first if `w` is absent.
    pub fn get_or_insert_with(&mut self, w: WindowId, make: impl FnOnce() -> T) -> &mut T {
        let i = match self.pos(w) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (w, make()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// [`WinMap::get_or_insert_with`] for fallible constructors; the
    /// map is unchanged when `make` errors.
    pub fn get_or_try_insert_with(
        &mut self,
        w: WindowId,
        make: impl FnOnce() -> DtResult<T>,
    ) -> DtResult<&mut T> {
        let i = match self.pos(w) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (w, make()?));
                i
            }
        };
        Ok(&mut self.entries[i].1)
    }

    /// The oldest window's id, if any.
    pub fn first_id(&self) -> Option<WindowId> {
        self.entries.first().map(|&(w, _)| w)
    }

    /// All window ids, oldest first.
    pub fn ids(&self) -> impl Iterator<Item = WindowId> + '_ {
        self.entries.iter().map(|&(w, _)| w)
    }

    pub fn remove(&mut self, w: WindowId) -> Option<T> {
        self.pos(w).ok().map(|i| self.entries.remove(i).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_ordered_and_out_of_order() {
        let mut m: WinMap<&str> = WinMap::new();
        *m.get_or_insert_with(5, || "e") = "five";
        *m.get_or_insert_with(1, || "a") = "one";
        *m.get_or_insert_with(3, || "c") = "three";
        assert_eq!(m.ids().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(m.first_id(), Some(1));
        assert_eq!(m.get(3), Some(&"three"));
        assert_eq!(m.get(2), None);
    }

    #[test]
    fn get_or_insert_reuses_existing() {
        let mut m: WinMap<u32> = WinMap::new();
        *m.get_or_insert_with(7, || 1) += 1;
        *m.get_or_insert_with(7, || 100) += 1;
        assert_eq!(m.get(7), Some(&3));
    }

    #[test]
    fn try_insert_propagates_error_without_inserting() {
        let mut m: WinMap<u32> = WinMap::new();
        assert!(m
            .get_or_try_insert_with(2, || Err(dt_types::DtError::config("nope")))
            .is_err());
        assert_eq!(m.get(2), None);
        assert_eq!(*m.get_or_try_insert_with(2, || Ok(9)).unwrap(), 9);
    }

    #[test]
    fn remove_keeps_order() {
        let mut m: WinMap<u32> = WinMap::new();
        for w in [0, 1, 2] {
            m.get_or_insert_with(w, || w as u32);
        }
        assert_eq!(m.remove(1), Some(1));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.ids().collect::<Vec<_>>(), vec![0, 2]);
    }
}
