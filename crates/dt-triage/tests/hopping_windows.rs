//! End-to-end hopping-window runs: with lossless synopses, every
//! overlapping window's merged result must equal the ideal, even under
//! heavy shedding — the rewrite theorem is window-shape agnostic.

use dt_engine::CostModel;
use dt_metrics::{ideal_map, report_to_map, rms_error};
use dt_query::{parse_select, Catalog, Planner, QueryPlan};
use dt_synopsis::SynopsisConfig;
use dt_triage::{Pipeline, PipelineConfig, ShedMode};
use dt_types::{DataType, Schema};
use dt_workload::{generate, ArrivalModel, Gaussian, StreamSpec, WorkloadConfig};

fn hopping_plan(width: &str, slide: &str) -> QueryPlan {
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    Planner::new(&c)
        .plan(
            &parse_select(&format!(
                "SELECT a, COUNT(*) as n FROM R GROUP BY a WINDOW R['{width}', '{slide}']"
            ))
            .unwrap(),
        )
        .unwrap()
}

fn small_domain_workload(seed: u64) -> Vec<(usize, dt_types::Tuple)> {
    let dist = Gaussian {
        mean: 5.0,
        std: 2.0,
        lo: 1,
        hi: 10,
    };
    generate(&WorkloadConfig {
        streams: vec![StreamSpec::uniform_bursts(1, dist)],
        arrival: ArrivalModel::Constant { rate: 2_000.0 },
        total_tuples: 4_000,
        seed,
    })
    .unwrap()
}

#[test]
fn hopping_plan_parses_with_width_and_slide() {
    let plan = hopping_plan("2 seconds", "500 milliseconds");
    let spec = plan.streams[0].window;
    assert!(!spec.is_tumbling());
    assert_eq!(spec.width(), dt_types::VDuration::from_secs(2));
    assert_eq!(spec.slide(), dt_types::VDuration::from_millis(500));
}

#[test]
fn gapped_windows_rejected_at_planning() {
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let stmt = parse_select("SELECT a FROM R WINDOW R['1 second', '2 seconds']").unwrap();
    assert!(Planner::new(&c).plan(&stmt).is_err());
}

#[test]
fn hopping_windows_are_exact_with_lossless_synopses_under_shedding() {
    let plan = hopping_plan("1 second", "250 milliseconds");
    let arrivals = small_domain_workload(31);
    let ideal = ideal_map(&plan, &arrivals).unwrap();

    let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
    cfg.cost = CostModel::from_capacity(400.0).unwrap();
    cfg.queue_capacity = 30;
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.seed = 31;
    let report = Pipeline::run(plan, cfg, arrivals.iter().cloned()).unwrap();
    assert!(report.totals.dropped > 500, "must shed heavily");
    let err = rms_error(&ideal, &report_to_map(&report));
    assert!(err < 1e-6, "hopping exactness violated: {err}");
    // Overlap factor 4: roughly 4x as many windows as a tumbling run
    // over the same span.
    assert!(report.windows.len() > 8, "{}", report.windows.len());
}

#[test]
fn hopping_window_counts_overlap_consistently() {
    // Each tuple lands in `windows_of(ts).count()` windows (up to
    // width/slide = 4; fewer near the time origin), so the summed
    // merged counts must equal the summed per-tuple window
    // multiplicities exactly — lossless synopses lose nothing.
    let plan = hopping_plan("1 second", "250 milliseconds");
    let spec = plan.streams[0].window;
    let arrivals = small_domain_workload(32);
    let expected: usize = arrivals
        .iter()
        .map(|(_, t)| spec.windows_of(t.ts).count())
        .sum();
    let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
    cfg.cost = CostModel::from_capacity(400.0).unwrap();
    cfg.queue_capacity = 30;
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.seed = 32;
    let report = Pipeline::run(plan, cfg, arrivals).unwrap();
    let mass: f64 = report
        .windows
        .iter()
        .flat_map(|w| w.groups().unwrap().values())
        .map(|v| v[0])
        .sum();
    assert!(
        (mass - expected as f64).abs() < 1e-6,
        "summed counts {mass} vs per-tuple multiplicities {expected}"
    );
}

#[test]
fn summarize_only_handles_hopping_windows() {
    let plan = hopping_plan("1 second", "500 milliseconds");
    let arrivals = small_domain_workload(33);
    let ideal = ideal_map(&plan, &arrivals).unwrap();
    let mut cfg = PipelineConfig::new(ShedMode::SummarizeOnly);
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    let report = Pipeline::run(plan, cfg, arrivals).unwrap();
    let err = rms_error(&ideal, &report_to_map(&report));
    assert!(err < 1e-6, "{err}");
}
