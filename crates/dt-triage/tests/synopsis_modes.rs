//! End-to-end pipeline runs with every synopsis structure: each kind
//! must survive heavy shedding on the paper's join query, conserve
//! mass, and beat drop-only on RMS error (or at least produce finite,
//! sane estimates).

use dt_engine::CostModel;
use dt_query::{parse_select, Catalog, Planner, QueryPlan};
use dt_synopsis::SynopsisConfig;
use dt_triage::{Pipeline, PipelineConfig, ShedMode};
use dt_types::{DataType, Schema, VDuration, WindowSpec};
use dt_workload::{generate, WorkloadConfig};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    c.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    c
}

fn paper_plan() -> QueryPlan {
    let mut plan = Planner::new(&catalog())
        .plan(
            &parse_select(
                "SELECT a, COUNT(*) as count FROM R,S,T \
                 WHERE R.a = S.b AND S.c = T.d GROUP BY a",
            )
            .unwrap(),
        )
        .unwrap();
    let spec = WindowSpec::new(VDuration::from_millis(500)).unwrap();
    for s in &mut plan.streams {
        s.window = spec;
    }
    plan
}

fn all_synopsis_configs() -> Vec<SynopsisConfig> {
    vec![
        SynopsisConfig::Sparse { cell_width: 10 },
        SynopsisConfig::MHist {
            max_buckets: 16,
            alignment: None,
        },
        SynopsisConfig::MHist {
            max_buckets: 16,
            alignment: Some(10),
        },
        SynopsisConfig::Reservoir {
            capacity: 64,
            seed: 5,
        },
        SynopsisConfig::Wavelet {
            budget: 24,
            domain: 128,
        },
        SynopsisConfig::AdaptiveSparse {
            base_width: 1,
            max_cells: 40,
        },
    ]
}

#[test]
fn adaptive_synopsis_bounds_peak_memory_under_bursts() {
    // Fixed-width fine grid vs adaptive grid on the same burst: the
    // adaptive one must respect its per-synopsis cell budget, at some
    // accuracy cost; the fine grid grows unboundedly with the data.
    let workload = WorkloadConfig::paper_bursty(100.0, 8_000, 29);
    let arrivals = generate(&workload).unwrap();
    let run = |synopsis: SynopsisConfig| {
        let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
        cfg.cost = CostModel::from_capacity(800.0).unwrap();
        cfg.queue_capacity = 40;
        cfg.synopsis = synopsis;
        cfg.seed = 29;
        Pipeline::run(paper_plan(), cfg, arrivals.iter().cloned()).unwrap()
    };
    let fine = run(SynopsisConfig::Sparse { cell_width: 1 });
    let adaptive = run(SynopsisConfig::AdaptiveSparse {
        base_width: 1,
        max_cells: 20,
    });
    assert!(fine.totals.dropped > 0);
    // 6 synopses per window (kept+dropped × 3 streams), each ≤ 20 cells.
    assert!(
        adaptive.totals.peak_synopsis_units <= 6 * 20,
        "budget violated: {}",
        adaptive.totals.peak_synopsis_units
    );
    assert!(
        fine.totals.peak_synopsis_units > adaptive.totals.peak_synopsis_units,
        "fine {} vs adaptive {}",
        fine.totals.peak_synopsis_units,
        adaptive.totals.peak_synopsis_units
    );
}

#[test]
fn every_synopsis_kind_survives_overload_end_to_end() {
    let workload = WorkloadConfig::paper_constant(4_000.0, 6_000, 17);
    let arrivals = generate(&workload).unwrap();
    let ideal = dt_metrics_free_total(&arrivals);
    for cfg in all_synopsis_configs() {
        let mut pcfg = PipelineConfig::new(ShedMode::DataTriage);
        pcfg.cost = CostModel::from_capacity(1_000.0).unwrap();
        pcfg.queue_capacity = 50;
        pcfg.synopsis = cfg;
        pcfg.seed = 17;
        let report = Pipeline::run(paper_plan(), pcfg, arrivals.iter().cloned()).unwrap();
        assert!(report.totals.dropped > 1_000, "{}: must shed", cfg.label());
        // Every window produced merged groups with finite values.
        let mut est_total = 0.0;
        for w in &report.windows {
            for vals in w.groups().unwrap().values() {
                for v in vals {
                    assert!(v.is_finite(), "{}: non-finite estimate", cfg.label());
                    assert!(*v >= 0.0, "{}: negative count {v}", cfg.label());
                    est_total += v;
                }
            }
        }
        // The estimated result volume must be in the right ballpark of
        // the true join volume (within 4x either way — coarse synopses
        // are inexact, but not wild).
        assert!(
            est_total > ideal / 4.0 && est_total < ideal * 4.0,
            "{}: estimated result mass {est_total} vs ideal {ideal}",
            cfg.label()
        );
    }
}

/// True total join-result count across all windows, computed directly
/// (avoiding a dt-metrics dev-dependency cycle).
fn dt_metrics_free_total(arrivals: &[(usize, dt_types::Tuple)]) -> f64 {
    use dt_engine::execute_window;
    use std::collections::BTreeMap;
    let plan = paper_plan();
    let spec = plan.streams[0].window;
    let mut windows: BTreeMap<u64, Vec<Vec<dt_types::Row>>> = BTreeMap::new();
    for (stream, t) in arrivals {
        windows
            .entry(spec.window_of(t.ts))
            .or_insert_with(|| vec![Vec::new(); 3])[*stream]
            .push(t.row.clone());
    }
    let mut total = 0.0;
    for inputs in windows.values() {
        let out = execute_window(&plan, inputs).unwrap();
        for vals in out.groups().unwrap().values() {
            total += vals[0].value;
        }
    }
    total
}

#[test]
fn summarize_only_works_with_every_synopsis_kind() {
    let workload = WorkloadConfig::paper_constant(2_000.0, 3_000, 23);
    let arrivals = generate(&workload).unwrap();
    for cfg in all_synopsis_configs() {
        let mut pcfg = PipelineConfig::new(ShedMode::SummarizeOnly);
        pcfg.synopsis = cfg;
        pcfg.seed = 23;
        let report = Pipeline::run(paper_plan(), pcfg, arrivals.iter().cloned()).unwrap();
        assert_eq!(report.totals.kept, 0, "{}", cfg.label());
        assert!(!report.windows.is_empty(), "{}", cfg.label());
        let mass: f64 = report
            .windows
            .iter()
            .flat_map(|w| w.groups().unwrap().values())
            .map(|v| v[0])
            .sum();
        assert!(mass > 0.0, "{}: empty estimate", cfg.label());
    }
}
