//! Batch vs incremental execution strategies must be observationally
//! identical through the whole pipeline — same merged results under
//! shedding, for joins, self-joins, hopping windows, and shared
//! multi-query runs.

use dt_engine::CostModel;
use dt_metrics::{report_to_map, rms_error};
use dt_query::{parse_select, Catalog, Planner, QueryPlan};
use dt_synopsis::SynopsisConfig;
use dt_triage::{ExecStrategy, Pipeline, PipelineConfig, ShedMode};
use dt_types::{DataType, Schema, Tuple, VDuration, WindowSpec};
use dt_workload::{generate, ArrivalModel, Gaussian, StreamSpec, WorkloadConfig};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    c.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    c
}

fn plan(sql: &str, window_ms: u64) -> QueryPlan {
    let mut plan = Planner::new(&catalog())
        .plan(&parse_select(sql).unwrap())
        .unwrap();
    let spec = WindowSpec::new(VDuration::from_millis(window_ms)).unwrap();
    for s in &mut plan.streams {
        s.window = spec;
    }
    plan
}

fn workload(seed: u64, total: usize) -> Vec<(usize, Tuple)> {
    let dist = Gaussian {
        mean: 20.0,
        std: 8.0,
        lo: 1,
        hi: 40,
    };
    generate(&WorkloadConfig {
        streams: vec![
            StreamSpec::uniform_bursts(1, dist),
            StreamSpec::uniform_bursts(2, dist),
            StreamSpec::uniform_bursts(1, dist),
        ],
        arrival: ArrivalModel::Constant { rate: 3_000.0 },
        total_tuples: total,
        seed,
    })
    .unwrap()
}

fn run(
    plan: QueryPlan,
    arrivals: &[(usize, Tuple)],
    strategy: ExecStrategy,
    mode: ShedMode,
) -> dt_triage::RunReport {
    let mut cfg = PipelineConfig::new(mode);
    cfg.cost = CostModel::from_capacity(1_000.0).unwrap();
    cfg.queue_capacity = 40;
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 5 };
    cfg.seed = 77;
    cfg.execution = strategy;
    Pipeline::run(plan, cfg, arrivals.iter().cloned()).unwrap()
}

#[test]
fn strategies_agree_on_the_paper_query_under_shedding() {
    let sql = "SELECT a, COUNT(*) as n FROM R,S,T \
               WHERE R.a = S.b AND S.c = T.d GROUP BY a";
    let arrivals = workload(1, 6_000);
    let batch = run(
        plan(sql, 500),
        &arrivals,
        ExecStrategy::Batch,
        ShedMode::DataTriage,
    );
    let inc = run(
        plan(sql, 500),
        &arrivals,
        ExecStrategy::Incremental,
        ShedMode::DataTriage,
    );
    assert!(batch.totals.dropped > 0);
    assert_eq!(batch.totals, inc.totals);
    // Same merged results, bit for bit (both paths share the merge and
    // the synopsis arithmetic; only the exact executor differs).
    let err = rms_error(&report_to_map(&batch), &report_to_map(&inc));
    assert!(err < 1e-9, "strategies diverged: {err}");
}

#[test]
fn strategies_agree_on_hopping_windows() {
    let sql = "SELECT a, COUNT(*) as n FROM R GROUP BY a \
               WINDOW R['1 second', '250 milliseconds']";
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mk = || Planner::new(&c).plan(&parse_select(sql).unwrap()).unwrap();
    let dist = Gaussian {
        mean: 5.0,
        std: 2.0,
        lo: 1,
        hi: 10,
    };
    let arrivals = generate(&WorkloadConfig {
        streams: vec![StreamSpec::uniform_bursts(1, dist)],
        arrival: ArrivalModel::Constant { rate: 2_000.0 },
        total_tuples: 3_000,
        seed: 2,
    })
    .unwrap();
    let batch = run(mk(), &arrivals, ExecStrategy::Batch, ShedMode::DataTriage);
    let inc = run(
        mk(),
        &arrivals,
        ExecStrategy::Incremental,
        ShedMode::DataTriage,
    );
    let err = rms_error(&report_to_map(&batch), &report_to_map(&inc));
    assert!(err < 1e-9, "{err}");
    assert_eq!(batch.windows.len(), inc.windows.len());
}

#[test]
fn strategies_agree_on_self_joins() {
    let sql = "SELECT x.a, COUNT(*) FROM R x, R y WHERE x.a = y.a GROUP BY x.a";
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mk = || {
        let mut p = Planner::new(&c).plan(&parse_select(sql).unwrap()).unwrap();
        let spec = WindowSpec::new(VDuration::from_millis(500)).unwrap();
        for s in &mut p.streams {
            s.window = spec;
        }
        p
    };
    let dist = Gaussian {
        mean: 4.0,
        std: 2.0,
        lo: 1,
        hi: 8,
    };
    let arrivals = generate(&WorkloadConfig {
        streams: vec![StreamSpec::uniform_bursts(1, dist)],
        arrival: ArrivalModel::Constant { rate: 1_500.0 },
        total_tuples: 2_000,
        seed: 3,
    })
    .unwrap();
    let batch = run(mk(), &arrivals, ExecStrategy::Batch, ShedMode::DropOnly);
    let inc = run(
        mk(),
        &arrivals,
        ExecStrategy::Incremental,
        ShedMode::DropOnly,
    );
    let err = rms_error(&report_to_map(&batch), &report_to_map(&inc));
    assert!(err < 1e-9, "{err}");
}

#[test]
fn incremental_handles_empty_and_partial_windows() {
    let sql = "SELECT a, COUNT(*) FROM R GROUP BY a";
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mut p = Planner::new(&c).plan(&parse_select(sql).unwrap()).unwrap();
    p.streams[0].window = WindowSpec::new(VDuration::from_millis(100)).unwrap();
    // Two sparse tuples with a long silent gap between them.
    let arrivals = vec![
        (
            0usize,
            Tuple::new(
                dt_types::Row::from_ints(&[1]),
                dt_types::Timestamp::from_micros(50_000),
            ),
        ),
        (
            0usize,
            Tuple::new(
                dt_types::Row::from_ints(&[2]),
                dt_types::Timestamp::from_micros(950_000),
            ),
        ),
    ];
    let batch = run(
        p.clone(),
        &arrivals,
        ExecStrategy::Batch,
        ShedMode::DataTriage,
    );
    let inc = run(
        p,
        &arrivals,
        ExecStrategy::Incremental,
        ShedMode::DataTriage,
    );
    assert_eq!(batch.windows.len(), inc.windows.len());
    let err = rms_error(&report_to_map(&batch), &report_to_map(&inc));
    assert!(err < 1e-9, "{err}");
}
