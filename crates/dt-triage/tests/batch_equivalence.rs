//! Batched ingest must be *bit-identical* to per-tuple ingest.
//!
//! The batch APIs (`TriageQueue::push_batch` / `drain_into`,
//! `Pipeline::offer_batch`) exist purely as a hot-path optimization;
//! the contract is that they make exactly the same shedding decisions
//! against exactly the same RNG stream as their one-at-a-time
//! counterparts. These tests pin that contract under every drop
//! policy, with batch boundaries straddling the overflow point.

use dt_synopsis::SynopsisConfig;
use dt_triage::{DropPolicy, Pipeline, PipelineConfig, ShedMode, TriageQueue};
use dt_types::{DataType, Row, Schema, Timestamp, Tuple};

fn tup(v: i64, us: u64) -> Tuple {
    Tuple::new(Row::from_ints(&[v]), Timestamp::from_micros(us))
}

const POLICIES: [DropPolicy; 4] = [
    DropPolicy::Front,
    DropPolicy::Random,
    DropPolicy::Newest,
    DropPolicy::Synergistic,
];

/// Feed 50 tuples per-tuple, returning (victims, survivors, stats).
fn per_tuple_run(policy: DropPolicy, seed: u64) -> (Vec<Tuple>, Vec<Tuple>, u64, u64) {
    let mut syn = SynopsisConfig::Sparse { cell_width: 1 }.build(1).unwrap();
    syn.insert(&[3]).unwrap();
    let mut q = TriageQueue::new(4, policy, seed).unwrap();
    let mut victims = Vec::new();
    for i in 0..50i64 {
        if let Some(v) = q.push(tup(i % 7, i as u64 + 1), Some(&syn)) {
            victims.push(v);
        }
    }
    let mut survivors = Vec::new();
    while let Some(t) = q.pop() {
        survivors.push(t);
    }
    (victims, survivors, q.total_pushed(), q.total_dropped())
}

/// The same 50 tuples via `push_batch` in uneven chunks (1, 2, 3, …)
/// so batch boundaries land before, on, and after the overflow point,
/// drained via `drain_into`.
fn batched_run(policy: DropPolicy, seed: u64) -> (Vec<Tuple>, Vec<Tuple>, u64, u64) {
    let mut syn = SynopsisConfig::Sparse { cell_width: 1 }.build(1).unwrap();
    syn.insert(&[3]).unwrap();
    let mut q = TriageQueue::new(4, policy, seed).unwrap();
    let mut victims = Vec::new();
    let tuples: Vec<Tuple> = (0..50i64).map(|i| tup(i % 7, i as u64 + 1)).collect();
    let mut rest = &tuples[..];
    let mut chunk = 1;
    while !rest.is_empty() {
        let n = chunk.min(rest.len());
        q.push_batch(rest[..n].iter().cloned(), Some(&syn), &mut victims);
        rest = &rest[n..];
        chunk += 1;
    }
    let mut survivors = Vec::new();
    // Drain in two unequal steps to cover the partial-drain path.
    q.drain_into(3, &mut survivors);
    q.drain_into(usize::MAX, &mut survivors);
    (victims, survivors, q.total_pushed(), q.total_dropped())
}

#[test]
fn queue_batched_ingest_matches_per_tuple_under_every_policy() {
    for policy in POLICIES {
        for seed in [0u64, 7, 42] {
            let a = per_tuple_run(policy, seed);
            let b = batched_run(policy, seed);
            assert_eq!(a, b, "policy {policy:?} seed {seed}");
        }
    }
}

#[test]
fn batch_straddling_the_overflow_boundary_sheds_identically() {
    // Capacity 3: a single 5-tuple batch goes 2 under, 1 at, 2 over.
    for policy in POLICIES {
        let mut q1 = TriageQueue::new(3, policy, 9).unwrap();
        q1.push(tup(0, 1), None);
        let mut v1 = Vec::new();
        for i in 1..6i64 {
            if let Some(v) = q1.push(tup(i, i as u64 + 1), None) {
                v1.push(v);
            }
        }
        let mut q2 = TriageQueue::new(3, policy, 9).unwrap();
        q2.push(tup(0, 1), None);
        let mut v2 = Vec::new();
        let n = q2.push_batch((1..6i64).map(|i| tup(i, i as u64 + 1)), None, &mut v2);
        assert_eq!(n, v2.len());
        assert_eq!(v1, v2, "victims differ under {policy:?}");
        assert_eq!(q1.len(), q2.len());
        let drain = |mut q: TriageQueue| {
            let mut out = Vec::new();
            q.drain_into(usize::MAX, &mut out);
            out
        };
        assert_eq!(drain(q1), drain(q2), "survivors differ under {policy:?}");
    }
}

fn paper_plan() -> dt_query::QueryPlan {
    use dt_query::{parse_select, Catalog, Planner};
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    c.add_stream("S", Schema::from_pairs(&[("b", DataType::Int)]));
    let stmt =
        parse_select("SELECT a, COUNT(*) as n FROM R, S WHERE R.a = S.b GROUP BY a").unwrap();
    Planner::new(&c).plan(&stmt).unwrap()
}

/// End-to-end: a full pipeline run fed via `offer_batch` produces a
/// report that renders identically (Debug is deterministic here: both
/// runs perform the same operation sequence on the same fixed-seed
/// hash maps) to one fed per-tuple.
#[test]
fn pipeline_offer_batch_matches_per_tuple_offers() {
    let arrivals: Vec<(usize, Tuple)> = (0..400i64)
        .map(|i| ((i % 2) as usize, tup(i % 5, (i as u64 + 1) * 500)))
        .collect();
    for policy in POLICIES {
        for mode in ShedMode::all() {
            let mut cfg = PipelineConfig::new(mode);
            cfg.policy = policy;
            cfg.queue_capacity = 4;
            cfg.seed = 11;

            let mut p1 = Pipeline::new(paper_plan(), cfg).unwrap();
            for (s, t) in arrivals.iter().cloned() {
                p1.offer(s, t).unwrap();
            }
            let r1 = p1.finish().unwrap();

            let mut p2 = Pipeline::new(paper_plan(), cfg).unwrap();
            // Per-stream runs of varying length, preserving global
            // timestamp order across the interleave.
            let mut i = 0;
            let mut chunk = 1;
            while i < arrivals.len() {
                let stream = arrivals[i].0;
                let end = arrivals[i..]
                    .iter()
                    .take(chunk)
                    .take_while(|(s, _)| *s == stream)
                    .count()
                    + i;
                p2.offer_batch(stream, arrivals[i..end].iter().map(|(_, t)| t.clone()))
                    .unwrap();
                i = end;
                chunk = chunk % 5 + 1;
            }
            let r2 = p2.finish().unwrap();

            assert_eq!(
                format!("{r1:?}"),
                format!("{r2:?}"),
                "batched run diverged: policy {policy:?} mode {mode:?}"
            );
        }
    }
}
