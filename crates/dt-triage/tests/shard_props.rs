//! The sharded-identity property (DESIGN.md §15): sealing through a
//! worker group of any size yields **bit-identical** windows to the
//! single-worker plane — same rows in the same order, same sequence
//! tags, same synopsis state, same counters — for every mergeable
//! synopsis kind, every group-key distribution (uniform, zipf-skewed,
//! adversarial single-key), and every steal schedule.
//!
//! The argument the test pins: admission decides the kept/dropped
//! multisets *before* routing, rows re-sort on their unique ingest
//! sequence at merge, and each mergeable synopsis's merged state is a
//! function of the tagged point set alone. Hence partitioning — and
//! re-partitioning mid-run via batch stealing — cannot change sealed
//! output.

use dt_synopsis::SynopsisConfig;
use dt_triage::{SealedWindow, ShardedStream, ShedMode};
use dt_types::{Row, Timestamp, Tuple, VDuration, WindowSpec};
use proptest::prelude::*;

fn spec() -> WindowSpec {
    WindowSpec::new(VDuration::from_secs(1)).unwrap()
}

fn tup(v: i64, us: u64) -> Tuple {
    Tuple::new(Row::from_ints(&[v]), Timestamp::from_micros(us))
}

/// The three mergeable synopsis kinds the sharded plane supports.
fn synopsis(idx: usize) -> SynopsisConfig {
    [
        SynopsisConfig::Sparse { cell_width: 5 },
        SynopsisConfig::MHist {
            max_buckets: 8,
            alignment: None,
        },
        SynopsisConfig::Reservoir {
            capacity: 12,
            seed: 7,
        },
    ][idx % 3]
}

/// Map a raw draw to a group key under one of three distributions:
/// uniform over 40 keys, zipf-like (90% of mass on 3 hot keys), or
/// the adversarial constant key that routes everything to one shard.
fn key(dist: usize, raw: u64) -> i64 {
    match dist % 3 {
        0 => (raw % 40) as i64,
        1 => {
            if raw % 10 < 9 {
                (raw % 3) as i64
            } else {
                (raw % 40) as i64
            }
        }
        _ => 42,
    }
}

fn assert_identical(a: &[SealedWindow], b: &[SealedWindow]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "same window range");
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(x.window, y.window);
        prop_assert_eq!(&x.rows, &y.rows, "window {} rows", x.window);
        prop_assert_eq!(&x.seqs, &y.seqs, "window {} seqs", x.window);
        prop_assert_eq!(&x.syn, &y.syn, "window {} synopses", x.window);
        prop_assert_eq!(
            (x.arrived, x.kept, x.dropped, x.degraded),
            (y.arrived, y.kept, y.dropped, y.degraded)
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sealed output through `k` shards equals the single-worker seal,
    /// for any keep/shed interleaving, key distribution, synopsis
    /// kind, and shard count.
    #[test]
    fn sharded_identity(
        shards in 2usize..=4,
        dist in 0usize..3,
        syn in 0usize..3,
        // (keep?, key draw, micros) — lands across ~3 windows.
        ops in prop::collection::vec(
            (any::<bool>(), any::<u64>(), 0u64..3_000_000),
            1..120,
        ),
    ) {
        let cfg = synopsis(syn);
        let mut single = ShardedStream::new(0, 1, ShedMode::DataTriage, cfg, spec(), 1, Some(0));
        let mut group =
            ShardedStream::new(0, 1, ShedMode::DataTriage, cfg, spec(), shards, Some(0));
        for (keep, raw, us) in &ops {
            let t = tup(key(dist, *raw), *us);
            if *keep {
                single.keep(&t).unwrap();
                group.keep(&t).unwrap();
            } else {
                single.shed(&t).unwrap();
                group.shed(&t).unwrap();
            }
        }
        let a = single.seal_all().unwrap();
        let b = group.seal_all().unwrap();
        assert_identical(&a, &b)?;
    }

    /// Stealing cannot change sealed output: folding every kept tuple
    /// into an arbitrary shard (the single-threaded analog of batches
    /// moving between workers mid-run) seals bit-identically to keyed
    /// routing — and to the single worker.
    #[test]
    fn steal_schedule_independence(
        shards in 2usize..=4,
        dist in 0usize..3,
        syn in 0usize..3,
        // (key draw, micros, shard draw) — the shard draw is the
        // "steal schedule": where each tuple actually lands.
        ops in prop::collection::vec(
            (any::<u64>(), 0u64..3_000_000, any::<usize>()),
            1..120,
        ),
    ) {
        let cfg = synopsis(syn);
        let mut routed =
            ShardedStream::new(0, 1, ShedMode::DataTriage, cfg, spec(), shards, Some(0));
        let mut stolen =
            ShardedStream::new(0, 1, ShedMode::DataTriage, cfg, spec(), shards, Some(0));
        for (raw, us, sh) in &ops {
            let t = tup(key(dist, *raw), *us);
            routed.keep(&t).unwrap();
            stolen.keep_on(&t, sh % shards).unwrap();
        }
        let a = routed.seal_all().unwrap();
        let b = stolen.seal_all().unwrap();
        assert_identical(&a, &b)?;
        let total: usize = b.iter().map(|w| w.seqs.len()).sum();
        prop_assert_eq!(total, ops.len(), "every tuple lands exactly once");
    }
}
