//! End-to-end behavior of the adaptive delay controller in the
//! virtual-clock pipeline (DESIGN.md §11).
//!
//! Everything here is deterministic: arrivals are a fixed-interval
//! sequence, the drop RNG is seeded, and the controller's shed ramp
//! uses error diffusion rather than randomness — so the assertions are
//! exact, not statistical.

use dt_query::{parse_select, Catalog, Planner, QueryPlan};
use dt_triage::{DelayConstraint, Pipeline, PipelineConfig, RunReport, ShedMode};
use dt_types::{DataType, Row, Schema, Timestamp, Tuple};

fn plan() -> QueryPlan {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    Planner::new(&catalog)
        .plan(&parse_select("SELECT a, COUNT(*) FROM R GROUP BY a").unwrap())
        .unwrap()
}

/// 2× overload: one tuple every 500 µs against a ~1 ms/tuple engine.
fn arrivals(n: u64) -> impl Iterator<Item = (usize, Tuple)> {
    (0..n).map(|i| {
        (
            0,
            Tuple::new(
                Row::from_ints(&[(i % 10) as i64]),
                Timestamp::from_micros(500 * (i + 1)),
            ),
        )
    })
}

fn run(delay_ms: Option<u64>) -> RunReport {
    let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
    cfg.seed = 42;
    cfg.delay = delay_ms.map(|ms| DelayConstraint::from_millis(ms).unwrap());
    Pipeline::run(plan(), cfg, arrivals(6_000)).unwrap()
}

/// Field-by-field equality of two reports, including virtual emission
/// times and every merged group — "bit-identical" in the sense that
/// matters to a regression.
fn assert_reports_identical(a: &RunReport, b: &RunReport) {
    assert_eq!(a.totals, b.totals);
    assert_eq!(a.windows.len(), b.windows.len());
    for (x, y) in a.windows.iter().zip(&b.windows) {
        assert_eq!(x.window, y.window);
        assert_eq!(x.emitted_at, y.emitted_at, "window {}", x.window);
        assert_eq!(
            (x.arrived, x.kept, x.dropped, x.degraded),
            (y.arrived, y.kept, y.dropped, y.degraded),
            "window {}",
            x.window
        );
        assert_eq!(x.groups(), y.groups(), "window {}", x.window);
    }
}

#[test]
fn generous_constraint_is_bit_identical_to_no_constraint() {
    // A one-minute constraint derives a threshold far above the
    // 100-tuple queue capacity: the controller's verdict is Keep on
    // every offer, it consumes no randomness, and the run must replay
    // the uncontrolled pipeline's decisions exactly.
    let baseline = run(None);
    let generous = run(Some(60_000));
    assert!(baseline.totals.dropped > 0, "the workload must overload");
    assert_reports_identical(&baseline, &generous);
}

#[test]
fn tightening_the_constraint_monotonically_increases_drops() {
    // Every dropped tuple is folded into the window's dropped synopsis
    // in DataTriage mode, so `totals.dropped` counts exactly the
    // dropped-to-synopsis tuples.
    let sweep = [None, Some(80), Some(40), Some(10)];
    let dropped: Vec<u64> = sweep.iter().map(|&d| run(d).totals.dropped).collect();
    for pair in dropped.windows(2) {
        assert!(
            pair[1] >= pair[0],
            "tightening the constraint reduced shedding: {dropped:?}"
        );
    }
    // And the tight end really bites.
    assert!(dropped[3] > dropped[0], "{dropped:?}");
}

#[test]
fn constrained_runs_never_miss_a_deadline_by_more_than_one_tick() {
    for ms in [80u64, 40, 10] {
        let report = run(Some(ms));
        let cfg = PipelineConfig::new(ShedMode::DataTriage);
        // One engine tick: the busy time of the tuple in service when
        // the window closes (service + kept-synopsis fold).
        let tick_us = (cfg.cost.service_time + cfg.cost.synopsis_insert_time).micros();
        let deadline_us = ms * 1_000 + tick_us;
        for w in &report.windows {
            let lat = w.latency(report.window_spec).micros();
            assert!(
                lat <= deadline_us,
                "constraint {ms} ms: window {} sealed {lat} µs late (deadline {deadline_us} µs)",
                w.window
            );
        }
        // The bound is not vacuous: results actually arrive, and the
        // estimates stay usable (every window still reports groups).
        assert!(!report.windows.is_empty());
        assert!(report.windows.iter().all(|w| w.groups().is_some()));
    }
}
