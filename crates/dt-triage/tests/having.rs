//! HAVING-clause semantics end to end: the filter applies to the
//! *merged* aggregate values, so estimated contributions from the
//! shadow query count toward the threshold exactly as real tuples
//! would have.

use dt_engine::CostModel;
use dt_metrics::{ideal_map, report_to_map, rms_error};
use dt_query::{parse_select, Catalog, Planner, QueryPlan};
use dt_synopsis::SynopsisConfig;
use dt_triage::{Pipeline, PipelineConfig, ShedMode, WindowPayload};
use dt_types::{DataType, Row, Schema, Timestamp, Tuple, VDuration, WindowSpec};
use dt_workload::{generate, ArrivalModel, Gaussian, StreamSpec, WorkloadConfig};

fn plan(sql: &str) -> QueryPlan {
    let mut c = Catalog::new();
    c.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    let mut plan = Planner::new(&c).plan(&parse_select(sql).unwrap()).unwrap();
    let spec = WindowSpec::new(VDuration::from_millis(500)).unwrap();
    for s in &mut plan.streams {
        s.window = spec;
    }
    plan
}

fn tup(vals: &[i64], us: u64) -> Tuple {
    Tuple::new(Row::from_ints(vals), Timestamp::from_micros(us))
}

#[test]
fn having_parses_and_compiles() {
    let p = plan("SELECT b, COUNT(*) FROM S GROUP BY b HAVING COUNT(*) > 3");
    assert_eq!(p.having.len(), 1);
    // Bound to the selected aggregate, no hidden one needed.
    assert_eq!(p.aggregates.len(), 1);
    assert_eq!(p.having[0].agg_index, 0);

    // An unselected aggregate gets a hidden slot.
    let p = plan("SELECT b, COUNT(*) FROM S GROUP BY b HAVING SUM(c) >= 100");
    assert_eq!(p.aggregates.len(), 2);
    assert_eq!(p.having[0].agg_index, 1);
    assert!(p.aggregates[1].name.starts_with("__having"));
}

#[test]
fn having_without_grouping_rejected() {
    let mut c = Catalog::new();
    c.add_stream("S", Schema::from_pairs(&[("b", DataType::Int)]));
    let stmt = parse_select("SELECT b FROM S HAVING COUNT(*) > 1").unwrap();
    assert!(Planner::new(&c).plan(&stmt).is_err());
}

#[test]
fn having_filters_small_groups() {
    let p = plan("SELECT b, COUNT(*) as n FROM S GROUP BY b HAVING COUNT(*) >= 3");
    let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    // b=1 x3 (passes), b=2 x1 (filtered).
    let arrivals = vec![
        (0usize, tup(&[1, 10], 1_000)),
        (0, tup(&[1, 11], 2_000)),
        (0, tup(&[2, 12], 3_000)),
        (0, tup(&[1, 13], 4_000)),
    ];
    let report = Pipeline::run(p, cfg, arrivals).unwrap();
    let g = report.windows[0].groups().unwrap();
    assert_eq!(g.len(), 1);
    assert_eq!(g[&Row::from_ints(&[1])][0], 3.0);
}

#[test]
fn estimated_mass_counts_toward_having() {
    // Engine so slow that only 1 tuple of the group is processed
    // exactly; the other 4 are shed. HAVING COUNT(*) >= 4 passes only
    // because the merged count includes the estimate.
    let p = plan("SELECT b, COUNT(*) as n FROM S GROUP BY b HAVING COUNT(*) >= 4");
    let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
    cfg.cost = CostModel::from_capacity(2.0).unwrap();
    cfg.queue_capacity = 1;
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    let arrivals: Vec<(usize, Tuple)> = (0..5)
        .map(|i| (0usize, tup(&[7, 10 + i], 1_000 * (i as u64 + 1))))
        .collect();
    let report = Pipeline::run(p.clone(), cfg, arrivals.clone()).unwrap();
    assert!(report.totals.dropped >= 3, "{:?}", report.totals);
    let g = report.windows[0].groups().unwrap();
    assert_eq!(g.len(), 1, "merged count must clear the threshold");
    assert!((g[&Row::from_ints(&[7])][0] - 5.0).abs() < 1e-6);

    // Drop-only on the same data loses the group entirely.
    let mut cfg = PipelineConfig::new(ShedMode::DropOnly);
    cfg.cost = CostModel::from_capacity(2.0).unwrap();
    cfg.queue_capacity = 1;
    let report = Pipeline::run(p, cfg, arrivals).unwrap();
    assert!(
        report
            .windows
            .iter()
            .all(|w| w.groups().unwrap().is_empty()),
        "drop-only must not clear HAVING with only {} kept tuples",
        report.totals.kept
    );
}

#[test]
fn having_exactness_with_lossless_synopses() {
    // The pipeline-level rewrite theorem extends through HAVING: with
    // width-1 synopses, merged-then-filtered results equal the ideal
    // filtered results under heavy shedding.
    let p = plan("SELECT b, COUNT(*) as n, SUM(c) as s FROM S GROUP BY b HAVING COUNT(*) > 5");
    let dist = Gaussian {
        mean: 5.0,
        std: 2.0,
        lo: 1,
        hi: 10,
    };
    let arrivals = generate(&WorkloadConfig {
        streams: vec![StreamSpec::uniform_bursts(2, dist)],
        arrival: ArrivalModel::Constant { rate: 2_000.0 },
        total_tuples: 4_000,
        seed: 41,
    })
    .unwrap();
    let ideal = ideal_map(&p, &arrivals).unwrap();
    assert!(!ideal.is_empty());
    let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
    cfg.cost = CostModel::from_capacity(400.0).unwrap();
    cfg.queue_capacity = 25;
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.seed = 41;
    let report = Pipeline::run(p, cfg, arrivals.iter().cloned()).unwrap();
    assert!(report.totals.dropped > 500);
    let err = rms_error(&ideal, &report_to_map(&report));
    assert!(err < 1e-6, "{err}");
    // Sanity: the HAVING actually filtered something somewhere.
    let emitted: usize = report
        .windows
        .iter()
        .map(|w| w.groups().unwrap().len())
        .sum();
    assert!(emitted > 0);
    match &report.windows[0].payload {
        WindowPayload::Groups(_) => {}
        other => panic!("{other:?}"),
    }
}
