//! Model-based property tests for the triage queue and conservation
//! properties of the pipeline.

use dt_engine::CostModel;
use dt_query::{parse_select, Catalog, Planner};
use dt_synopsis::SynopsisConfig;
use dt_triage::{DropPolicy, Pipeline, PipelineConfig, ShedMode, TriageQueue};
use dt_types::{DataType, Row, Schema, Timestamp, Tuple};
use proptest::prelude::*;

fn tup(v: i64, us: u64) -> Tuple {
    Tuple::new(Row::from_ints(&[v]), Timestamp::from_micros(us))
}

fn arb_policy() -> impl Strategy<Value = DropPolicy> {
    prop_oneof![
        Just(DropPolicy::Random),
        Just(DropPolicy::Front),
        Just(DropPolicy::Newest),
        Just(DropPolicy::Synergistic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Queue invariants under an arbitrary push/pop interleaving, for
    /// every policy:
    /// * length never exceeds capacity;
    /// * a push returns a victim iff the queue was full;
    /// * buffered tuples stay in arrival order;
    /// * conservation: pushed = victims + popped + still-buffered.
    #[test]
    fn queue_invariants(
        capacity in 1usize..12,
        policy in arb_policy(),
        ops in prop::collection::vec(any::<bool>(), 0..200),
        seed in any::<u64>(),
    ) {
        let mut q = TriageQueue::new(capacity, policy, seed).unwrap();
        let mut pushed = 0u64;
        let mut victims = 0u64;
        let mut popped = 0u64;
        let mut clock = 0u64;
        for op in ops {
            if op {
                clock += 1;
                let was_full = q.len() == capacity;
                let victim = q.push(tup((clock % 7) as i64, clock), None);
                pushed += 1;
                prop_assert_eq!(victim.is_some(), was_full);
                if victim.is_some() {
                    victims += 1;
                }
            } else if q.pop().is_some() {
                popped += 1;
            }
            prop_assert!(q.len() <= capacity);
        }
        prop_assert_eq!(pushed, victims + popped + q.len() as u64);
        prop_assert_eq!(q.total_pushed(), pushed);
        prop_assert_eq!(q.total_dropped(), victims);
        // Drain: remaining tuples are time-ordered.
        let mut last = Timestamp::ZERO;
        while let Some(t) = q.pop() {
            prop_assert!(t.ts >= last);
            last = t.ts;
        }
    }

    /// Pipeline conservation under arbitrary load: arrived = kept +
    /// dropped, window stats sum to totals, and the merged COUNT mass
    /// of a width-1 single-stream run equals the number of arrivals —
    /// for every policy and any capacity/queue configuration.
    #[test]
    fn pipeline_conserves_tuples(
        policy in arb_policy(),
        queue_capacity in 1usize..40,
        capacity_tps in 10f64..2000.0,
        n in 1usize..300,
        seed in any::<u64>(),
    ) {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        let plan = Planner::new(&c)
            .plan(&parse_select("SELECT a, COUNT(*) FROM R GROUP BY a").unwrap())
            .unwrap();
        let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
        cfg.policy = policy;
        cfg.queue_capacity = queue_capacity;
        cfg.cost = CostModel::from_capacity(capacity_tps).unwrap();
        cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
        cfg.seed = seed;
        let arrivals: Vec<(usize, Tuple)> = (0..n)
            .map(|i| (0usize, tup((i % 9) as i64, 500 * (i as u64 + 1))))
            .collect();
        let report = Pipeline::run(plan, cfg, arrivals).unwrap();
        prop_assert_eq!(report.totals.arrived, n as u64);
        prop_assert_eq!(
            report.totals.kept + report.totals.dropped,
            report.totals.arrived
        );
        let stat_sum: u64 = report.windows.iter().map(|w| w.arrived).sum();
        prop_assert_eq!(stat_sum, n as u64);
        // Lossless synopses: merged counts recover every arrival.
        let mass: f64 = report
            .windows
            .iter()
            .flat_map(|w| w.groups().unwrap().values())
            .map(|v| v[0])
            .sum();
        prop_assert!((mass - n as f64).abs() < 1e-6, "mass {mass} != {n}");
    }

    /// Summarize-only conserves mass through the synopsis path alone.
    #[test]
    fn summarize_only_conserves_mass(
        n in 1usize..300,
        seed in any::<u64>(),
    ) {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        let plan = Planner::new(&c)
            .plan(&parse_select("SELECT a, COUNT(*) FROM R GROUP BY a").unwrap())
            .unwrap();
        let mut cfg = PipelineConfig::new(ShedMode::SummarizeOnly);
        cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
        cfg.seed = seed;
        let arrivals: Vec<(usize, Tuple)> = (0..n)
            .map(|i| (0usize, tup((i % 5) as i64, 700 * (i as u64 + 1))))
            .collect();
        let report = Pipeline::run(plan, cfg, arrivals).unwrap();
        prop_assert_eq!(report.totals.kept, 0);
        let mass: f64 = report
            .windows
            .iter()
            .flat_map(|w| w.groups().unwrap().values())
            .map(|v| v[0])
            .sum();
        prop_assert!((mass - n as f64).abs() < 1e-6);
    }
}
