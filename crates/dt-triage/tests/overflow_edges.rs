//! Overflow edge cases for the triage queue and drop policies:
//! bursts landing exactly at capacity, zero-capacity configurations,
//! and tuples offered while (or after) their window seals.

use dt_query::{parse_select, Catalog, Planner};
use dt_synopsis::SynopsisConfig;
use dt_triage::{DropPolicy, Pipeline, PipelineConfig, ShedMode, StreamTriage, TriageQueue};
use dt_types::{DataType, Row, Schema, Timestamp, Tuple, VDuration, WindowSpec};

fn tup(v: i64, us: u64) -> Tuple {
    Tuple::new(Row::from_ints(&[v]), Timestamp::from_micros(us))
}

#[test]
fn burst_exactly_at_capacity_sheds_nothing() {
    for policy in DropPolicy::all() {
        let mut q = TriageQueue::new(8, policy, 7).unwrap();
        for i in 0..8 {
            assert!(
                q.push(tup(i, i as u64 * 10), None).is_none(),
                "{policy:?}: tuple {i} of a capacity-sized burst must not shed"
            );
        }
        assert_eq!(q.len(), 8);
        assert_eq!(q.total_dropped(), 0, "{policy:?}");
        // One past capacity sheds exactly one victim, never more.
        assert!(q.push(tup(99, 1_000), None).is_some(), "{policy:?}");
        assert_eq!(q.len(), 8, "{policy:?}: queue stays at capacity");
        assert_eq!(q.total_dropped(), 1, "{policy:?}");
        assert_eq!(q.total_pushed(), 9, "{policy:?}");
    }
}

#[test]
fn newest_policy_keeps_queue_contents_at_the_boundary() {
    let mut q = TriageQueue::new(2, DropPolicy::Newest, 0).unwrap();
    q.push(tup(1, 10), None);
    q.push(tup(2, 20), None);
    let victim = q.push(tup(3, 30), None).expect("overflow");
    // The incoming tuple is the victim; the queue is untouched.
    assert_eq!(victim.row, Row::from_ints(&[3]));
    assert_eq!(q.pop().unwrap().row, Row::from_ints(&[1]));
    assert_eq!(q.pop().unwrap().row, Row::from_ints(&[2]));
    assert!(q.pop().is_none());
}

#[test]
fn zero_capacity_is_rejected_at_every_layer() {
    assert!(TriageQueue::new(0, DropPolicy::Random, 0).is_err());

    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let plan = Planner::new(&catalog)
        .plan(&parse_select("SELECT a, COUNT(*) FROM R GROUP BY a").unwrap())
        .unwrap();
    let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
    cfg.queue_capacity = 0;
    assert!(
        Pipeline::new(plan, cfg).is_err(),
        "a pipeline must refuse a zero-capacity triage queue"
    );
}

#[test]
fn offers_during_and_after_a_seal_are_late_not_lost() {
    let spec = WindowSpec::new(VDuration::from_secs(1)).unwrap();
    let mut t = StreamTriage::new(
        0,
        1,
        ShedMode::DataTriage,
        SynopsisConfig::Sparse { cell_width: 1 },
        spec,
    );
    // Window 0 gets one kept and one shed tuple, then seals.
    assert!(t.keep(&tup(1, 100_000)).unwrap());
    assert!(t.shed(&tup(2, 200_000)).unwrap());
    let sealed = t.seal_through(0).unwrap();
    assert_eq!(sealed.len(), 1);
    assert_eq!(sealed[0].kept, 1);
    assert_eq!(sealed[0].dropped, 1);

    // A straggler for the sealed window is counted late and never
    // folded; the seal's results are immutable.
    assert!(!t.keep(&tup(3, 300_000)).unwrap());
    assert!(!t.shed(&tup(4, 400_000)).unwrap());
    assert_eq!(t.late(), 2);

    // Concurrent-looking interleave: a tuple for the *next* window
    // offered between seals lands in that window.
    assert!(t.keep(&tup(5, 1_500_000)).unwrap());
    let sealed = t.seal_all().unwrap();
    assert_eq!(sealed.len(), 1);
    assert_eq!(sealed[0].window, 1);
    assert_eq!(sealed[0].kept, 1);

    // Sealing the same range again emits nothing (idempotent).
    assert!(t.seal_through(1).unwrap().is_empty());
}

#[test]
fn pipeline_burst_at_exact_capacity_drops_nothing() {
    // End-to-end: a window whose arrivals exactly fill the queue must
    // survive intact even with a stopped engine (all drains happen at
    // window close).
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let plan = Planner::new(&catalog)
        .plan(&parse_select("SELECT a, COUNT(*) FROM R GROUP BY a").unwrap())
        .unwrap();
    let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
    cfg.queue_capacity = 16;
    let mut p = Pipeline::new(plan, cfg).unwrap();
    // 16 tuples at the same instant: a burst the queue exactly holds.
    for i in 0..16 {
        p.offer(0, tup(i % 4, 1_000)).unwrap();
    }
    let report = p.finish().unwrap();
    assert_eq!(report.totals.arrived, 16);
    assert_eq!(report.totals.dropped, 0, "burst at capacity sheds nothing");
    assert_eq!(report.totals.kept, 16);
}
