//! Property tests for the triage overflow invariants.
//!
//! The paper's accounting identity — every tuple offered to a triage
//! queue is either *kept* (reaches exact processing) or *dropped*
//! (reaches the dropped synopsis), never both, never neither — must
//! hold for **any** interleaving of `push_batch`/`drain_into` calls,
//! any capacity, and any drop policy. Likewise at the [`StreamTriage`]
//! layer: the per-window counters and the kept/dropped synopsis masses
//! must exactly partition the arrivals.

use dt_synopsis::SynopsisConfig;
use dt_triage::{DropPolicy, ShedMode, StreamTriage, TriageQueue};
use dt_types::{Row, Timestamp, Tuple, VDuration, WindowSpec};
use proptest::prelude::*;

fn tup(v: i64, us: u64) -> Tuple {
    Tuple::new(Row::from_ints(&[v]), Timestamp::from_micros(us))
}

fn policy(idx: usize) -> DropPolicy {
    [
        DropPolicy::Newest,
        DropPolicy::Front,
        DropPolicy::Random,
        DropPolicy::Synergistic,
    ][idx % 4]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of batched offers and partial drains conserves
    /// tuples: `kept + dropped == offered`, and the kept/dropped
    /// synopses hold exactly those masses.
    #[test]
    fn queue_interleavings_conserve_tuples(
        capacity in 1usize..24,
        pol in 0usize..4,
        seed in any::<u64>(),
        // (is_push, size, value-base) per step. Drains use `size` as
        // their `max`; pushes offer `size` tuples.
        ops in prop::collection::vec((any::<bool>(), 0usize..12, 0i64..40), 1..32),
    ) {
        let mut q = TriageQueue::new(capacity, policy(pol), seed).unwrap();
        let syn_cfg = SynopsisConfig::default_sparse();
        let mut kept_syn = syn_cfg.build(1).unwrap();
        let mut dropped_syn = syn_cfg.build(1).unwrap();
        let mut victims: Vec<Tuple> = Vec::new();
        let mut drained: Vec<Tuple> = Vec::new();
        let mut offered: u64 = 0;
        let mut ts: u64 = 0;
        let mut kept_count: u64 = 0;
        let mut dropped_count: u64 = 0;
        for (is_push, size, base) in ops {
            if is_push {
                let batch: Vec<Tuple> = (0..size)
                    .map(|k| {
                        ts += 1;
                        tup(base + k as i64, ts)
                    })
                    .collect();
                offered += batch.len() as u64;
                victims.clear();
                q.push_batch(batch, Some(&dropped_syn), &mut victims);
                for v in &victims {
                    dropped_count += 1;
                    dropped_syn.insert(&[v.row.values()[0].as_i64().unwrap()]).unwrap();
                }
            } else {
                drained.clear();
                q.drain_into(size, &mut drained);
                for t in &drained {
                    kept_count += 1;
                    kept_syn.insert(&[t.row.values()[0].as_i64().unwrap()]).unwrap();
                }
            }
            // The live queue never exceeds its bound.
            prop_assert!(q.len() <= capacity);
        }
        // Final full drain: whatever is still buffered is kept.
        drained.clear();
        q.drain_into(usize::MAX, &mut drained);
        for t in &drained {
            kept_count += 1;
            kept_syn.insert(&[t.row.values()[0].as_i64().unwrap()]).unwrap();
        }
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.total_pushed(), offered);
        prop_assert_eq!(q.total_dropped(), dropped_count);
        prop_assert_eq!(kept_count + dropped_count, offered);
        // Synopsis tuple mass equals the partition exactly (sparse
        // grids count unit masses, so the comparison is exact).
        prop_assert_eq!(kept_syn.total_mass(), kept_count as f64);
        prop_assert_eq!(dropped_syn.total_mass(), dropped_count as f64);
    }

    /// Folding any keep/shed interleaving into a [`StreamTriage`] and
    /// sealing everything partitions arrivals per window: `arrived ==
    /// kept + dropped`, the buffered rows are exactly the kept tuples,
    /// and each window's synopsis pair carries exactly the kept and
    /// dropped masses.
    #[test]
    fn stream_triage_windows_partition_arrivals(
        // (keep?, value, micros-offset) — timestamps land across ~4
        // one-second windows in arbitrary order.
        tuples in prop::collection::vec(
            (any::<bool>(), 0i64..30, 0u64..4_000_000),
            1..80,
        ),
    ) {
        let spec = WindowSpec::new(VDuration::from_secs(1)).unwrap();
        let mut triage = StreamTriage::new(
            0,
            1,
            ShedMode::DataTriage,
            SynopsisConfig::default_sparse(),
            spec,
        );
        let mut want_kept: u64 = 0;
        let mut want_dropped: u64 = 0;
        for (keep, v, us) in &tuples {
            let t = tup(*v, *us);
            if *keep {
                prop_assert!(triage.keep(&t).unwrap(), "nothing sealed yet, never late");
                want_kept += 1;
            } else {
                prop_assert!(triage.shed(&t).unwrap());
                want_dropped += 1;
            }
        }
        let windows = triage.seal_all().unwrap();
        let (mut kept, mut dropped, mut arrived, mut rows) = (0u64, 0u64, 0u64, 0u64);
        let (mut kept_mass, mut dropped_mass) = (0.0f64, 0.0f64);
        for w in &windows {
            prop_assert_eq!(w.arrived, w.kept + w.dropped);
            prop_assert_eq!(w.rows.len() as u64, w.kept);
            prop_assert!(!w.degraded, "no faults here");
            let syn = w.syn.as_ref().expect("DataTriage seals synopses");
            prop_assert_eq!(syn.kept.total_mass(), w.kept as f64);
            prop_assert_eq!(syn.dropped.total_mass(), w.dropped as f64);
            kept += w.kept;
            dropped += w.dropped;
            arrived += w.arrived;
            rows += w.rows.len() as u64;
            kept_mass += syn.kept.total_mass();
            dropped_mass += syn.dropped.total_mass();
        }
        prop_assert_eq!(kept, want_kept);
        prop_assert_eq!(dropped, want_dropped);
        prop_assert_eq!(arrived, want_kept + want_dropped);
        prop_assert_eq!(rows, want_kept);
        prop_assert_eq!(kept_mass, want_kept as f64);
        prop_assert_eq!(dropped_mass, want_dropped as f64);
    }
}
