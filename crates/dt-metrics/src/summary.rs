//! Serializable run summaries.
//!
//! A [`dt_triage::RunReport`] is the full per-window record; a
//! [`RunSummary`] is its shippable digest — totals plus a latency
//! summary — with a JSON form so servers (`dt-server`'s final report)
//! and offline tooling exchange results without dragging window
//! payloads across the wire. `from_json` is the ingestion side:
//! metrics code can load a saved summary and compare runs without
//! re-executing anything.

use crate::rms::latencies;
use crate::stats::LatencyStats;
use dt_triage::RunReport;
use dt_types::{json, DtError, DtResult, Json, ToJson};

/// The digest of one pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Tuples offered to the pipeline.
    pub arrived: u64,
    /// Tuples processed exactly.
    pub kept: u64,
    /// Tuples shed.
    pub dropped: u64,
    /// Peak combined memory footprint of one window's sealed
    /// synopses, in synopsis units.
    pub peak_synopsis_units: u64,
    /// Windows emitted.
    pub windows: u64,
    /// Result-latency summary (seconds past each window's close).
    pub latency: LatencyStats,
    /// Final observability snapshot in the [`crate::obs`] JSON shape,
    /// when the run was instrumented (`None` otherwise).
    pub obs: Option<Json>,
}

impl RunSummary {
    /// Digest a full report.
    pub fn from_report(report: &RunReport) -> Self {
        RunSummary {
            arrived: report.totals.arrived,
            kept: report.totals.kept,
            dropped: report.totals.dropped,
            peak_synopsis_units: report.totals.peak_synopsis_units as u64,
            windows: report.windows.len() as u64,
            latency: LatencyStats::from_samples(&latencies(report)),
            obs: None,
        }
    }

    /// Attach a frozen observability snapshot to the digest.
    pub fn with_obs(mut self, snap: &dt_obs::Snapshot) -> Self {
        self.obs = Some(crate::obs::obs_to_json(snap));
        self
    }

    /// Parse a summary previously rendered with [`ToJson`].
    pub fn from_json(json: &Json) -> DtResult<Self> {
        let field = |key: &str| -> DtResult<&Json> {
            json.get(key)
                .ok_or_else(|| DtError::config(format!("run summary missing field '{key}'")))
        };
        let int = |key: &str| -> DtResult<u64> {
            field(key)?
                .as_i64()
                .filter(|&v| v >= 0)
                .map(|v| v as u64)
                .ok_or_else(|| {
                    DtError::config(format!("run summary field '{key}' must be a count"))
                })
        };
        let lat = field("latency")?;
        let lat_field = |key: &str| -> DtResult<f64> {
            lat.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| DtError::config(format!("run summary latency missing '{key}'")))
        };
        Ok(RunSummary {
            arrived: int("arrived")?,
            kept: int("kept")?,
            dropped: int("dropped")?,
            peak_synopsis_units: int("peak_synopsis_units")?,
            windows: int("windows")?,
            latency: LatencyStats {
                p50: lat_field("p50")?,
                p95: lat_field("p95")?,
                max: lat_field("max")?,
            },
            obs: json
                .get("obs")
                .filter(|j| !matches!(j, Json::Null))
                .cloned(),
        })
    }

    /// Fraction of offered tuples that were shed (0 for an empty run).
    pub fn shed_fraction(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.dropped as f64 / self.arrived as f64
        }
    }
}

impl ToJson for RunSummary {
    fn to_json(&self) -> Json {
        json::obj(vec![
            ("arrived", self.arrived.to_json()),
            ("kept", self.kept.to_json()),
            ("dropped", self.dropped.to_json()),
            ("peak_synopsis_units", self.peak_synopsis_units.to_json()),
            ("windows", self.windows.to_json()),
            (
                "latency",
                json::obj(vec![
                    ("p50", self.latency.p50.to_json()),
                    ("p95", self.latency.p95.to_json()),
                    ("max", self.latency.max.to_json()),
                ]),
            ),
            ("obs", self.obs.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_query::{parse_select, Catalog, Planner};
    use dt_triage::{Pipeline, PipelineConfig, ShedMode};
    use dt_types::{DataType, Row, Schema, Timestamp, Tuple};

    fn run_report() -> RunReport {
        let mut catalog = Catalog::new();
        catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        let stmt = parse_select("SELECT a, COUNT(*) FROM R GROUP BY a").unwrap();
        let plan = Planner::new(&catalog).plan(&stmt).unwrap();
        let mut p = Pipeline::new(plan, PipelineConfig::new(ShedMode::DataTriage)).unwrap();
        for i in 0..5 {
            p.offer(
                0,
                Tuple::new(
                    Row::from_ints(&[i % 2]),
                    Timestamp::from_micros(i as u64 * 1_000),
                ),
            )
            .unwrap();
        }
        p.finish().unwrap()
    }

    #[test]
    fn summary_roundtrips_through_json() {
        let report = run_report();
        let summary = RunSummary::from_report(&report);
        assert_eq!(summary.arrived, 5);
        assert!(summary.windows >= 1);
        let json = summary.to_json().render();
        let back = RunSummary::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, summary);
    }

    #[test]
    fn obs_snapshot_rides_the_summary_roundtrip() {
        let reg = dt_obs::MetricsRegistry::new();
        reg.counter("n_total", "n", &[]).add(2);
        let summary = RunSummary::from_report(&run_report()).with_obs(&reg.snapshot());
        let json = summary.to_json().render();
        let back = RunSummary::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, summary);
        assert!(back.obs.is_some());
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let json = Json::parse(r#"{"arrived":1}"#).unwrap();
        assert!(RunSummary::from_json(&json).is_err());
    }

    #[test]
    fn shed_fraction_handles_empty_runs() {
        let mut s = RunSummary::from_report(&run_report());
        assert_eq!(s.shed_fraction(), 0.0);
        s.dropped = 1;
        s.arrived = 4;
        assert!((s.shed_fraction() - 0.25).abs() < 1e-12);
    }
}
