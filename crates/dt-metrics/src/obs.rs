//! Observability snapshots as JSON.
//!
//! [`dt_obs::Snapshot`] is the frozen view of every registered metric;
//! this module gives it a JSON form so the final snapshot a server (or
//! an instrumented simulation) takes at drain time travels inside the
//! same report as the [`crate::RunSummary`] — nothing observable is
//! lost between the last scrape and shutdown.

use dt_obs::{HistogramSnapshot, MetricSnapshot, MetricValue, Snapshot};
use dt_types::{json, Json, ToJson};

/// Serialize a frozen observability snapshot.
///
/// Shape: `{"metrics": [{name, labels, kind, value}…], "spans":
/// [{name, start_us, dur_us}…]}` — counters and gauges carry a scalar
/// `value`, histograms a digest object.
pub fn obs_to_json(snap: &Snapshot) -> Json {
    let metrics: Vec<Json> = snap.metrics.iter().map(metric_to_json).collect();
    let spans: Vec<Json> = snap
        .spans
        .iter()
        .map(|s| {
            json::obj(vec![
                ("name", s.name.to_json()),
                ("start_us", s.start_us.to_json()),
                ("dur_us", s.dur_us.to_json()),
            ])
        })
        .collect();
    json::obj(vec![
        ("metrics", Json::Arr(metrics)),
        ("spans", Json::Arr(spans)),
    ])
}

fn metric_to_json(m: &MetricSnapshot) -> Json {
    let labels = Json::Obj(
        m.labels
            .iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect(),
    );
    let (kind, value) = match &m.value {
        MetricValue::Counter(v) => ("counter", v.to_json()),
        MetricValue::Gauge(v) => ("gauge", v.to_json()),
        MetricValue::Histogram(h) => ("histogram", histogram_to_json(h)),
    };
    json::obj(vec![
        ("name", m.name.to_json()),
        ("labels", labels),
        ("kind", kind.to_json()),
        ("value", value),
    ])
}

fn histogram_to_json(h: &HistogramSnapshot) -> Json {
    json::obj(vec![
        ("count", h.count.to_json()),
        ("sum", h.sum.to_json()),
        ("max", h.max.to_json()),
        ("p50", h.p50.to_json()),
        ("p90", h.p90.to_json()),
        ("p99", h.p99.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_obs::MetricsRegistry;

    #[test]
    fn snapshot_serializes_every_kind() {
        let reg = MetricsRegistry::new();
        reg.counter("n_total", "n", &[("stream", "R")]).add(3);
        reg.gauge("depth", "d", &[]).set(-4);
        let h = reg.histogram("lat_us", "l", &[]);
        h.observe(10);
        h.observe(90);
        let id = reg.span_id("merge");
        reg.span(id).finish();

        let j = obs_to_json(&reg.snapshot());
        let metrics = j.get("metrics").and_then(Json::as_arr).unwrap();
        assert_eq!(metrics.len(), 3);
        assert_eq!(
            metrics[0].get("kind").and_then(Json::as_str),
            Some("counter")
        );
        assert_eq!(metrics[0].get("value").and_then(Json::as_i64), Some(3));
        assert_eq!(
            metrics[0]
                .get("labels")
                .unwrap()
                .get("stream")
                .and_then(Json::as_str),
            Some("R")
        );
        assert_eq!(metrics[1].get("value").and_then(Json::as_i64), Some(-4));
        let hist = metrics[2].get("value").unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_i64), Some(2));
        assert_eq!(hist.get("sum").and_then(Json::as_i64), Some(100));
        let spans = j.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans[0].get("name").and_then(Json::as_str), Some("merge"));
        // Round-trips through the renderer.
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }

    #[test]
    fn empty_snapshot_is_still_valid_json() {
        let j = obs_to_json(&Snapshot::default());
        assert_eq!(j.render(), r#"{"metrics":[],"spans":[]}"#);
    }
}
