//! The rate-sweep experiment runner behind Figures 8 and 9.
//!
//! For each data rate and each seeded run it generates **one** arrival
//! sequence shared by all three shedding modes (the paper's
//! single-codebase fairness discipline extends to the data), computes
//! the ideal result offline, runs each mode's pipeline, and records
//! the RMS error. Window widths are scaled with the data rate so the
//! expected number of tuples per window is constant (§6.2.2).

use dt_query::{parse_select, Catalog, Planner, QueryPlan};
use dt_synopsis::SynopsisConfig;
use dt_triage::{DropPolicy, Pipeline, PipelineConfig, ShedMode};
use dt_types::{DtError, DtResult, VDuration, WindowSpec};
use dt_workload::{generate, ArrivalModel, WorkloadConfig};

use crate::ideal::ideal_map;
use crate::rms::{report_into_map, rms_error};
use crate::stats::MeanStd;

use dt_engine::CostModel;

/// Everything a Fig. 8/9-style sweep needs.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The continuous query (the experiments use Fig. 7's query).
    pub sql: String,
    /// Stream catalog matching the workload's stream specs.
    pub catalog: Catalog,
    /// Workload template; its `arrival` and `seed` fields are
    /// overridden per rate/run.
    pub workload: WorkloadConfig,
    /// Expected tuples per window **across all streams** — window
    /// width is `tuples_per_window / mean_rate`.
    pub tuples_per_window: usize,
    /// Independent seeded runs per rate point (the paper uses 9).
    pub runs: usize,
    /// Engine capacity in tuples/second.
    pub engine_capacity: f64,
    /// Triage queue capacity per stream.
    pub queue_capacity: usize,
    /// Synopsis structure.
    pub synopsis: SynopsisConfig,
    /// Drop policy.
    pub policy: DropPolicy,
    /// Shedding modes to compare.
    pub modes: Vec<ShedMode>,
}

impl SweepConfig {
    /// The paper's experimental setup (Fig. 7 query, Gaussian data,
    /// three modes, nine runs).
    pub fn paper_default() -> Self {
        use dt_types::{DataType, Schema};
        let mut catalog = Catalog::new();
        catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        catalog.add_stream(
            "S",
            Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
        );
        catalog.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
        SweepConfig {
            sql: "SELECT a, COUNT(*) as count FROM R,S,T \
                  WHERE R.a = S.b AND S.c = T.d GROUP BY a"
                .to_string(),
            catalog,
            workload: WorkloadConfig::paper_constant(1000.0, 30_000, 0),
            tuples_per_window: 600,
            runs: 9,
            engine_capacity: 1000.0,
            queue_capacity: 100,
            synopsis: SynopsisConfig::default_sparse(),
            policy: DropPolicy::Random,
            modes: ShedMode::all().to_vec(),
        }
    }

    pub(crate) fn plan_with_window(&self, width: VDuration) -> DtResult<QueryPlan> {
        let stmt = parse_select(&self.sql)?;
        let mut plan = Planner::new(&self.catalog).plan(&stmt)?;
        let spec = WindowSpec::new(width)?;
        for s in &mut plan.streams {
            s.window = spec;
        }
        Ok(plan)
    }
}

/// One mode's error statistics at one rate.
#[derive(Debug, Clone)]
pub struct ModeSeries {
    /// Mode label (`data-triage`, `drop-only`, `summarize-only`).
    pub mode: String,
    /// RMS error summarized over the runs.
    pub rms: MeanStd,
    /// Mean fraction of tuples shed across runs.
    pub drop_fraction: f64,
    /// Paired per-run differences `this mode − first mode` (the runs
    /// share arrivals, so pairing is the right significance test —
    /// the paper's "statistically significant margin"). `None` for the
    /// first mode itself.
    pub diff_vs_first: Option<MeanStd>,
}

/// One x-axis point of Fig. 8 / Fig. 9.
#[derive(Debug, Clone)]
pub struct RatePoint {
    /// The swept rate (tuples/s; *peak* rate for bursty sweeps).
    pub rate: f64,
    /// Per-mode statistics.
    pub modes: Vec<ModeSeries>,
}

impl dt_types::ToJson for ModeSeries {
    fn to_json(&self) -> dt_types::Json {
        dt_types::json::obj(vec![
            ("mode", self.mode.to_json()),
            ("rms", self.rms.to_json()),
            ("drop_fraction", self.drop_fraction.to_json()),
            ("diff_vs_first", self.diff_vs_first.to_json()),
        ])
    }
}

impl dt_types::ToJson for RatePoint {
    fn to_json(&self) -> dt_types::Json {
        dt_types::json::obj(vec![
            ("rate", self.rate.to_json()),
            ("modes", self.modes.to_json()),
        ])
    }
}

/// Per-mode numbers from one independent `(rate, run)` sweep cell.
struct CellOut {
    /// `errors[m]` is mode `m`'s RMS error for this run.
    errors: Vec<f64>,
    /// `dropfrac[m]` is mode `m`'s shed fraction for this run.
    dropfrac: Vec<f64>,
}

/// Execute one `(rate, run)` cell: generate the shared arrival
/// sequence, compute the ideal answer, run every mode's pipeline.
/// A cell touches nothing outside its own state (its seed is a pure
/// function of `(ri, run)`), which is what makes the sweep
/// embarrassingly parallel *and* bit-reproducible: the numbers a cell
/// produces cannot depend on which thread ran it or in what order.
fn run_cell(
    cfg: &SweepConfig,
    ri: usize,
    rate: f64,
    run: usize,
    bursty: bool,
) -> DtResult<CellOut> {
    let arrival = if bursty {
        ArrivalModel::paper_bursty(rate / 100.0)
    } else {
        ArrivalModel::Constant { rate }
    };
    let mean_rate = arrival.mean_rate();
    let width = VDuration::from_secs_f64(cfg.tuples_per_window as f64 / mean_rate);
    if width.is_zero() {
        return Err(DtError::config(format!(
            "window width rounds to zero at rate {rate}"
        )));
    }
    let seed = (ri as u64)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(run as u64 + 1);
    let workload = WorkloadConfig {
        arrival,
        seed,
        ..cfg.workload.clone()
    };
    let mut arrivals = generate(&workload)?;
    let plan = cfg.plan_with_window(width)?;
    let ideal = ideal_map(&plan, &arrivals)?;

    let mut errors = Vec::with_capacity(cfg.modes.len());
    let mut dropfrac = Vec::with_capacity(cfg.modes.len());
    for (mi, &mode) in cfg.modes.iter().enumerate() {
        let mut pcfg = PipelineConfig::new(mode);
        pcfg.policy = cfg.policy;
        pcfg.queue_capacity = cfg.queue_capacity;
        pcfg.cost = CostModel::from_capacity(cfg.engine_capacity)?;
        pcfg.synopsis = cfg.synopsis;
        pcfg.seed = seed;
        // Re-planning per mode would re-parse the SQL; a plan clone is
        // enough (modes never mutate the plan).
        let plan = plan.clone();
        // The last mode owns the arrivals outright; earlier modes
        // clone tuple-by-tuple as they feed the pipeline.
        let report = if mi + 1 == cfg.modes.len() {
            Pipeline::run(plan, pcfg, std::mem::take(&mut arrivals))?
        } else {
            Pipeline::run(plan, pcfg, arrivals.iter().cloned())?
        };
        let totals = report.totals.clone();
        let actual = report_into_map(report);
        errors.push(rms_error(&ideal, &actual));
        dropfrac.push(if totals.arrived == 0 {
            0.0
        } else {
            totals.dropped as f64 / totals.arrived as f64
        });
    }
    Ok(CellOut { errors, dropfrac })
}

/// Run a full rate sweep. `bursty == false` reproduces Fig. 8
/// (constant rates), `true` reproduces Fig. 9 (`rates` are peak rates;
/// the base rate is `peak / burst_multiplier` with burst data drawn
/// from the workload's shifted distributions).
///
/// Cells are distributed over up to [`std::thread::available_parallelism`]
/// worker threads; use [`rate_sweep_with_threads`] to pin the count.
/// The output is **bit-identical** regardless of thread count — see
/// [`rate_sweep_with_threads`] for the argument.
pub fn rate_sweep(cfg: &SweepConfig, rates: &[f64], bursty: bool) -> DtResult<Vec<RatePoint>> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    rate_sweep_with_threads(cfg, rates, bursty, threads)
}

/// [`rate_sweep`] with an explicit worker-thread count (`1` runs the
/// sweep serially on the caller's thread, no spawns).
///
/// Determinism: every `(rate, run)` cell derives its RNG seed from its
/// indices alone and shares no mutable state with other cells, so a
/// cell's floating-point outputs are independent of scheduling. Cell
/// outputs are reassembled in index order before any statistics are
/// folded, so every reduction consumes the same numbers in the same
/// order as the serial sweep — hence byte-identical results (a test
/// pins serial vs parallel).
pub fn rate_sweep_with_threads(
    cfg: &SweepConfig,
    rates: &[f64],
    bursty: bool,
    threads: usize,
) -> DtResult<Vec<RatePoint>> {
    if cfg.runs == 0 {
        return Err(DtError::config("sweep needs at least one run"));
    }
    // One cell per (rate, run) pair, in (rate-major) index order.
    let cells: Vec<(usize, usize)> = (0..rates.len())
        .flat_map(|ri| (0..cfg.runs).map(move |run| (ri, run)))
        .collect();
    let workers = threads.max(1).min(cells.len().max(1));
    let mut cell_out: Vec<Option<DtResult<CellOut>>> = Vec::new();
    cell_out.resize_with(cells.len(), || None);

    if workers <= 1 {
        for (idx, &(ri, run)) in cells.iter().enumerate() {
            cell_out[idx] = Some(run_cell(cfg, ri, rates[ri], run, bursty));
        }
    } else {
        std::thread::scope(|s| {
            let cells = &cells;
            let handles: Vec<_> = (0..workers)
                .map(|k| {
                    s.spawn(move || {
                        let mut done = Vec::new();
                        for (idx, &(ri, run)) in cells.iter().enumerate() {
                            if idx % workers == k {
                                done.push((idx, run_cell(cfg, ri, rates[ri], run, bursty)));
                            }
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                for (idx, r) in h.join().expect("sweep worker panicked") {
                    cell_out[idx] = Some(r);
                }
            }
        });
    }

    // Reassemble in index order: cell (ri, run) sits at ri*runs + run.
    let mut out = Vec::with_capacity(rates.len());
    for (ri, &rate) in rates.iter().enumerate() {
        let mut per_mode_errors: Vec<Vec<f64>> = vec![Vec::new(); cfg.modes.len()];
        let mut per_mode_dropfrac: Vec<Vec<f64>> = vec![Vec::new(); cfg.modes.len()];
        for run in 0..cfg.runs {
            let cell = cell_out[ri * cfg.runs + run]
                .take()
                .expect("every cell ran")?;
            for mi in 0..cfg.modes.len() {
                per_mode_errors[mi].push(cell.errors[mi]);
                per_mode_dropfrac[mi].push(cell.dropfrac[mi]);
            }
        }
        out.push(RatePoint {
            rate,
            modes: cfg
                .modes
                .iter()
                .enumerate()
                .zip(per_mode_errors.iter().zip(&per_mode_dropfrac))
                .map(|((mi, mode), (errs, fracs))| ModeSeries {
                    mode: mode.label().to_string(),
                    rms: MeanStd::from_samples(errs),
                    drop_fraction: fracs.iter().sum::<f64>() / fracs.len() as f64,
                    diff_vs_first: (mi > 0).then(|| {
                        let diffs: Vec<f64> = errs
                            .iter()
                            .zip(&per_mode_errors[0])
                            .map(|(e, first)| e - first)
                            .collect();
                        MeanStd::from_samples(&diffs)
                    }),
                })
                .collect(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature sweep exercises the full stack end to end; the
    /// qualitative Fig. 8 shape is asserted in the integration tests
    /// (larger workloads).
    #[test]
    fn mini_sweep_runs_and_orders_sanely() {
        let mut cfg = SweepConfig::paper_default();
        cfg.runs = 2;
        cfg.workload.total_tuples = 3_000;
        cfg.tuples_per_window = 300;
        cfg.engine_capacity = 500.0;
        cfg.queue_capacity = 30;
        let points = rate_sweep(&cfg, &[250.0, 2_000.0], false).unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.modes.len(), 3);
        }
        let by = |p: &RatePoint, label: &str| -> (f64, f64) {
            let m = p.modes.iter().find(|m| m.mode == label).unwrap();
            (m.rms.mean, m.drop_fraction)
        };
        // Below capacity: drop-only and data-triage shed nothing and
        // are exact.
        let (dt_err, dt_frac) = by(&points[0], "data-triage");
        let (do_err, do_frac) = by(&points[0], "drop-only");
        assert_eq!(dt_frac, 0.0);
        assert_eq!(do_frac, 0.0);
        assert!(dt_err < 1e-9, "{dt_err}");
        assert!(do_err < 1e-9, "{do_err}");
        // Far above capacity: both shed heavily; data-triage beats
        // drop-only.
        let (dt_err2, dt_frac2) = by(&points[1], "data-triage");
        let (do_err2, _) = by(&points[1], "drop-only");
        assert!(dt_frac2 > 0.3, "{dt_frac2}");
        assert!(dt_err2 < do_err2, "triage {dt_err2} vs drop {do_err2}");
    }

    #[test]
    fn zero_runs_rejected() {
        let mut cfg = SweepConfig::paper_default();
        cfg.runs = 0;
        assert!(rate_sweep(&cfg, &[100.0], false).is_err());
        assert!(rate_sweep_with_threads(&cfg, &[100.0], false, 4).is_err());
    }

    /// The parallel driver must be *byte*-identical to the serial one:
    /// we render both results to JSON and compare strings, which pins
    /// every floating-point bit pattern, field order, and run order.
    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        use dt_types::ToJson;
        let mut cfg = SweepConfig::paper_default();
        cfg.runs = 3;
        cfg.workload.total_tuples = 2_000;
        cfg.tuples_per_window = 250;
        cfg.engine_capacity = 500.0;
        cfg.queue_capacity = 25;
        let rates = [250.0, 1_000.0, 2_000.0];
        let serial = rate_sweep_with_threads(&cfg, &rates, false, 1).unwrap();
        for threads in [2, 4, 7] {
            let parallel = rate_sweep_with_threads(&cfg, &rates, false, threads).unwrap();
            assert_eq!(
                serial.to_json().render(),
                parallel.to_json().render(),
                "thread count {threads} changed the sweep output"
            );
        }
        // The bursty (Fig. 9) path schedules the same way.
        let serial_b = rate_sweep_with_threads(&cfg, &rates, true, 1).unwrap();
        let parallel_b = rate_sweep_with_threads(&cfg, &rates, true, 3).unwrap();
        assert_eq!(serial_b.to_json().render(), parallel_b.to_json().render());
    }
}
