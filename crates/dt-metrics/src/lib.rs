//! Result-quality measurement and experiment running (paper §6.3).
//!
//! * [`rms`] — the paper's accuracy metric: compute the "ideal" result
//!   from the original (unshed) data, then the root-mean-square
//!   difference of per-group aggregate values against an actual run.
//! * [`ideal`] — exact offline evaluation of a planned query over a
//!   full arrival sequence.
//! * [`stats`] — mean/standard-deviation summaries across seeded runs
//!   (the paper plots the mean of nine runs with stddev error bars).
//! * [`experiment`] — the rate-sweep runner that regenerates the data
//!   series behind Figures 8 and 9: one arrival sequence per
//!   (rate, seed), shared by all three shedding modes, windows scaled
//!   with the data rate so tuples-per-window stays constant.
//! * [`delay`] — the delay-constraint sweep: a fixed overload rate, a
//!   swept [`dt_triage::DelayConstraint`], and the resulting
//!   delay-vs-accuracy tradeoff curve (DESIGN.md §11).
//! * [`summary`] — a JSON-serializable digest of a run
//!   ([`RunSummary`]), the interchange format between `dt-server`'s
//!   final report and offline metrics tooling.
//! * [`obs`] — JSON serialization for [`dt_obs::Snapshot`], so a run's
//!   final observability snapshot rides inside the same report.

pub mod delay;
pub mod experiment;
pub mod ideal;
pub mod obs;
pub mod rms;
pub mod stats;
pub mod summary;

pub use delay::{delay_sweep, DelayPoint};
pub use experiment::{rate_sweep, rate_sweep_with_threads, ModeSeries, RatePoint, SweepConfig};
pub use ideal::ideal_map;
pub use obs::obs_to_json;
pub use rms::{latencies, report_to_map, rms_error, ResultMap};
pub use stats::{LatencyStats, MeanStd};
pub use summary::RunSummary;
